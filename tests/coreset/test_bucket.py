"""Unit tests for weighted point sets and buckets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coreset.bucket import Bucket, WeightedPointSet


class TestWeightedPointSet:
    def test_from_points_unit_weights(self):
        pts = WeightedPointSet.from_points(np.arange(6, dtype=float).reshape(3, 2))
        assert pts.size == 3
        assert pts.dimension == 2
        np.testing.assert_array_equal(pts.weights, np.ones(3))
        assert pts.total_weight == pytest.approx(3.0)

    def test_from_points_promotes_1d(self):
        pts = WeightedPointSet.from_points(np.array([1.0, 2.0, 3.0]))
        assert pts.size == 1
        assert pts.dimension == 3

    def test_empty(self):
        empty = WeightedPointSet.empty(5)
        assert empty.size == 0
        assert empty.dimension == 5
        assert empty.total_weight == 0.0

    def test_union(self):
        a = WeightedPointSet.from_points(np.zeros((2, 3)))
        b = WeightedPointSet(points=np.ones((1, 3)), weights=np.array([4.0]))
        combined = a.union(b)
        assert combined.size == 3
        assert combined.total_weight == pytest.approx(6.0)

    def test_union_with_empty_returns_other(self):
        a = WeightedPointSet.from_points(np.zeros((2, 3)))
        empty = WeightedPointSet.empty(3)
        assert a.union(empty) is a
        assert empty.union(a) is a

    def test_union_dimension_mismatch_raises(self):
        a = WeightedPointSet.from_points(np.zeros((2, 3)))
        b = WeightedPointSet.from_points(np.zeros((2, 4)))
        with pytest.raises(ValueError, match="dimension mismatch"):
            a.union(b)

    def test_union_all(self):
        sets = [WeightedPointSet.from_points(np.full((2, 2), float(i))) for i in range(3)]
        combined = WeightedPointSet.union_all(sets)
        assert combined.size == 6

    def test_union_all_with_empties(self):
        sets = [WeightedPointSet.empty(2), WeightedPointSet.from_points(np.ones((1, 2)))]
        combined = WeightedPointSet.union_all(sets)
        assert combined.size == 1

    def test_union_all_all_empty(self):
        combined = WeightedPointSet.union_all([WeightedPointSet.empty(4)])
        assert combined.size == 0
        assert combined.dimension == 4

    def test_union_all_all_empty_multiple(self):
        # Regression: several empty sets of the *same* dimension must union to
        # an empty set of that dimension, not raise and not guess.
        combined = WeightedPointSet.union_all(
            [WeightedPointSet.empty(3), WeightedPointSet.empty(3)]
        )
        assert combined.size == 0
        assert combined.dimension == 3

    def test_union_all_all_empty_dimension_mismatch_raises(self):
        # Regression: the old code silently picked sets[0].dimension; now any
        # disagreement is an error, empty or not.
        with pytest.raises(ValueError, match="dimension mismatch"):
            WeightedPointSet.union_all(
                [WeightedPointSet.empty(2), WeightedPointSet.empty(5)]
            )

    def test_union_all_mixed_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            WeightedPointSet.union_all(
                [
                    WeightedPointSet.from_points(np.ones((2, 2))),
                    WeightedPointSet.from_points(np.ones((2, 3))),
                ]
            )

    def test_union_all_empty_list_raises(self):
        with pytest.raises(ValueError, match="explicit dimension"):
            WeightedPointSet.union_all([])

    def test_union_all_empty_list_with_dimension(self):
        combined = WeightedPointSet.union_all([], dimension=7)
        assert combined.size == 0
        assert combined.dimension == 7

    def test_union_all_explicit_dimension_must_agree(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            WeightedPointSet.union_all(
                [WeightedPointSet.from_points(np.ones((1, 2)))], dimension=3
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            WeightedPointSet(points=np.zeros((1, 2)), weights=np.array([-1.0]))

    def test_weight_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            WeightedPointSet(points=np.zeros((2, 2)), weights=np.ones(3))

    def test_non_2d_points_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            WeightedPointSet(points=np.zeros(3), weights=np.ones(3))


class TestBucket:
    def test_basic_properties(self):
        data = WeightedPointSet.from_points(np.zeros((5, 2)))
        bucket = Bucket(data=data, start=3, end=6, level=2)
        assert bucket.span == (3, 6)
        assert bucket.num_base_buckets == 4
        assert bucket.size == 5
        assert bucket.level == 2

    def test_base_bucket_defaults_to_level_zero(self):
        data = WeightedPointSet.from_points(np.zeros((2, 2)))
        bucket = Bucket(data=data, start=1, end=1)
        assert bucket.level == 0

    @pytest.mark.parametrize(
        "start,end,level",
        [(0, 1, 0), (1, 0, 0), (-1, 2, 0), (3, 2, 0), (1, 2, -1)],
    )
    def test_invalid_spans_and_levels(self, start, end, level):
        data = WeightedPointSet.from_points(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            Bucket(data=data, start=start, end=end, level=level)

    def test_repr_mentions_span(self):
        data = WeightedPointSet.from_points(np.zeros((1, 2)))
        bucket = Bucket(data=data, start=2, end=4, level=1)
        assert "[2,4]" in repr(bucket)
