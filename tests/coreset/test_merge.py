"""Unit tests for bucket union / merge-and-reduce operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coreset.bucket import Bucket, WeightedPointSet
from repro.coreset.construction import make_constructor
from repro.coreset.merge import (
    as_weighted_set,
    covered_range,
    merge_buckets,
    reduce_bucket,
    spans_are_disjoint,
    total_points,
    union_buckets,
)


def _bucket(points: np.ndarray, start: int, end: int, level: int = 0) -> Bucket:
    return Bucket(
        data=WeightedPointSet.from_points(points), start=start, end=end, level=level
    )


@pytest.fixture()
def constructor():
    return make_constructor(k=3, coreset_size=20, seed=0)


class TestUnionBuckets:
    def test_contiguous_union(self):
        a = _bucket(np.zeros((5, 2)), 1, 2, level=1)
        b = _bucket(np.ones((3, 2)), 3, 3, level=0)
        combined = union_buckets([b, a])
        assert combined.span == (1, 3)
        assert combined.size == 8
        assert combined.level == 1  # max of inputs; union adds no level

    def test_gap_raises(self):
        a = _bucket(np.zeros((2, 2)), 1, 1)
        c = _bucket(np.zeros((2, 2)), 3, 3)
        with pytest.raises(ValueError, match="contiguous"):
            union_buckets([a, c])

    def test_single_bucket(self):
        a = _bucket(np.zeros((2, 2)), 5, 7, level=2)
        combined = union_buckets([a])
        assert combined.span == (5, 7)
        assert combined.level == 2

    def test_empty_list_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            union_buckets([])


class TestMergeBuckets:
    def test_merge_increases_level(self, constructor):
        buckets = [_bucket(np.random.default_rng(i).normal(size=(50, 2)), i + 1, i + 1) for i in range(2)]
        merged = merge_buckets(buckets, constructor)
        assert merged.level == 1
        assert merged.span == (1, 2)
        assert merged.size <= constructor.coreset_size

    def test_merge_respects_max_input_level(self, constructor):
        low = _bucket(np.zeros((30, 2)), 1, 2, level=1)
        high = _bucket(np.ones((30, 2)), 3, 4, level=3)
        merged = merge_buckets([low, high], constructor)
        assert merged.level == 4

    def test_merge_empty_list_raises(self, constructor):
        with pytest.raises(ValueError):
            merge_buckets([], constructor)


class TestReduceBucket:
    def test_reduce_shrinks_and_raises_level(self, constructor):
        bucket = _bucket(np.random.default_rng(0).normal(size=(200, 2)), 1, 4, level=2)
        reduced = reduce_bucket(bucket, constructor)
        assert reduced.size <= constructor.coreset_size
        assert reduced.level == 3
        assert reduced.span == bucket.span


class TestHelpers:
    def test_total_points(self):
        buckets = [_bucket(np.zeros((3, 2)), 1, 1), _bucket(np.zeros((4, 2)), 2, 2)]
        assert total_points(buckets) == 7

    def test_spans_are_disjoint_true(self):
        buckets = [_bucket(np.zeros((1, 2)), 1, 2), _bucket(np.zeros((1, 2)), 3, 5)]
        assert spans_are_disjoint(buckets)

    def test_spans_are_disjoint_false(self):
        buckets = [_bucket(np.zeros((1, 2)), 1, 3), _bucket(np.zeros((1, 2)), 3, 5)]
        assert not spans_are_disjoint(buckets)

    def test_covered_range(self):
        buckets = [_bucket(np.zeros((1, 2)), 4, 6), _bucket(np.zeros((1, 2)), 1, 3)]
        assert covered_range(buckets) == (1, 6)

    def test_covered_range_empty_raises(self):
        with pytest.raises(ValueError):
            covered_range([])

    def test_as_weighted_set(self):
        buckets = [_bucket(np.zeros((2, 3)), 1, 1), _bucket(np.ones((3, 3)), 2, 2)]
        combined = as_weighted_set(buckets, dimension=3)
        assert combined.size == 5

    def test_as_weighted_set_empty(self):
        combined = as_weighted_set([], dimension=4)
        assert combined.size == 0
        assert combined.dimension == 4
