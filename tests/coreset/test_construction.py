"""Unit tests for coreset constructions (sensitivity, uniform, k-means++)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coreset.bucket import WeightedPointSet
from repro.coreset.construction import (
    CoresetConfig,
    CoresetConstructor,
    kmeanspp_coreset,
    make_constructor,
    sensitivity_coreset,
    uniform_coreset,
)
from repro.kmeans.cost import kmeans_cost


@pytest.fixture()
def blob_set(blob_points) -> WeightedPointSet:
    return WeightedPointSet.from_points(blob_points)


class TestCoresetConfig:
    def test_defaults(self):
        config = CoresetConfig(k=5, coreset_size=100)
        assert config.method == "sensitivity"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0, "coreset_size": 10},
            {"k": 3, "coreset_size": 0},
            {"k": 3, "coreset_size": 10, "method": "magic"},
            {"k": 3, "coreset_size": 10, "seed_centers": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CoresetConfig(**kwargs)


class TestSensitivityCoreset:
    def test_size_and_dimension(self, blob_set):
        rng = np.random.default_rng(0)
        coreset = sensitivity_coreset(blob_set, k=4, m=80, rng=rng)
        assert coreset.size == 80
        assert coreset.dimension == blob_set.dimension

    def test_total_weight_approximately_preserved(self, blob_set):
        rng = np.random.default_rng(1)
        coreset = sensitivity_coreset(blob_set, k=4, m=200, rng=rng)
        # Importance sampling preserves total weight in expectation.
        assert coreset.total_weight == pytest.approx(blob_set.total_weight, rel=0.3)

    def test_cost_preserved_on_good_centers(self, blob_set, blob_points, blob_centers):
        rng = np.random.default_rng(2)
        coreset = sensitivity_coreset(blob_set, k=4, m=300, rng=rng)
        full_cost = kmeans_cost(blob_points, blob_centers)
        coreset_cost = kmeans_cost(coreset.points, blob_centers, coreset.weights)
        assert coreset_cost == pytest.approx(full_cost, rel=0.35)

    def test_small_input_passthrough(self):
        data = WeightedPointSet.from_points(np.arange(10, dtype=float).reshape(5, 2))
        rng = np.random.default_rng(0)
        coreset = sensitivity_coreset(data, k=2, m=10, rng=rng)
        assert coreset is data

    def test_degenerate_identical_points(self):
        data = WeightedPointSet.from_points(np.zeros((500, 3)))
        rng = np.random.default_rng(0)
        coreset = sensitivity_coreset(data, k=2, m=20, rng=rng)
        assert coreset.size == 20
        np.testing.assert_allclose(coreset.points, 0.0)
        assert coreset.total_weight == pytest.approx(500.0, rel=0.01)


class TestUniformCoreset:
    def test_size_and_weight(self, blob_set):
        rng = np.random.default_rng(0)
        coreset = uniform_coreset(blob_set, k=4, m=100, rng=rng)
        assert coreset.size == 100
        assert coreset.total_weight == pytest.approx(blob_set.total_weight)

    def test_passthrough_small(self):
        data = WeightedPointSet.from_points(np.ones((3, 2)))
        coreset = uniform_coreset(data, k=2, m=5, rng=np.random.default_rng(0))
        assert coreset is data


class TestKmeansppCoreset:
    def test_size_at_most_m(self, blob_set):
        rng = np.random.default_rng(0)
        coreset = kmeanspp_coreset(blob_set, k=4, m=60, rng=rng)
        assert 0 < coreset.size <= 60

    def test_weight_exactly_preserved(self, blob_set):
        rng = np.random.default_rng(1)
        coreset = kmeanspp_coreset(blob_set, k=4, m=60, rng=rng)
        assert coreset.total_weight == pytest.approx(blob_set.total_weight)

    def test_representatives_are_input_points(self, blob_set, blob_points):
        rng = np.random.default_rng(2)
        coreset = kmeanspp_coreset(blob_set, k=4, m=30, rng=rng)
        for row in coreset.points:
            distances = np.linalg.norm(blob_points - row, axis=1)
            assert np.min(distances) == pytest.approx(0.0, abs=1e-12)


class TestCoresetConstructor:
    @pytest.mark.parametrize("method", ["sensitivity", "uniform", "kmeanspp"])
    def test_build_dispatches(self, blob_set, method):
        constructor = make_constructor(k=4, coreset_size=50, method=method, seed=0)
        coreset = constructor.build(blob_set)
        assert coreset.size <= max(50, blob_set.size)
        assert coreset.dimension == blob_set.dimension

    def test_empty_input_returned_unchanged(self):
        constructor = make_constructor(k=4, coreset_size=50, seed=0)
        empty = WeightedPointSet.empty(3)
        assert constructor.build(empty) is empty

    def test_callable_alias(self, blob_set):
        constructor = make_constructor(k=4, coreset_size=50, seed=0)
        assert constructor(blob_set).size == constructor.coreset_size

    def test_reproducible_with_same_seed(self, blob_set):
        a = make_constructor(k=4, coreset_size=50, seed=42).build(blob_set)
        b = make_constructor(k=4, coreset_size=50, seed=42).build(blob_set)
        np.testing.assert_array_equal(a.points, b.points)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_different_seeds_differ(self, blob_set):
        a = make_constructor(k=4, coreset_size=50, seed=1).build(blob_set)
        b = make_constructor(k=4, coreset_size=50, seed=2).build(blob_set)
        assert not np.array_equal(a.points, b.points)

    def test_coreset_size_property(self):
        constructor = CoresetConstructor(CoresetConfig(k=3, coreset_size=77))
        assert constructor.coreset_size == 77
