"""Unit tests for timing, memory, and accuracy metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.accuracy import center_set_distance, cost_ratio, sse
from repro.metrics.memory import BYTES_PER_VALUE, MemoryUsage, peak
from repro.metrics.timing import Stopwatch, TimingBreakdown


class TestTimingBreakdown:
    def test_accumulation(self):
        timing = TimingBreakdown()
        timing.add_update(0.5, num_points=10)
        timing.add_update(0.5, num_points=10)
        timing.add_query(2.0)
        assert timing.total_seconds == pytest.approx(3.0)
        assert timing.num_updates == 20
        assert timing.num_queries == 1

    def test_per_point_averages(self):
        timing = TimingBreakdown()
        timing.add_update(1.0, num_points=100)
        timing.add_query(1.0)
        assert timing.update_time_per_point() == pytest.approx(0.01)
        assert timing.query_time_per_point() == pytest.approx(0.01)
        assert timing.total_time_per_point() == pytest.approx(0.02)
        assert timing.query_time_per_query() == pytest.approx(1.0)

    def test_zero_division_guards(self):
        timing = TimingBreakdown()
        assert timing.update_time_per_point() == 0.0
        assert timing.query_time_per_point() == 0.0
        assert timing.query_time_per_query() == 0.0
        assert timing.total_time_per_point() == 0.0

    def test_negative_rejected(self):
        timing = TimingBreakdown()
        with pytest.raises(ValueError):
            timing.add_update(-1.0)
        with pytest.raises(ValueError):
            timing.add_query(-0.1)

    def test_merged_with(self):
        a = TimingBreakdown(update_seconds=1.0, query_seconds=2.0, num_updates=10, num_queries=1)
        b = TimingBreakdown(update_seconds=3.0, query_seconds=4.0, num_updates=20, num_queries=2)
        merged = a.merged_with(b)
        assert merged.update_seconds == pytest.approx(4.0)
        assert merged.query_seconds == pytest.approx(6.0)
        assert merged.num_updates == 30
        assert merged.num_queries == 3

    def test_batch_accounting(self):
        timing = TimingBreakdown()
        timing.add_batch_update(0.2, num_points=400)
        timing.add_batch_update(0.1, num_points=100)
        assert timing.num_batches == 2
        assert timing.num_updates == 500
        assert timing.update_time_per_batch() == pytest.approx(0.15)
        assert timing.update_time_per_point() == pytest.approx(0.3 / 500)
        assert timing.update_points_per_second() == pytest.approx(500 / 0.3)

    def test_batch_accounting_zero_guards(self):
        timing = TimingBreakdown()
        assert timing.update_time_per_batch() == 0.0
        assert timing.update_points_per_second() == 0.0

    def test_merged_with_batches(self):
        a = TimingBreakdown(update_seconds=1.0, num_updates=10, num_batches=2)
        b = TimingBreakdown(update_seconds=1.0, num_updates=10, num_batches=3)
        assert a.merged_with(b).num_batches == 5


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure():
            sum(range(1000))
        with watch.measure():
            sum(range(1000))
        assert watch.elapsed > 0.0

    def test_time_call(self):
        elapsed, result = Stopwatch.time_call(sum, range(100))
        assert result == 4950
        assert elapsed >= 0.0


class TestMemoryUsage:
    def test_bytes_and_megabytes(self):
        usage = MemoryUsage(points_stored=1000, dimension=10)
        assert usage.bytes_estimate == 1000 * 10 * BYTES_PER_VALUE
        assert usage.megabytes == pytest.approx(usage.bytes_estimate / (1024**2))

    def test_invalid(self):
        with pytest.raises(ValueError):
            MemoryUsage(points_stored=-1, dimension=3)
        with pytest.raises(ValueError):
            MemoryUsage(points_stored=5, dimension=0)

    def test_peak(self):
        usages = [
            MemoryUsage(points_stored=10, dimension=2),
            MemoryUsage(points_stored=50, dimension=2),
            MemoryUsage(points_stored=30, dimension=2),
        ]
        assert peak(usages).points_stored == 50

    def test_peak_empty_raises(self):
        with pytest.raises(ValueError):
            peak([])


class TestAccuracyMetrics:
    def test_sse_matches_kmeans_cost(self, blob_points, blob_centers):
        from repro.kmeans.cost import kmeans_cost

        assert sse(blob_points, blob_centers) == pytest.approx(
            kmeans_cost(blob_points, blob_centers)
        )

    def test_cost_ratio_identity(self, blob_points, blob_centers):
        assert cost_ratio(blob_points, blob_centers, blob_centers) == pytest.approx(1.0)

    def test_cost_ratio_worse_centers(self, blob_points, blob_centers):
        worse = np.zeros_like(blob_centers)
        assert cost_ratio(blob_points, worse, blob_centers) > 1.0

    def test_cost_ratio_zero_reference(self):
        points = np.zeros((5, 2))
        perfect = np.zeros((1, 2))
        off = np.ones((1, 2))
        assert cost_ratio(points, perfect, perfect) == 1.0
        assert cost_ratio(points, off, perfect) == np.inf

    def test_center_set_distance_zero_for_identical(self, blob_centers):
        assert center_set_distance(blob_centers, blob_centers) == pytest.approx(0.0)

    def test_center_set_distance_symmetric(self, blob_centers):
        other = blob_centers + 1.0
        assert center_set_distance(blob_centers, other) == pytest.approx(
            center_set_distance(other, blob_centers)
        )

    def test_center_set_distance_known_value(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert center_set_distance(a, b) == pytest.approx(5.0)

    def test_center_set_distance_invalid(self):
        with pytest.raises(ValueError):
            center_set_distance(np.zeros((0, 2)), np.zeros((1, 2)))
        with pytest.raises(ValueError):
            center_set_distance(np.zeros(3), np.zeros((1, 3)))
