"""Property-based tests: batch ingestion is equivalent to per-point ingestion.

The vectorized ``insert_batch`` pipeline (zero-copy bucket slicing plus
amortized ``insert_buckets`` carry propagation) must leave CT, CC, and RCC in
*exactly* the state a point-by-point ``insert`` loop produces: same level
structure, same spans, same stored-point counts — and, because tree-merge
randomness is span-keyed, bit-identical stored coresets.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import StreamingConfig
from repro.core.driver import (
    CachedCoresetTreeClusterer,
    CoresetTreeClusterer,
    RecursiveCachedClusterer,
)
from repro.core.online_cc import OnlineCCClusterer

ALL_DRIVER_CLUSTERERS = [
    CoresetTreeClusterer,
    CachedCoresetTreeClusterer,
    RecursiveCachedClusterer,
]


@st.composite
def stream_and_config(draw):
    n = draw(st.integers(min_value=1, max_value=260))
    d = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=4, max_value=24))
    r = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, d))
    config = StreamingConfig(
        k=2, coreset_size=m, merge_degree=r, n_init=1, lloyd_iterations=2, seed=seed
    )
    return points, config


def ingest_three_ways(clusterer_cls, points, config, chunk_seed):
    """One big batch, a per-point loop, and random-sized chunks."""
    whole = clusterer_cls(config)
    whole.insert_batch(points)

    loop = clusterer_cls(config)
    for row in points:
        loop.insert(row)

    chunked = clusterer_cls(config)
    rng = np.random.default_rng(chunk_seed)
    pos = 0
    while pos < points.shape[0]:
        step = int(rng.integers(1, 3 * config.bucket_size))
        chunked.insert_batch(points[pos : pos + step])
        pos += step
    return whole, loop, chunked


def assert_tree_identical(tree_a, tree_b):
    levels_a, levels_b = tree_a.levels, tree_b.levels
    assert len(levels_a) == len(levels_b)
    for buckets_a, buckets_b in zip(levels_a, levels_b):
        assert len(buckets_a) == len(buckets_b)
        for bucket_a, bucket_b in zip(buckets_a, buckets_b):
            assert bucket_a.span == bucket_b.span
            assert bucket_a.level == bucket_b.level
            np.testing.assert_array_equal(bucket_a.data.points, bucket_b.data.points)
            np.testing.assert_array_equal(bucket_a.data.weights, bucket_b.data.weights)


def assert_rcc_node_identical(node_a, node_b):
    assert node_a.order == node_b.order
    assert node_a.num_buckets == node_b.num_buckets
    assert len(node_a._levels) == len(node_b._levels)
    for buckets_a, buckets_b in zip(node_a._levels, node_b._levels):
        assert len(buckets_a) == len(buckets_b)
        for bucket_a, bucket_b in zip(buckets_a, buckets_b):
            assert bucket_a.span == bucket_b.span
            assert bucket_a.level == bucket_b.level
            np.testing.assert_array_equal(bucket_a.data.points, bucket_b.data.points)
    for child_a, child_b in zip(node_a._children, node_b._children):
        assert (child_a is None) == (child_b is None)
        if child_a is not None:
            assert_rcc_node_identical(child_a, child_b)


@given(data=stream_and_config(), chunk_seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_ct_batch_equals_per_point(data, chunk_seed):
    points, config = data
    whole, loop, chunked = ingest_three_ways(
        CoresetTreeClusterer, points, config, chunk_seed
    )
    for candidate in (whole, chunked):
        assert candidate.points_seen == loop.points_seen
        assert candidate.stored_points() == loop.stored_points()
        assert candidate.tree.num_base_buckets == loop.tree.num_base_buckets
        assert candidate.tree.merge_count == loop.tree.merge_count
        assert candidate.tree.max_level() == loop.tree.max_level()
        assert_tree_identical(candidate.tree, loop.tree)


@given(data=stream_and_config(), chunk_seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=15, deadline=None)
def test_cc_batch_equals_per_point(data, chunk_seed):
    points, config = data
    whole, loop, chunked = ingest_three_ways(
        CachedCoresetTreeClusterer, points, config, chunk_seed
    )
    for candidate in (whole, chunked):
        assert candidate.points_seen == loop.points_seen
        assert candidate.stored_points() == loop.stored_points()
        assert_tree_identical(candidate.cached_tree.tree, loop.cached_tree.tree)
    # Queries on identical states give identical answers (same query RNG).
    if points.shape[0] > 0:
        np.testing.assert_array_equal(whole.query().centers, loop.query().centers)


@given(data=stream_and_config(), chunk_seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_rcc_batch_equals_per_point(data, chunk_seed):
    points, config = data
    whole, loop, chunked = ingest_three_ways(
        RecursiveCachedClusterer, points, config, chunk_seed
    )
    for candidate in (whole, chunked):
        assert candidate.points_seen == loop.points_seen
        assert candidate.stored_points() == loop.stored_points()
        assert candidate.recursive_tree.num_base_buckets == loop.recursive_tree.num_base_buckets
        assert candidate.recursive_tree.max_level() == loop.recursive_tree.max_level()
        assert_rcc_node_identical(
            candidate.recursive_tree._root, loop.recursive_tree._root
        )


@given(data=stream_and_config())
@settings(max_examples=10, deadline=None)
def test_online_cc_batch_equals_per_point(data):
    points, config = data
    whole = OnlineCCClusterer(config)
    whole.insert_batch(points)
    loop = OnlineCCClusterer(config)
    for row in points:
        loop.insert(row)
    assert whole.points_seen == loop.points_seen
    assert whole.stored_points() == loop.stored_points()
    # update_many accumulates with per-point associativity, so the cost bound
    # (and therefore every fallback decision) is bit-identical.
    assert whole.cost_bound == loop.cost_bound
    assert_tree_identical(whole.cached_tree.tree, loop.cached_tree.tree)


@given(
    n=st.integers(min_value=1, max_value=200),
    m=st.integers(min_value=4, max_value=32),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=20, deadline=None)
def test_partial_bucket_preserved_across_batches(n, m, seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 2))
    config = StreamingConfig(k=2, coreset_size=m, n_init=1, lloyd_iterations=1, seed=seed)
    clusterer = CoresetTreeClusterer(config)
    clusterer.insert_batch(points)
    assert clusterer.points_seen == n
    expected_buckets, leftover = divmod(n, m)
    assert clusterer.tree.num_base_buckets == expected_buckets
    assert clusterer.stored_points() == clusterer.tree.stored_points() + leftover
