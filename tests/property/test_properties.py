"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CoresetCache
from repro.core.coreset_tree import CoresetTree
from repro.core.numeral import digits, major, minor, num_nonzero_digits, prefixsum
from repro.coreset.bucket import Bucket, WeightedPointSet
from repro.coreset.construction import make_constructor
from repro.kmeans.cost import kmeans_cost, pairwise_squared_distances
from repro.queries.schedule import FixedIntervalSchedule, PoissonSchedule


# ---------------------------------------------------------------------------
# Base-r numeral decomposition
# ---------------------------------------------------------------------------


@given(n=st.integers(min_value=0, max_value=10_000_000), r=st.integers(min_value=2, max_value=16))
def test_digits_reconstruct_n(n, r):
    assert sum(beta * r**alpha for beta, alpha in digits(n, r)) == n


@given(n=st.integers(min_value=0, max_value=10_000_000), r=st.integers(min_value=2, max_value=16))
def test_major_minor_partition(n, r):
    assert major(n, r) + minor(n, r) == n
    assert major(n, r) >= 0
    assert minor(n, r) >= 0


@given(n=st.integers(min_value=1, max_value=1_000_000), r=st.integers(min_value=2, max_value=12))
def test_minor_is_single_digit_term(n, r):
    m = minor(n, r)
    assert num_nonzero_digits(m, r) == 1


@given(n=st.integers(min_value=1, max_value=200_000), r=st.integers(min_value=2, max_value=10))
def test_prefixsum_members_are_prefixes_of_expansion(n, r):
    terms = sorted(digits(n, r), key=lambda t: -t[1])  # most significant first
    partial_sums = set()
    running = 0
    for beta, alpha in terms[:-1]:
        running += beta * r**alpha
        partial_sums.add(running)
    assert prefixsum(n, r) == partial_sums


@given(n=st.integers(min_value=1, max_value=100_000), r=st.integers(min_value=2, max_value=10))
def test_fact2_prefixsum_evolution(n, r):
    """Fact 2: prefixsum(N+1, r) is contained in prefixsum(N, r) plus {N}."""
    assert prefixsum(n + 1, r) <= (prefixsum(n, r) | {n})


@given(n=st.integers(min_value=2, max_value=1_000_000), r=st.integers(min_value=2, max_value=10))
def test_prefixsum_size_logarithmic(n, r):
    assert len(prefixsum(n, r)) <= math.log(n, r) + 1


# ---------------------------------------------------------------------------
# Cost function invariants
# ---------------------------------------------------------------------------


finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def points_and_centers(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    k = draw(st.integers(min_value=1, max_value=5))
    d = draw(st.integers(min_value=1, max_value=4))
    points = draw(
        st.lists(
            st.lists(finite_floats, min_size=d, max_size=d), min_size=n, max_size=n
        )
    )
    centers = draw(
        st.lists(
            st.lists(finite_floats, min_size=d, max_size=d), min_size=k, max_size=k
        )
    )
    return np.array(points), np.array(centers)


@given(data=points_and_centers())
def test_cost_is_non_negative(data):
    points, centers = data
    assert kmeans_cost(points, centers) >= 0.0


@given(data=points_and_centers())
def test_distances_non_negative(data):
    points, centers = data
    assert np.all(pairwise_squared_distances(points, centers) >= 0.0)


@given(data=points_and_centers())
def test_cost_near_zero_when_centers_contain_all_points(data):
    points, _ = data
    # The BLAS-friendly ||x||^2 - 2 x.c + ||c||^2 expansion loses a few ulps
    # of precision for very large coordinates, so "zero" is relative to the
    # squared magnitude of the data.
    scale = float(np.max(np.abs(points))) if points.size else 0.0
    tolerance = 1e-7 * points.shape[0] * max(1.0, scale**2)
    assert kmeans_cost(points, points) <= tolerance


@given(data=points_and_centers(), scale=st.floats(min_value=0.1, max_value=10.0))
def test_cost_scales_with_uniform_weights(data, scale):
    points, centers = data
    base = kmeans_cost(points, centers)
    weighted = kmeans_cost(points, centers, weights=np.full(points.shape[0], scale))
    assert weighted == np.float64(base * scale) or abs(weighted - base * scale) <= 1e-6 * max(
        1.0, abs(base * scale)
    )


@given(data=points_and_centers())
def test_adding_a_center_never_increases_cost(data):
    points, centers = data
    extra = np.vstack([centers, points[:1]])
    # Squared distances come from the BLAS expansion, whose rounding depends
    # on the center matrix's shape, so "never increases" holds only up to a
    # tolerance relative to the squared coordinate magnitude.
    scale = max(float(np.max(np.abs(points))), float(np.max(np.abs(centers))), 1.0)
    tolerance = 1e-7 * points.shape[0] * scale**2
    assert kmeans_cost(points, extra) <= kmeans_cost(points, centers) + tolerance


# ---------------------------------------------------------------------------
# Weighted point sets
# ---------------------------------------------------------------------------


@st.composite
def weighted_sets(draw, dimension=3):
    n = draw(st.integers(min_value=0, max_value=25))
    points = draw(
        st.lists(
            st.lists(finite_floats, min_size=dimension, max_size=dimension),
            min_size=n,
            max_size=n,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return WeightedPointSet(
        points=np.array(points, dtype=float).reshape(n, dimension),
        weights=np.array(weights, dtype=float),
    )


@given(a=weighted_sets(), b=weighted_sets())
def test_union_preserves_size_and_weight(a, b):
    combined = a.union(b)
    assert combined.size == a.size + b.size
    assert combined.total_weight == np.float64(a.total_weight + b.total_weight) or abs(
        combined.total_weight - (a.total_weight + b.total_weight)
    ) <= 1e-9


@given(a=weighted_sets())
def test_union_with_empty_is_identity(a):
    empty = WeightedPointSet.empty(3)
    assert a.union(empty).size == a.size
    assert empty.union(a).size == a.size


# ---------------------------------------------------------------------------
# Coreset construction invariants
# ---------------------------------------------------------------------------


@given(
    n=st.integers(min_value=1, max_value=300),
    m=st.integers(min_value=5, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_coreset_size_never_exceeds_target_or_input(n, m, seed):
    rng = np.random.default_rng(seed)
    data = WeightedPointSet.from_points(rng.normal(size=(n, 3)))
    constructor = make_constructor(k=3, coreset_size=m, seed=seed)
    coreset = constructor.build(data)
    assert coreset.size <= max(m, 0) or coreset.size <= n
    assert coreset.size <= max(m, n)
    assert np.all(coreset.weights >= 0.0)
    assert np.all(np.isfinite(coreset.points))


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_coreset_weight_preservation_statistical(seed):
    rng = np.random.default_rng(seed)
    data = WeightedPointSet.from_points(rng.normal(size=(400, 2)))
    constructor = make_constructor(k=4, coreset_size=150, seed=seed)
    coreset = constructor.build(data)
    # Importance sampling preserves total weight in expectation; allow a wide
    # statistical margin for any single draw.
    assert 0.5 * data.total_weight <= coreset.total_weight <= 2.0 * data.total_weight


# ---------------------------------------------------------------------------
# Coreset tree structural invariants
# ---------------------------------------------------------------------------


@given(
    num_buckets=st.integers(min_value=1, max_value=40),
    r=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_tree_levels_match_digits_for_any_r(num_buckets, r):
    constructor = make_constructor(k=2, coreset_size=8, seed=0)
    tree = CoresetTree(constructor, merge_degree=r)
    rng = np.random.default_rng(0)
    for index in range(1, num_buckets + 1):
        bucket = Bucket(
            data=WeightedPointSet.from_points(rng.normal(size=(8, 2))),
            start=index,
            end=index,
            level=0,
        )
        tree.insert_bucket(bucket)
    per_level = {alpha: beta for beta, alpha in digits(num_buckets, r)}
    for level in range(tree.max_level() + 1):
        assert len(tree.buckets_at_level(level)) == per_level.get(level, 0)
    buckets = tree.active_buckets()
    assert buckets[0].start == 1
    assert buckets[-1].end == num_buckets
    for previous, current in zip(buckets, buckets[1:]):
        assert current.start == previous.end + 1


# ---------------------------------------------------------------------------
# Cache eviction invariants
# ---------------------------------------------------------------------------


@given(
    total=st.integers(min_value=1, max_value=300),
    r=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_cache_always_holds_major_when_queried_every_step(total, r):
    cache = CoresetCache(merge_degree=r)
    for n in range(1, total + 1):
        n1 = major(n, r)
        if n1 > 0:
            assert n1 in cache
        cache.store(
            Bucket(
                data=WeightedPointSet.from_points(np.zeros((1, 2))),
                start=1,
                end=n,
                level=1,
            )
        )
        cache.evict_stale(n)
        assert cache.keys() <= (prefixsum(n, r) | {n})


# ---------------------------------------------------------------------------
# Query schedules
# ---------------------------------------------------------------------------


@given(
    interval=st.integers(min_value=1, max_value=500),
    length=st.integers(min_value=0, max_value=5000),
)
def test_fixed_schedule_positions_valid(interval, length):
    positions = FixedIntervalSchedule(interval).query_positions(length)
    assert positions.shape[0] == length // interval
    if positions.size:
        assert positions[0] == interval
        assert positions[-1] <= length
        assert np.all(np.diff(positions) == interval)


@given(
    mean_interval=st.integers(min_value=1, max_value=500),
    length=st.integers(min_value=0, max_value=3000),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_poisson_schedule_positions_valid(mean_interval, length, seed):
    schedule = PoissonSchedule.from_mean_interval(mean_interval, seed=seed)
    positions = schedule.query_positions(length)
    if positions.size:
        assert positions[0] >= 1
        assert positions[-1] <= length
        assert np.all(np.diff(positions) > 0)
