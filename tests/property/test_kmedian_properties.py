"""Property-based tests for the k-median extension."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coreset.bucket import WeightedPointSet
from repro.extensions.kmedian import (
    kmedian_cost,
    kmedian_seeding,
    kmedian_sensitivity_coreset,
)
from repro.kmeans.cost import kmeans_cost

finite_floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


@st.composite
def points_and_centers(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    k = draw(st.integers(min_value=1, max_value=4))
    d = draw(st.integers(min_value=1, max_value=3))
    points = draw(
        st.lists(st.lists(finite_floats, min_size=d, max_size=d), min_size=n, max_size=n)
    )
    centers = draw(
        st.lists(st.lists(finite_floats, min_size=d, max_size=d), min_size=k, max_size=k)
    )
    return np.array(points), np.array(centers)


@given(data=points_and_centers())
def test_kmedian_cost_non_negative(data):
    points, centers = data
    assert kmedian_cost(points, centers) >= 0.0


@given(data=points_and_centers())
def test_adding_a_center_never_increases_kmedian_cost(data):
    points, centers = data
    extra = np.vstack([centers, points[:1]])
    # Distances come from the BLAS-friendly ||x||^2 - 2 x.c + ||c||^2
    # expansion, whose rounding differs with the center matrix's shape, so
    # "never increases" holds only up to a magnitude-relative tolerance.
    scale = max(float(np.max(np.abs(points))), float(np.max(np.abs(centers))), 1.0)
    tolerance = 1e-7 * points.shape[0] * scale
    assert kmedian_cost(points, extra) <= kmedian_cost(points, centers) + tolerance


@given(data=points_and_centers(), scale=st.floats(min_value=0.1, max_value=10.0))
def test_kmedian_cost_scales_linearly_with_weights(data, scale):
    points, centers = data
    base = kmedian_cost(points, centers)
    weighted = kmedian_cost(points, centers, weights=np.full(points.shape[0], scale))
    assert abs(weighted - base * scale) <= 1e-6 * max(1.0, abs(base * scale))


@given(data=points_and_centers())
def test_kmedian_cost_bounded_by_kmeans_relationship(data):
    """Cauchy-Schwarz: (sum d_i)^2 <= n * sum d_i^2, relating the two objectives."""
    points, centers = data
    n = points.shape[0]
    median_cost = kmedian_cost(points, centers)
    means_cost = kmeans_cost(points, centers)
    assert median_cost**2 <= n * means_cost + 1e-6 * max(1.0, n * means_cost)


@given(
    n=st.integers(min_value=1, max_value=60),
    k=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=30, deadline=None)
def test_kmedian_seeding_returns_input_points(n, k, seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 3))
    centers = kmedian_seeding(points, k, rng=rng)
    assert centers.shape[0] == min(k, n)
    for center in centers:
        assert np.min(np.linalg.norm(points - center, axis=1)) <= 1e-9


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=20, deadline=None)
def test_kmedian_coreset_size_and_weights(seed):
    rng = np.random.default_rng(seed)
    data = WeightedPointSet.from_points(rng.normal(size=(300, 3)))
    coreset = kmedian_sensitivity_coreset(data, k=3, m=80, rng=rng)
    assert coreset.size == 80
    assert np.all(coreset.weights >= 0.0)
    assert np.all(np.isfinite(coreset.weights))
    # Total weight preserved within a generous statistical margin.
    assert 0.4 * data.total_weight <= coreset.total_weight <= 2.5 * data.total_weight
