"""Property tests: warm-start queries match cold-start quality; Fact 2 counters.

Two families of invariants guard the query-serving pipeline:

* **Equivalence** — on static and on drifting streams, a clusterer with
  warm-start refinement must return centers whose cost (over the points seen
  so far) stays within the approximation tolerance of an identically
  configured cold-start clusterer.  The paper's guarantee is a constant
  (O(log k)) approximation through the coreset; the engine's drift guard
  additionally bounds any warm answer by ``drift_ratio`` times the previous
  query's normalized cost, so a modest multiplicative envelope must hold.

* **Fact 2 accounting** — when queries arrive at least once per base bucket,
  the coreset needed for ``major(N, r)`` is always cached (Fact 2), so CC
  must never fall back to the full CT merge, and the cache's hit/miss
  counters are exactly predictable from the numeral decomposition: every
  query at a fresh ``N`` misses the exact-``N`` probe and hits the
  ``major(N, r)`` probe whenever ``major(N, r) > 0``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import StreamingConfig
from repro.core.driver import CachedCoresetTreeClusterer
from repro.core.numeral import major
from repro.kmeans.cost import kmeans_cost

# Small but non-trivial streams keep hypothesis runs fast while exercising
# multiple buckets, merges, and cache evictions per example.
BUCKET = 60


def _mixture(sample_seed: int, n: int, d: int = 4, num_blobs: int = 4) -> np.ndarray:
    """Well-separated fixed mixture; ``sample_seed`` varies only the sample."""
    blob_centers = np.random.default_rng(777).normal(scale=25.0, size=(num_blobs, d))
    rng = np.random.default_rng(sample_seed)
    labels = rng.integers(0, num_blobs, n)
    return blob_centers[labels] + rng.normal(scale=1.0, size=(n, d))


def _paired_clusterers(k: int, seed: int):
    config = StreamingConfig(
        k=k, coreset_size=BUCKET, n_init=2, lloyd_iterations=8, seed=seed, warm_start=True
    )
    warm = CachedCoresetTreeClusterer(config)
    cold = CachedCoresetTreeClusterer(replace(config, warm_start=False))
    return warm, cold


@given(
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=200),
    num_chunks=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=15, deadline=None)
def test_warm_cost_within_tolerance_on_static_stream(k, seed, num_chunks):
    """Every warm query's cost is within a small factor of the cold query's."""
    warm, cold = _paired_clusterers(k, seed)
    # As many blobs as clusters: distinct local optima of widely different
    # cost would otherwise make ANY seeding-sensitive comparison flaky.
    stream = _mixture(seed, num_chunks * 150, num_blobs=k)
    for chunk_index in range(num_chunks):
        chunk = stream[chunk_index * 150 : (chunk_index + 1) * 150]
        warm.insert_batch(chunk)
        cold.insert_batch(chunk)
        seen = stream[: (chunk_index + 1) * 150]
        warm_cost = kmeans_cost(seen, warm.query().centers)
        cold_cost = kmeans_cost(seen, cold.query().centers)
        # Both are coreset-based approximations of the same stream; the warm
        # path must not degrade quality beyond a small constant envelope.
        assert warm_cost <= 2.0 * cold_cost + 1e-6
    # In steady state the warm path actually serves queries warm.
    assert warm.query_engine.warm_queries >= 1
    assert cold.query_engine.warm_queries == 0


@given(
    k=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
    shift=st.floats(min_value=100.0, max_value=400.0),
)
@settings(max_examples=10, deadline=None)
def test_warm_cost_within_tolerance_on_drifting_stream(k, seed, shift):
    """An abrupt distribution shift must not let warm queries go stale."""
    warm, cold = _paired_clusterers(k, seed)
    before = _mixture(seed, 300, num_blobs=k)
    after = _mixture(seed + 1, 300, num_blobs=k) + shift
    stream = np.vstack([before, after])
    for chunk_index in range(4):
        chunk = stream[chunk_index * 150 : (chunk_index + 1) * 150]
        warm.insert_batch(chunk)
        cold.insert_batch(chunk)
        seen = stream[: (chunk_index + 1) * 150]
        warm_cost = kmeans_cost(seen, warm.query().centers)
        cold_cost = kmeans_cost(seen, cold.query().centers)
        assert warm_cost <= 2.0 * cold_cost + 1e-6


def test_drift_guard_fires_on_abrupt_shift():
    """A hard jump between two consecutive queries triggers the cost-ratio guard."""
    warm, _ = _paired_clusterers(k=3, seed=0)
    warm.insert_batch(_mixture(0, 400))
    warm.query()
    warm.query()  # steady state: warm-served
    assert warm.query_engine.warm_queries >= 1
    # Flood the stream with a far-away distribution, then query again.
    warm.insert_batch(_mixture(1, 4000) + 1000.0)
    warm.query()
    assert warm.query_engine.drift_fallbacks >= 1


class TestFact2CacheAccounting:
    """Hit/miss counters must match the Fact 2 schedule exactly."""

    @given(
        num_buckets=st.integers(min_value=1, max_value=20),
        merge_degree=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_query_per_bucket_counters(self, num_buckets, merge_degree, seed):
        config = StreamingConfig(
            k=3,
            coreset_size=BUCKET,
            merge_degree=merge_degree,
            n_init=1,
            lloyd_iterations=3,
            seed=seed,
        )
        clusterer = CachedCoresetTreeClusterer(config)
        stream = _mixture(seed, num_buckets * BUCKET)
        for index in range(num_buckets):
            clusterer.insert_batch(stream[index * BUCKET : (index + 1) * BUCKET])
            clusterer.query()

        structure = clusterer.cached_tree
        # Fact 2: with a query after every bucket, major(N, r) is always
        # cached, so the CT fallback path is never taken.
        assert structure.fallback_count == 0
        # No repeated N, so every exact-N probe misses ...
        stats = structure.cache_stats()
        assert stats.misses == num_buckets
        # ... and the major(N, r) probe hits exactly when major(N, r) > 0.
        expected_hits = sum(
            1 for n in range(1, num_buckets + 1) if major(n, merge_degree) > 0
        )
        assert stats.hits == expected_hits

    def test_repeated_query_hits_exact_endpoint(self):
        config = StreamingConfig(k=3, coreset_size=BUCKET, n_init=1, seed=0)
        clusterer = CachedCoresetTreeClusterer(config)
        clusterer.insert_batch(_mixture(0, 3 * BUCKET))
        clusterer.query()
        assert clusterer.cached_tree.cached_answer_count == 0
        clusterer.query()  # same N: answered straight from the cache
        assert clusterer.cached_tree.cached_answer_count == 1
