"""Property-based tests for the PR's two new first-class algorithms.

1. **Exact bucket expiry** — the sliding-window clusterer's served coreset
   after any stream is *bit-equal* to a fresh clusterer's coreset over just
   the surviving suffix (the retained full buckets plus the partial-bucket
   tail).  This is the Braverman-style exactness claim: expired buckets
   vanish completely, and because base-bucket summaries are verbatim
   passthrough blocks the bucket-index offset between the two runs cannot
   leak into the stored bytes.

2. **Soft membership normalization** — every membership row produced by
   :func:`repro.kmeans.soft.soft_assignments` sums to 1 within 1e-9, for any
   points/centers geometry and any fuzziness exponent, including points that
   coincide exactly with one or more centers.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import StreamingConfig
from repro.extensions.decay import SlidingWindowClusterer
from repro.kmeans.soft import soft_assignments


@st.composite
def window_stream(draw):
    n = draw(st.integers(min_value=1, max_value=400))
    d = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=4, max_value=20))
    window = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    points = np.random.default_rng(seed).normal(size=(n, d))
    config = StreamingConfig(
        k=2, coreset_size=m, n_init=1, lloyd_iterations=2, seed=seed
    )
    return points, config, window


@settings(max_examples=40, deadline=None)
@given(window_stream())
def test_window_expiry_is_exact(case):
    """Post-expiry coreset is bit-equal to a fresh run over the suffix."""
    points, config, window = case
    full = SlidingWindowClusterer(config, window_buckets=window)
    full.insert_batch(points)

    m = config.bucket_size
    surviving = full.window_structure.retained_buckets * m + full._buffer.size
    fresh = SlidingWindowClusterer(config, window_buckets=window)
    if surviving:
        fresh.insert_batch(points[-surviving:])

    assert fresh.window_structure.retained_buckets == full.window_structure.retained_buckets
    full_coreset = full._coreset_pieces()
    fresh_coreset = fresh._coreset_pieces()
    np.testing.assert_array_equal(full_coreset.points, fresh_coreset.points)
    np.testing.assert_array_equal(full_coreset.weights, fresh_coreset.weights)


@settings(max_examples=40, deadline=None)
@given(window_stream())
def test_window_memory_bound(case):
    """Stored points never exceed the window plus one partial bucket."""
    points, config, window = case
    clusterer = SlidingWindowClusterer(config, window_buckets=window)
    clusterer.insert_batch(points)
    assert clusterer.stored_points() <= (window + 1) * config.bucket_size
    assert clusterer.points_seen == points.shape[0]


@st.composite
def membership_case(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    k = draw(st.integers(min_value=1, max_value=6))
    d = draw(st.integers(min_value=1, max_value=5))
    fuzziness = draw(st.floats(min_value=1.01, max_value=8.0))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    scale = draw(st.sampled_from([1e-3, 1.0, 1e3]))
    rng = np.random.default_rng(seed)
    points = rng.normal(scale=scale, size=(n, d))
    centers = rng.normal(scale=scale, size=(k, d))
    # Sometimes pin a point exactly onto a center to hit the singularity rule.
    if draw(st.booleans()) and n >= 1:
        points[0] = centers[draw(st.integers(min_value=0, max_value=k - 1))]
    return points, centers, fuzziness


@settings(max_examples=60, deadline=None)
@given(membership_case())
def test_soft_membership_rows_sum_to_one(case):
    points, centers, fuzziness = case
    u = soft_assignments(points, centers, fuzziness)
    assert u.shape == (points.shape[0], centers.shape[0])
    assert np.all(u >= 0.0)
    np.testing.assert_allclose(u.sum(axis=1), 1.0, atol=1e-9)
