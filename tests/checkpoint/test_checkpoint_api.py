"""API tests for the checkpoint subsystem: format, methods, and integrations.

Covers the on-disk layout (manifest fields, per-shard payload files), the
``snapshot()``/``restore()`` convenience methods, snapshot overwrite
semantics, and the harness/CLI integration (``checkpoint_interval``,
``resume_from``, ``--checkpoint-to``/``--resume-from``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.harness import StreamingExperiment, run_experiment
from repro.checkpoint import (
    FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.cli import main
from repro.core.base import StreamingClusterer
from repro.core.driver import CachedCoresetTreeClusterer
from repro.parallel.engine import ShardedEngine
from repro.queries.schedule import FixedIntervalSchedule

from _checkpoint_utils import small_streaming_config


class TestFormat:
    def test_layout_and_manifest_fields(self, tmp_path, checkpoint_stream):
        clusterer = CachedCoresetTreeClusterer(small_streaming_config(3))
        clusterer.insert_batch(checkpoint_stream[:300])
        path = clusterer.snapshot(tmp_path / "ckpt")

        assert (path / "manifest.json").is_file()
        assert (path / "state.npz").is_file()
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["algorithm"] == "cc"
        assert manifest["class"] == "CachedCoresetTreeClusterer"
        assert manifest["fingerprint"].startswith("sha256:")
        assert manifest["config"]["streaming"]["k"] == 3
        # RNG states live in the JSON manifest (inspectable without numpy).
        assert "bit_generator" in manifest["state"]["rng"]

    def test_sharded_layout_one_payload_per_shard(self, tmp_path, checkpoint_stream):
        with ShardedEngine(small_streaming_config(3), num_shards=3) as engine:
            engine.insert_batch(checkpoint_stream[:300])
            path = engine.snapshot(tmp_path / "ckpt")
        names = sorted(p.name for p in path.iterdir())
        assert names == [
            "manifest.json",
            "shard-0000.npz",
            "shard-0001.npz",
            "shard-0002.npz",
            "state.npz",
        ]
        manifest = json.loads((path / "manifest.json").read_text())
        assert len(manifest["shards"]) == 3
        assert manifest["runtime"]["backend"] == "serial"
        # The backend is runtime, not config: it must not shift the fingerprint.
        assert "backend" not in manifest["config"]

    def test_snapshot_overwrites_cleanly(self, tmp_path, checkpoint_stream):
        # A 3-shard snapshot overwritten by a single-clusterer snapshot must
        # not leave stale shard payloads behind.
        target = tmp_path / "ckpt"
        with ShardedEngine(small_streaming_config(3), num_shards=3) as engine:
            engine.insert_batch(checkpoint_stream[:300])
            engine.snapshot(target)
        clusterer = CachedCoresetTreeClusterer(small_streaming_config(3))
        clusterer.insert_batch(checkpoint_stream[:300])
        clusterer.snapshot(target)
        assert sorted(p.name for p in target.iterdir()) == ["manifest.json", "state.npz"]
        assert isinstance(load_checkpoint(target), CachedCoresetTreeClusterer)

    def test_restore_from_base_class(self, tmp_path, checkpoint_stream):
        clusterer = CachedCoresetTreeClusterer(small_streaming_config(3))
        clusterer.insert_batch(checkpoint_stream[:300])
        path = clusterer.snapshot(tmp_path / "ckpt")
        restored = StreamingClusterer.restore(path)
        assert isinstance(restored, CachedCoresetTreeClusterer)

    def test_empty_clusterer_roundtrip(self, tmp_path):
        # Snapshotting before the first point must work (cold standby).
        clusterer = CachedCoresetTreeClusterer(small_streaming_config(3))
        restored = load_checkpoint(save_checkpoint(clusterer, tmp_path / "ckpt"))
        assert restored.points_seen == 0
        restored.insert_batch(np.random.default_rng(0).normal(size=(120, 4)))
        assert restored.query().centers.shape == (3, 4)


class TestHarnessIntegration:
    def test_interval_checkpoints_and_resume(self, tmp_path, checkpoint_stream):
        config = small_streaming_config(13)
        schedule = FixedIntervalSchedule(400)
        full = run_experiment(
            StreamingExperiment("cc", config, schedule=schedule), checkpoint_stream
        )
        first = run_experiment(
            StreamingExperiment(
                "cc",
                config,
                schedule=schedule,
                checkpoint_interval=300,
                checkpoint_dir=tmp_path / "steps",
                checkpoint_to=tmp_path / "final",
            ),
            checkpoint_stream[:800],
        )
        assert first.checkpoints, "interval snapshots were not written"
        assert first.checkpoints[-1] == tmp_path / "final"
        # Snapshot time is accounted in its own counter, not as update/query.
        assert first.checkpoint_seconds > 0.0

        resumed = run_experiment(
            StreamingExperiment(
                "cc", config, schedule=schedule, resume_from=tmp_path / "final"
            ),
            checkpoint_stream[800:],
        )
        np.testing.assert_array_equal(resumed.final_centers, full.final_centers)

    def test_resume_with_wrong_config_raises(self, tmp_path, checkpoint_stream):
        config = small_streaming_config(13)
        run_experiment(
            StreamingExperiment(
                "cc",
                config,
                schedule=FixedIntervalSchedule(400),
                checkpoint_to=tmp_path / "final",
            ),
            checkpoint_stream[:800],
        )
        with pytest.raises(CheckpointError, match="different structure configuration"):
            run_experiment(
                StreamingExperiment(
                    "rcc",
                    config,
                    schedule=FixedIntervalSchedule(400),
                    resume_from=tmp_path / "final",
                ),
                checkpoint_stream[800:],
            )

    def test_interval_without_dir_rejected(self, checkpoint_stream):
        with pytest.raises(ValueError, match="set together"):
            run_experiment(
                StreamingExperiment(
                    "cc", small_streaming_config(13), checkpoint_interval=100
                ),
                checkpoint_stream[:200],
            )

    def test_keep_last_prunes_interval_snapshots(self, tmp_path, checkpoint_stream):
        result = run_experiment(
            StreamingExperiment(
                "cc",
                small_streaming_config(13),
                schedule=FixedIntervalSchedule(400),
                checkpoint_interval=200,
                checkpoint_dir=tmp_path,
                checkpoint_keep_last=2,
            ),
            checkpoint_stream[:1000],
        )
        on_disk = sorted(p.name for p in tmp_path.iterdir() if p.name.startswith("ckpt-"))
        assert len(on_disk) == 2
        # RunResult still records every write, including the pruned ones.
        assert len(result.checkpoints) > 2
        assert sorted(p.name for p in result.checkpoints[-2:]) == on_disk

    def test_keep_last_validation(self, tmp_path, checkpoint_stream):
        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            run_experiment(
                StreamingExperiment(
                    "cc", small_streaming_config(13), checkpoint_keep_last=2
                ),
                checkpoint_stream[:200],
            )
        with pytest.raises(ValueError, match=">= 1"):
            run_experiment(
                StreamingExperiment(
                    "cc",
                    small_streaming_config(13),
                    checkpoint_interval=200,
                    checkpoint_dir=tmp_path,
                    checkpoint_keep_last=0,
                ),
                checkpoint_stream[:200],
            )

    def test_sharded_resume(self, tmp_path, checkpoint_stream):
        config = small_streaming_config(13)
        # The schedule restarts relative to the resumed stream, so the split
        # (700) must be a multiple of the interval for the query positions of
        # split+resume to line up with the uninterrupted run.
        schedule = FixedIntervalSchedule(350)
        full = run_experiment(
            StreamingExperiment("cc", config, schedule=schedule, shards=3),
            checkpoint_stream,
        )
        run_experiment(
            StreamingExperiment(
                "cc",
                config,
                schedule=schedule,
                shards=3,
                checkpoint_to=tmp_path / "half",
            ),
            checkpoint_stream[:700],
        )
        resumed = run_experiment(
            StreamingExperiment(
                "cc",
                config,
                schedule=schedule,
                shards=3,
                backend="thread",
                resume_from=tmp_path / "half",
            ),
            checkpoint_stream[700:],
        )
        np.testing.assert_array_equal(resumed.final_centers, full.final_centers)


class TestCliIntegration:
    def test_checkpoint_to_then_resume(self, tmp_path, capsys):
        target = tmp_path / "run.ckpt"
        base = [
            "run",
            "--algorithm",
            "cc",
            "--dataset",
            "covtype",
            "--k",
            "4",
            "--num-points",
            "2000",
            "--query-interval",
            "1000",
        ]
        code = main(
            base + ["--checkpoint-to", str(target), "--checkpoint-interval", "800"]
        )
        assert code == 0
        assert (target / "manifest.json").is_file()
        out = capsys.readouterr().out
        assert "Checkpoints written" in out
        # Crash-recovery flow: rerun with the SAME flags from a mid-run
        # snapshot — the already-ingested prefix of the identical regenerated
        # stream is skipped, the remainder is consumed.
        mid = sorted((tmp_path / "run.ckpt.steps").iterdir())[0]
        assert main(base + ["--resume-from", str(mid)]) == 0
        # Resuming from the final snapshot has nothing left to ingest: a
        # clear error, never a silent double-ingestion.
        code = main(base + ["--resume-from", str(target)])
        assert code == 2
        assert "already covers" in capsys.readouterr().err

    def test_resume_with_different_num_points_rejected(self, tmp_path, capsys):
        # Dataset generation is not prefix-consistent across --num-points,
        # so resuming over a "longer" stream must be refused, not spliced.
        target = tmp_path / "run.ckpt"
        base = [
            "run",
            "--algorithm",
            "cc",
            "--dataset",
            "covtype",
            "--k",
            "4",
            "--query-interval",
            "1000",
        ]
        assert main(base + ["--num-points", "2000", "--checkpoint-to", str(target)]) == 0
        capsys.readouterr()
        code = main(base + ["--num-points", "4000", "--resume-from", str(target)])
        assert code == 2
        assert "different stream" in capsys.readouterr().err

    def test_resume_with_mismatched_flags_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "run.ckpt"
        base = [
            "run",
            "--algorithm",
            "cc",
            "--dataset",
            "covtype",
            "--num-points",
            "2000",
            "--query-interval",
            "1000",
        ]
        assert main(base + ["--k", "4", "--checkpoint-to", str(target)]) == 0
        assert main(base + ["--k", "5", "--resume-from", str(target)]) == 2
        assert "different structure configuration" in capsys.readouterr().err

    def test_interval_requires_checkpoint_to(self, capsys):
        code = main(
            [
                "run",
                "--algorithm",
                "cc",
                "--num-points",
                "500",
                "--checkpoint-interval",
                "100",
            ]
        )
        assert code == 2
        assert "--checkpoint-to" in capsys.readouterr().err

    def test_non_positive_interval_rejected(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--algorithm",
                "cc",
                "--num-points",
                "500",
                "--checkpoint-to",
                str(tmp_path / "ck"),
                "--checkpoint-interval",
                "0",
            ]
        )
        assert code == 2
        assert "must be positive" in capsys.readouterr().err

    def test_resume_with_different_stream_rejected(self, tmp_path, capsys):
        # The structure fingerprint cannot see the dataset or, for baselines
        # like 'sequential', the stream seed; the annotations must.
        target = tmp_path / "run.ckpt"
        base = [
            "run",
            "--algorithm",
            "sequential",
            "--k",
            "4",
            "--query-interval",
            "1000",
        ]
        assert main(
            base
            + ["--dataset", "covtype", "--seed", "0", "--num-points", "2000",
               "--checkpoint-to", str(target)]
        ) == 0
        capsys.readouterr()
        # Same flags, different stream seed: refused, not silently spliced.
        code = main(
            base
            + ["--dataset", "covtype", "--seed", "7", "--num-points", "4000",
               "--resume-from", str(target)]
        )
        assert code == 2
        assert "different stream" in capsys.readouterr().err
