"""Fixtures for the checkpoint/restore test battery (helpers in _checkpoint_utils)."""

from __future__ import annotations

import numpy as np
import pytest

from _checkpoint_utils import enabled_backends, make_checkpoint_stream


@pytest.fixture(params=enabled_backends())
def backend(request) -> str:
    """Parametrized over every executor backend enabled via REPRO_TEST_BACKENDS."""
    return request.param


@pytest.fixture(scope="session")
def checkpoint_stream() -> np.ndarray:
    """A mixed 3-cluster stream (1400 x 4) shared across checkpoint tests."""
    return make_checkpoint_stream()
