"""Error-path suite: every invalid checkpoint fails with CheckpointError.

The operational contract: a truncated, tampered, version-skewed, or simply
wrong checkpoint must surface as a clear :class:`CheckpointError` — never a
silent misload and never a bare crash from json/zipfile/numpy internals.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import (
    FORMAT_VERSION,
    CheckpointError,
    checkpoint_fingerprint,
    config_fingerprint,
    fingerprint_for,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.driver import CachedCoresetTreeClusterer, CoresetTreeClusterer
from repro.parallel.engine import ShardedEngine

from _checkpoint_utils import small_streaming_config


@pytest.fixture()
def checkpoint(tmp_path, checkpoint_stream):
    """A valid CC checkpoint to corrupt in various ways."""
    clusterer = CachedCoresetTreeClusterer(small_streaming_config(5))
    clusterer.insert_batch(checkpoint_stream[:500])
    clusterer.query()
    return save_checkpoint(clusterer, tmp_path / "ckpt")


def _edit_manifest(path, mutate):
    """Apply ``mutate`` to the manifest dict and re-sign it so the edit is
    reachable past the self-consistency check (unless mutate breaks that too)."""
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    mutate(manifest)
    manifest["fingerprint"] = config_fingerprint(
        manifest["algorithm"], manifest["config"]
    )
    manifest_path.write_text(json.dumps(manifest))


class TestManifestValidation:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="not a checkpoint directory"):
            load_checkpoint(tmp_path / "nope")

    def test_missing_manifest(self, checkpoint):
        (checkpoint / "manifest.json").unlink()
        with pytest.raises(CheckpointError, match="missing manifest.json"):
            load_checkpoint(checkpoint)

    def test_corrupt_manifest_json(self, checkpoint):
        (checkpoint / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="cannot parse"):
            load_checkpoint(checkpoint)

    def test_format_version_mismatch(self, checkpoint):
        manifest_path = checkpoint / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(checkpoint)

    def test_tampered_manifest_fails_self_check(self, checkpoint):
        # Edit the config WITHOUT re-signing: the stored fingerprint no
        # longer matches the manifest contents.
        manifest_path = checkpoint / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["config"]["streaming"]["k"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="fingerprint does not match"):
            load_checkpoint(checkpoint)

    def test_unknown_algorithm(self, checkpoint):
        _edit_manifest(checkpoint, lambda m: m.update(algorithm="no-such-algo"))
        with pytest.raises(CheckpointError, match="unknown to this build"):
            load_checkpoint(checkpoint)

    def test_missing_state_field(self, checkpoint):
        manifest_path = checkpoint / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["state"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="missing the 'state' field"):
            load_checkpoint(checkpoint)


class TestPayloadValidation:
    def test_truncated_payload(self, checkpoint):
        payload = checkpoint / "state.npz"
        payload.write_bytes(payload.read_bytes()[: payload.stat().st_size // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(checkpoint)

    def test_missing_payload(self, checkpoint):
        (checkpoint / "state.npz").unlink()
        with pytest.raises(CheckpointError, match="is missing"):
            load_checkpoint(checkpoint)

    def test_garbage_payload(self, checkpoint):
        (checkpoint / "state.npz").write_bytes(b"definitely not a zip file")
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(checkpoint)

    def test_malformed_state_tree(self, checkpoint):
        # Structurally valid manifest whose state no longer matches the
        # algorithm's expectations: surfaced as CheckpointError, not KeyError.
        _edit_manifest(checkpoint, lambda m: m["state"].pop("structure"))
        with pytest.raises(CheckpointError, match="malformed"):
            load_checkpoint(checkpoint)

    def test_corrupt_rng_state(self, checkpoint):
        # Regression: an unknown bit-generator name used to escape as a bare
        # AttributeError from numpy instead of CheckpointError.
        _edit_manifest(
            checkpoint,
            lambda m: m["state"]["rng"].update(bit_generator="NotARealBitGen"),
        )
        with pytest.raises(CheckpointError):
            load_checkpoint(checkpoint)


class TestOverwriteCrashSafety:
    def test_failed_overwrite_keeps_previous_snapshot(
        self, checkpoint, checkpoint_stream, monkeypatch
    ):
        # Regression: overwriting used to delete the old manifest before
        # writing new payloads, so a crash mid-write destroyed the only good
        # snapshot.  Now the replacement is staged in a sibling directory.
        from repro.checkpoint import store

        before = (checkpoint / "manifest.json").read_bytes()

        def exploding_write(path, arrays):
            raise CheckpointError("disk full (simulated)")

        monkeypatch.setattr(store, "_write_npz", exploding_write)
        clusterer = CachedCoresetTreeClusterer(small_streaming_config(5))
        clusterer.insert_batch(checkpoint_stream[:200])
        with pytest.raises(CheckpointError):
            save_checkpoint(clusterer, checkpoint)
        monkeypatch.undo()

        # The original snapshot is untouched and still loads.
        assert (checkpoint / "manifest.json").read_bytes() == before
        restored = load_checkpoint(checkpoint)
        assert restored.points_seen == 500

    def test_overwrite_leaves_no_staging_residue(self, checkpoint, checkpoint_stream):
        clusterer = CachedCoresetTreeClusterer(small_streaming_config(5))
        clusterer.insert_batch(checkpoint_stream[:200])
        save_checkpoint(clusterer, checkpoint)
        residue = [
            p.name
            for p in checkpoint.parent.iterdir()
            if ".tmp-" in p.name or ".old-" in p.name
        ]
        assert residue == []
        assert load_checkpoint(checkpoint).points_seen == 200


class TestFingerprintChecks:
    def test_expected_fingerprint_match(self, checkpoint):
        expected = fingerprint_for(CachedCoresetTreeClusterer(small_streaming_config(5)))
        assert checkpoint_fingerprint(checkpoint) == expected
        restored = load_checkpoint(checkpoint, expected_fingerprint=expected)
        assert isinstance(restored, CachedCoresetTreeClusterer)

    def test_wrong_config_fingerprint(self, checkpoint):
        from dataclasses import replace

        wrong_k = replace(small_streaming_config(5), k=7)
        other = fingerprint_for(CachedCoresetTreeClusterer(wrong_k))
        with pytest.raises(CheckpointError, match="different structure configuration"):
            load_checkpoint(checkpoint, expected_fingerprint=other)

    def test_seed_changes_fingerprint(self, checkpoint):
        different_seed = fingerprint_for(
            CachedCoresetTreeClusterer(small_streaming_config(6))
        )
        with pytest.raises(CheckpointError, match="different structure configuration"):
            load_checkpoint(checkpoint, expected_fingerprint=different_seed)

    def test_wrong_algorithm_fingerprint(self, checkpoint):
        ct = fingerprint_for(CoresetTreeClusterer(small_streaming_config(5)))
        with pytest.raises(CheckpointError, match="different structure configuration"):
            load_checkpoint(checkpoint, expected_fingerprint=ct)

    def test_non_scalar_annotations_rejected_cleanly(self, tmp_path, checkpoint_stream):
        # Regression: unserialisable annotations used to escape as a bare
        # TypeError from json and leak the .tmp-<pid> staging directory.
        clusterer = CachedCoresetTreeClusterer(small_streaming_config(5))
        clusterer.insert_batch(checkpoint_stream[:200])
        with pytest.raises(CheckpointError, match="JSON scalars"):
            save_checkpoint(
                clusterer, tmp_path / "bad", annotations={"when": object()}
            )
        assert list(tmp_path.iterdir()) == []

    def test_annotation_mismatch(self, tmp_path, checkpoint_stream):
        clusterer = CachedCoresetTreeClusterer(small_streaming_config(5))
        clusterer.insert_batch(checkpoint_stream[:200])
        path = save_checkpoint(
            clusterer, tmp_path / "ann", annotations={"dataset": "covtype"}
        )
        restored = load_checkpoint(path, expected_annotations={"dataset": "covtype"})
        assert restored.points_seen == 200
        with pytest.raises(CheckpointError, match="different stream"):
            load_checkpoint(path, expected_annotations={"dataset": "power"})
        with pytest.raises(CheckpointError, match="no 'stream_seed' annotation"):
            load_checkpoint(path, expected_annotations={"stream_seed": 3})

    def test_restore_validates_class(self, checkpoint):
        with pytest.raises(CheckpointError, match="not a CoresetTreeClusterer"):
            CoresetTreeClusterer.restore(checkpoint)
        restored = CachedCoresetTreeClusterer.restore(checkpoint)
        assert isinstance(restored, CachedCoresetTreeClusterer)


class TestShardedErrors:
    @pytest.fixture()
    def sharded_checkpoint(self, tmp_path, checkpoint_stream):
        with ShardedEngine(small_streaming_config(5), num_shards=3) as engine:
            engine.insert_batch(checkpoint_stream[:600])
            return save_checkpoint(engine, tmp_path / "sharded")

    def test_missing_shard_payload(self, sharded_checkpoint):
        (sharded_checkpoint / "shard-0001.npz").unlink()
        with pytest.raises(CheckpointError, match="is missing"):
            load_checkpoint(sharded_checkpoint)

    def test_shard_count_mismatch(self, sharded_checkpoint):
        _edit_manifest(
            sharded_checkpoint, lambda m: m["config"].update(num_shards=5)
        )
        with pytest.raises(CheckpointError, match="shard"):
            load_checkpoint(sharded_checkpoint)

    def test_unknown_override_rejected(self, sharded_checkpoint):
        with pytest.raises(CheckpointError, match="backend"):
            load_checkpoint(sharded_checkpoint, bogus_option=True)

    def test_single_clusterer_rejects_overrides(self, checkpoint):
        with pytest.raises(CheckpointError, match="no restore overrides"):
            load_checkpoint(checkpoint, backend="thread")

    def test_class_mismatch_restore_closes_engine(self, sharded_checkpoint):
        # Regression: restore() used to leak the fully constructed engine
        # (live worker threads/processes) when the class check failed.
        import threading

        with pytest.raises(CheckpointError, match="not a CoresetTreeClusterer"):
            CoresetTreeClusterer.restore(sharded_checkpoint, backend="thread")
        leftovers = [
            t.name for t in threading.enumerate() if t.name.startswith("shard-")
        ]
        assert leftovers == []
