"""Property tests: ingest→snapshot→restore→ingest is bit-identical.

The contract under test (the whole point of the checkpoint subsystem): for
every algorithm, splitting a stream at an arbitrary point, snapshotting,
restoring in a "new process", and continuing must produce *exactly* the
state an uninterrupted run reaches — same coresets, same query centers (bit
for bit, not approximately), warm-start and phase bookkeeping included.

Hypothesis drives the split position, the batch/point ingestion pattern, and
whether queries (which mutate caches, warm-start state, and RNG streams)
happen before the snapshot.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.parallel.engine import ShardedEngine

from _checkpoint_utils import ALGORITHM_FACTORIES, small_streaming_config


def _ingest(algorithm, points: np.ndarray, pattern: int) -> None:
    """Feed ``points`` via the batch or per-point path (both must round-trip)."""
    if pattern == 0:
        algorithm.insert_batch(points)
    elif pattern == 1:
        # Two uneven batches exercise partial-bucket boundaries.
        cut = max(1, points.shape[0] // 3)
        algorithm.insert_batch(points[:cut])
        algorithm.insert_batch(points[cut:])
    else:
        algorithm.insert_batch(points[: points.shape[0] // 2])
        for row in points[points.shape[0] // 2 :]:
            algorithm.insert(row)


def _roundtrip_equal(make, points, split, pattern, query_before, tmp_path):
    """Run reference vs snapshot/restore instances and compare bitwise."""
    reference = make()
    candidate = make()
    head, tail = points[:split], points[split:]
    if head.shape[0]:
        _ingest(reference, head, pattern)
        _ingest(candidate, head, pattern)
        if query_before:
            reference.query()
            candidate.query()

    path = save_checkpoint(candidate, tmp_path / "ckpt")
    restored = load_checkpoint(path)
    assert type(restored) is type(candidate)

    _ingest(reference, tail, pattern)
    _ingest(restored, tail, pattern)
    assert restored.points_seen == reference.points_seen == points.shape[0]
    assert restored.stored_points() == reference.stored_points()

    expected = reference.query()
    actual = restored.query()
    np.testing.assert_array_equal(actual.centers, expected.centers)
    # A second query exercises the restored warm-start / cache state.
    np.testing.assert_array_equal(restored.query().centers, reference.query().centers)


@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    split=st.integers(min_value=1, max_value=1399),
    pattern=st.integers(min_value=0, max_value=2),
    query_before=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_roundtrip_bit_identical(
    name, split, pattern, query_before, seed, checkpoint_stream, tmp_path
):
    """Every algorithm: restore-then-continue equals never-stopped, bitwise."""
    factory = ALGORITHM_FACTORIES[name]
    _roundtrip_equal(
        lambda: factory(seed),
        checkpoint_stream,
        split,
        pattern,
        query_before,
        tmp_path,
    )


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    split=st.integers(min_value=1, max_value=1399),
    routing=st.sampled_from(["round_robin", "hash", "random"]),
    query_before=st.booleans(),
)
def test_sharded_roundtrip_bit_identical(
    split, routing, query_before, backend, checkpoint_stream, tmp_path
):
    """4-shard engine: snapshot on ``backend``, restore, continue — bitwise equal.

    The reference engine runs on the serial backend; backends are already
    proven bit-equivalent by tests/parallel, so this isolates checkpointing.
    Runs on every backend enabled via ``REPRO_TEST_BACKENDS`` — on the 1-core
    container the process backend still runs (correctness needs no cores),
    it is merely slower.
    """
    config = small_streaming_config(31)
    head, tail = checkpoint_stream[:split], checkpoint_stream[split:]

    with ShardedEngine(config, num_shards=4, backend="serial", routing=routing) as ref:
        with ShardedEngine(config, num_shards=4, backend=backend, routing=routing) as eng:
            if head.shape[0]:
                ref.insert_batch(head)
                eng.insert_batch(head)
                if query_before:
                    ref.query()
                    eng.query()
            path = save_checkpoint(eng, tmp_path / "ckpt")
        # The snapshotted engine is now closed: restore is a fresh "process".
        restored = load_checkpoint(path, backend=backend)
        try:
            ref.insert_batch(tail)
            restored.insert_batch(tail)
            assert restored.points_seen == ref.points_seen
            assert restored.shard_loads() == ref.shard_loads()
            np.testing.assert_array_equal(
                restored.query().centers, ref.query().centers
            )
        finally:
            restored.close()


def test_sharded_restore_onto_other_backends(checkpoint_stream, tmp_path):
    """A snapshot restores onto any executor backend with identical results."""
    config = small_streaming_config(7)
    head, tail = checkpoint_stream[:900], checkpoint_stream[900:]
    with ShardedEngine(config, num_shards=4, backend="serial") as eng:
        eng.insert_batch(head)
        eng.query()
        path = save_checkpoint(eng, tmp_path / "ckpt")
        eng.insert_batch(tail)
        expected = eng.query().centers

    for backend in ("serial", "thread", "process"):
        restored = load_checkpoint(path, backend=backend)
        try:
            assert restored.backend_name == backend
            restored.insert_batch(tail)
            np.testing.assert_array_equal(restored.query().centers, expected)
        finally:
            restored.close()


def test_registry_covers_every_factory():
    """The test factory table and the checkpoint registry stay in sync."""
    from repro.checkpoint import registered_classes

    registered = set(registered_classes())
    covered = set(ALGORITHM_FACTORIES) | {"sharded"}
    assert covered == registered
