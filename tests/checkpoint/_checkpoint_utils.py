"""Shared helpers for the checkpoint/restore test battery.

``ALGORITHM_FACTORIES`` builds one small instance of every checkpointable
algorithm; the round-trip property tests iterate it so a newly registered
algorithm is automatically covered (a test asserts the factory table and the
checkpoint registry stay in sync).

The sharded tests reuse the parallel suite's ``REPRO_TEST_BACKENDS``
environment knob so CI can bound runtime per job.  Fixtures live in the
sibling ``conftest.py``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.baselines.birch import BirchClusterer
from repro.baselines.clustream import CluStreamClusterer
from repro.baselines.sequential import SequentialKMeans
from repro.baselines.streamkmpp import StreamKMpp
from repro.baselines.streamls import StreamLSClusterer
from repro.core.base import StreamingConfig
from repro.core.driver import (
    CachedCoresetTreeClusterer,
    CoresetTreeClusterer,
    RecursiveCachedClusterer,
)
from repro.core.online_cc import OnlineCCClusterer
from repro.extensions.decay import DecayedCoresetClusterer, SlidingWindowClusterer
from repro.extensions.kmedian import KMedianCachedClusterer, KMedianConfig
from repro.extensions.soft import SoftClusteringClusterer


def small_streaming_config(seed: int = 17) -> StreamingConfig:
    """A small, fast configuration shared by the checkpoint tests.

    ``REPRO_TEST_SKETCH`` (CI knob) enables JL sketching so every round-trip
    property — snapshot→restore bit-identity in particular — also covers the
    sketched slabs and the sketcher's entropy re-derivation.
    """
    return StreamingConfig(
        k=3,
        coreset_size=40,
        merge_degree=2,
        n_init=2,
        lloyd_iterations=4,
        seed=seed,
        sketch_dim=3 if os.environ.get("REPRO_TEST_SKETCH") else None,
    )


#: name -> factory(seed) for every single-process checkpointable algorithm.
ALGORITHM_FACTORIES = {
    "ct": lambda seed: CoresetTreeClusterer(small_streaming_config(seed)),
    "cc": lambda seed: CachedCoresetTreeClusterer(small_streaming_config(seed)),
    "rcc": lambda seed: RecursiveCachedClusterer(
        small_streaming_config(seed), nesting_depth=2
    ),
    "onlinecc": lambda seed: OnlineCCClusterer(
        small_streaming_config(seed), switch_threshold=1.5
    ),
    "streamkm++": lambda seed: StreamKMpp(small_streaming_config(seed)),
    "sequential": lambda seed: SequentialKMeans(3),
    "birch": lambda seed: BirchClusterer(3, threshold=0.8, max_features=50, seed=seed),
    "clustream": lambda seed: CluStreamClusterer(3, num_microclusters=30, seed=seed),
    "streamls": lambda seed: StreamLSClusterer(3, chunk_size=120, fanout=3, seed=seed),
    "decay": lambda seed: DecayedCoresetClusterer(
        small_streaming_config(seed), decay=0.9
    ),
    "window": lambda seed: SlidingWindowClusterer(
        small_streaming_config(seed), window_buckets=4
    ),
    "soft": lambda seed: SoftClusteringClusterer(
        small_streaming_config(seed), fuzziness=1.8
    ),
    "kmedian": lambda seed: KMedianCachedClusterer(
        KMedianConfig(k=3, coreset_size=40, n_init=2, max_iterations=4, seed=seed)
    ),
}


def enabled_backends() -> tuple[str, ...]:
    """Executor backends selected via ``REPRO_TEST_BACKENDS`` (default: all)."""
    raw = os.environ.get("REPRO_TEST_BACKENDS", "serial,thread,process")
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    return names or ("serial",)


def make_checkpoint_stream() -> np.ndarray:
    """A mixed 3-cluster stream (1400 x 4) shared across checkpoint tests."""
    rng = np.random.default_rng(99)
    centers = rng.normal(scale=12.0, size=(3, 4))
    labels = rng.integers(0, 3, size=1400)
    return centers[labels] + rng.normal(scale=1.0, size=(1400, 4))
