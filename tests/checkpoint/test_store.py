"""Rotating checkpoint store: retention, validation, corrupt-fallback.

The store's promise to the supervisor: pruning never deletes the only
restorable snapshot, and ``latest_good`` silently walks past a corrupt
newest one.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.checkpoint.store import (
    STATE_NAME,
    CheckpointStore,
    checkpoint_position,
    latest_good_checkpoint,
    list_checkpoints,
    prune_checkpoints,
    validate_checkpoint,
)

from _checkpoint_utils import ALGORITHM_FACTORIES, make_checkpoint_stream


@pytest.fixture(scope="module")
def stream():
    return make_checkpoint_stream()


def _clusterer_at(stream, points):
    clusterer = ALGORITHM_FACTORIES["cc"](17)
    clusterer.insert_batch(stream[:points])
    return clusterer


def _corrupt(snapshot_dir, offset=200):
    payload = snapshot_dir / STATE_NAME
    data = bytearray(payload.read_bytes())
    data[min(offset, len(data) - 1)] ^= 0xFF
    payload.write_bytes(bytes(data))


class TestNaming:
    def test_checkpoint_position_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.path_for(12345)
        assert path.name == "ckpt-0000012345"
        assert checkpoint_position(path) == 12345

    @pytest.mark.parametrize("name", ["snapshot", "ckpt-abc", "ckpt-"])
    def test_checkpoint_position_rejects_foreign_names(self, tmp_path, name):
        with pytest.raises(CheckpointError):
            checkpoint_position(tmp_path / name)

    def test_list_ignores_staging_leftovers(self, tmp_path, stream):
        store = CheckpointStore(tmp_path)
        store.save(_clusterer_at(stream, 100), 100)
        (tmp_path / "ckpt-0000000200.tmp-x").mkdir()
        (tmp_path / "ckpt-0000000300.old-x").mkdir()
        (tmp_path / "unrelated").mkdir()
        assert [p.name for p in store.list()] == ["ckpt-0000000100"]


class TestRetention:
    def test_save_prunes_beyond_keep_last(self, tmp_path, stream):
        store = CheckpointStore(tmp_path, keep_last=2)
        for points in (100, 200, 300, 400):
            store.save(_clusterer_at(stream, points), points)
        assert [checkpoint_position(p) for p in store.list()] == [300, 400]

    def test_prune_returns_deleted_paths(self, tmp_path, stream):
        for points in (100, 200, 300):
            save_checkpoint(
                _clusterer_at(stream, points),
                CheckpointStore(tmp_path).path_for(points),
            )
        deleted = prune_checkpoints(tmp_path, 1)
        assert [checkpoint_position(p) for p in deleted] == [100, 200]
        assert prune_checkpoints(tmp_path, 1) == []

    def test_prune_rejects_zero_keep(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep_last"):
            prune_checkpoints(tmp_path, 0)
        with pytest.raises(CheckpointError, match="keep_last"):
            CheckpointStore(tmp_path, keep_last=0)

    def test_prune_never_deletes_the_only_good_snapshot(self, tmp_path, stream):
        store = CheckpointStore(tmp_path, keep_last=1)
        good = save_checkpoint(_clusterer_at(stream, 100), store.path_for(100))
        bad = save_checkpoint(_clusterer_at(stream, 200), store.path_for(200))
        _corrupt(bad)
        deleted = prune_checkpoints(tmp_path, 1)
        # The newest (retained) snapshot is corrupt, so the good older one
        # is spared even though retention would normally drop it.
        assert deleted == []
        assert good in list_checkpoints(tmp_path)
        assert latest_good_checkpoint(tmp_path) == good


class TestValidation:
    def test_validate_accepts_a_fresh_snapshot(self, tmp_path, stream):
        path = save_checkpoint(_clusterer_at(stream, 150), tmp_path / "ckpt-0000000150")
        manifest = validate_checkpoint(path)
        assert manifest["algorithm"] == "cc"
        assert "fingerprint" in manifest

    def test_validate_rejects_payload_bitflips(self, tmp_path, stream):
        path = save_checkpoint(_clusterer_at(stream, 150), tmp_path / "ckpt-0000000150")
        _corrupt(path)
        with pytest.raises(CheckpointError):
            validate_checkpoint(path)

    def test_latest_good_walks_past_corrupt_newest(self, tmp_path, stream):
        store = CheckpointStore(tmp_path, keep_last=5)
        for points in (100, 200, 300):
            store.save(_clusterer_at(stream, points), points)
        _corrupt(store.path_for(300))
        good = store.latest_good()
        assert good is not None and checkpoint_position(good) == 200
        restored = load_checkpoint(good)
        assert restored.points_seen == 200

    def test_latest_good_is_none_when_everything_is_bad(self, tmp_path, stream):
        store = CheckpointStore(tmp_path)
        store.save(_clusterer_at(stream, 100), 100)
        _corrupt(store.path_for(100))
        assert store.latest_good() is None
        assert latest_good_checkpoint(tmp_path / "never") is None

    def test_latest_good_respects_fingerprint(self, tmp_path, stream):
        store = CheckpointStore(tmp_path)
        store.save(_clusterer_at(stream, 100), 100)
        assert store.latest_good(expected_fingerprint="not-a-real-print") is None
