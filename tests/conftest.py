"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coreset.bucket import Bucket, WeightedPointSet
from repro.core.base import StreamingConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def blob_points() -> np.ndarray:
    """Well-separated Gaussian blobs: 4 clusters, 2000 points, 4 dimensions."""
    generator = np.random.default_rng(7)
    centers = np.array(
        [
            [0.0, 0.0, 0.0, 0.0],
            [20.0, 0.0, 0.0, 0.0],
            [0.0, 20.0, 0.0, 0.0],
            [0.0, 0.0, 20.0, 0.0],
        ]
    )
    blocks = [
        generator.normal(loc=center, scale=1.0, size=(500, 4)) for center in centers
    ]
    points = np.vstack(blocks)
    generator.shuffle(points, axis=0)
    return points


@pytest.fixture(scope="session")
def blob_centers() -> np.ndarray:
    """The true centers of :func:`blob_points`."""
    return np.array(
        [
            [0.0, 0.0, 0.0, 0.0],
            [20.0, 0.0, 0.0, 0.0],
            [0.0, 20.0, 0.0, 0.0],
            [0.0, 0.0, 20.0, 0.0],
        ]
    )


@pytest.fixture()
def small_config() -> StreamingConfig:
    """Small, fast streaming configuration used across algorithm tests."""
    return StreamingConfig(k=4, coreset_size=50, merge_degree=2, n_init=2, lloyd_iterations=5, seed=3)


def make_base_bucket(points: np.ndarray, index: int) -> Bucket:
    """Helper: wrap raw points as the ``index``-th base bucket (1-based)."""
    return Bucket(
        data=WeightedPointSet.from_points(points),
        start=index,
        end=index,
        level=0,
    )


@pytest.fixture()
def bucket_factory():
    """Expose :func:`make_base_bucket` to tests as a fixture."""
    return make_base_bucket
