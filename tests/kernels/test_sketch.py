"""JL sketching: determinism, structure, exact-space contracts, cost envelope."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.core.base import StreamingConfig
from repro.core.driver import CachedCoresetTreeClusterer
from repro.coreset.bucket import WeightedPointSet
from repro.coreset.construction import CoresetConfig, CoresetConstructor
from repro.kernels.sketch import SKETCH_KINDS, Sketcher, sketch_for, top2_chunked
from repro.kernels.workspace import Workspace
from repro.kmeans.cost import kmeans_cost, pairwise_squared_distances


def _mixture(n: int, d: int, clusters: int, seed: int) -> np.ndarray:
    """A well-separated Gaussian mixture stream (the regime JL preserves)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=15.0, size=(clusters, d))
    labels = rng.integers(0, clusters, size=n)
    return centers[labels] + rng.normal(scale=1.0, size=(n, d))


class TestSketcher:
    def test_matrix_is_deterministic_per_entropy(self):
        a = Sketcher(8, entropy=123).matrix(64)
        b = Sketcher(8, entropy=123).matrix(64)
        np.testing.assert_array_equal(a, b)

    def test_reseed_changes_matrix_and_clears_cache(self):
        sketcher = Sketcher(8, entropy=1)
        before = sketcher.matrix(32).copy()
        sketcher.reseed(2)
        assert not np.array_equal(before, sketcher.matrix(32))
        sketcher.reseed(1)
        np.testing.assert_array_equal(before, sketcher.matrix(32))

    def test_kinds_draw_independent_streams(self):
        gaussian = Sketcher(8, kind="gaussian", entropy=5).matrix(32)
        count = Sketcher(8, kind="countsketch", entropy=5).matrix(32)
        assert not np.array_equal(gaussian, count)

    def test_narrow_matrix_is_cast_from_master(self):
        sketcher = Sketcher(6, entropy=9)
        master = sketcher.matrix(40, np.float64)
        np.testing.assert_array_equal(
            sketcher.matrix(40, np.float32), master.astype(np.float32)
        )

    def test_countsketch_one_signed_entry_per_input_dim(self):
        matrix = Sketcher(7, kind="countsketch", entropy=3).matrix(100)
        nonzero = matrix != 0.0
        np.testing.assert_array_equal(nonzero.sum(axis=1), np.ones(100))
        values = matrix[nonzero]
        assert set(np.unique(values)) <= {-1.0, 1.0}

    def test_inactive_below_sketch_dim(self):
        sketcher = Sketcher(16)
        assert not sketcher.active_for(16)
        assert not sketcher.active_for(8)
        assert sketcher.active_for(17)

    def test_projection_is_float32(self):
        sketcher = Sketcher(4, entropy=2)
        out = sketcher.project(np.random.default_rng(0).normal(size=(10, 20)))
        assert out.dtype == np.float32 and out.shape == (10, 4)

    def test_sketch_for_gates_on_activity(self):
        sketcher = Sketcher(8, entropy=1)
        pts = np.zeros((5, 8))
        assert sketch_for(None, pts) is None
        assert sketch_for(sketcher, pts) is None  # d == s: inactive
        assert sketch_for(sketcher, np.zeros((0, 20))) is None  # empty
        assert sketch_for(sketcher, np.zeros((5, 20))).shape == (5, 8)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Sketcher(0)
        with pytest.raises(ValueError):
            Sketcher(4, kind="fourier")


class TestTop2Chunked:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=200),
        k=st.integers(min_value=1, max_value=9),
        d=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_brute_force(self, n, k, d, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(n, d))
        ctr = rng.normal(size=(k, d))
        pts_sq = np.einsum("ij,ij->i", pts, pts)
        first, second, first_sq = top2_chunked(
            pts, ctr, pts_sq, workspace=Workspace()
        )
        dist = pairwise_squared_distances(pts, ctr)
        ref_first = np.argmin(dist, axis=1)
        np.testing.assert_array_equal(first, ref_first)
        np.testing.assert_allclose(
            first_sq, dist[np.arange(n), ref_first], rtol=1e-9, atol=1e-9
        )
        assert np.all(first_sq >= 0.0)
        if k == 1:
            np.testing.assert_array_equal(second, ref_first)
        else:
            masked = dist.copy()
            masked[np.arange(n), ref_first] = np.inf
            np.testing.assert_array_equal(second, np.argmin(masked, axis=1))

    def test_centers_cast_to_point_dtype(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(50, 6)).astype(np.float32)
        ctr = rng.normal(size=(4, 6))  # float64 Lloyd centers
        pts_sq = np.einsum("ij,ij->i", pts, pts)
        first, second, first_sq = top2_chunked(pts, ctr, pts_sq)
        assert first_sq.dtype == np.float64
        assert first.shape == second.shape == (50,)


class TestSketchedCoresetContracts:
    def _constructor(self, sketch_dim, kind="gaussian", seed=0):
        return CoresetConstructor(
            CoresetConfig(k=4, coreset_size=30, sketch_dim=sketch_dim, sketch_kind=kind),
            seed=seed,
        )

    @pytest.mark.parametrize("kind", SKETCH_KINDS)
    def test_output_points_are_exact_input_rows(self, kind):
        """Sketching may only change WHICH points are sampled, never their
        coordinates: every output row must be an exact input row, and its
        sketch row must be that same input's sketch (gathered, not
        re-projected)."""
        constructor = self._constructor(sketch_dim=4, kind=kind)
        block = _mixture(120, 16, clusters=4, seed=7)
        data = WeightedPointSet.from_points(
            block, sketch=sketch_for(constructor.sketcher, block)
        )
        result = constructor.build_for_span(data, level=1, start=1, end=2)
        matches = (result.points[:, None, :] == block[None, :, :]).all(axis=2)
        assert matches.any(axis=1).all()
        assert result.sketch is not None and result.sketch.dtype == np.float32
        row_of = matches.argmax(axis=1)
        np.testing.assert_array_equal(result.sketch, data.sketch[row_of])

    def test_sketch_inactive_is_bitwise_noop(self):
        """sketch_dim >= d never projects, so the run must be bitwise
        identical to sketching switched off — ingest, queries, everything."""
        points = _mixture(900, 6, clusters=4, seed=3)
        for kind in SKETCH_KINDS:
            off = CachedCoresetTreeClusterer(StreamingConfig(k=4, coreset_size=40, seed=1))
            on = CachedCoresetTreeClusterer(
                StreamingConfig(
                    k=4, coreset_size=40, seed=1, sketch_dim=6, sketch_kind=kind
                )
            )
            off.insert_batch(points)
            on.insert_batch(points)
            np.testing.assert_array_equal(off.query().centers, on.query().centers)

    def test_batch_equals_pointwise_with_sketch(self):
        points = _mixture(700, 12, clusters=4, seed=5)
        config = StreamingConfig(k=4, coreset_size=40, seed=2, sketch_dim=4)
        batched = CachedCoresetTreeClusterer(config)
        looped = CachedCoresetTreeClusterer(config)
        batched.insert_batch(points)
        for row in points:
            looped.insert(row)
        np.testing.assert_array_equal(batched.query().centers, looped.query().centers)

    def test_float32_stream_composes_with_sketch(self):
        points = _mixture(800, 12, clusters=4, seed=9).astype(np.float32)
        config = StreamingConfig(
            k=4, coreset_size=40, seed=3, dtype="float32", sketch_dim=4
        )
        clusterer = CachedCoresetTreeClusterer(config)
        clusterer.insert_batch(points)
        result = clusterer.query()
        assert result.centers.dtype == np.float64
        assert np.isfinite(result.centers).all()
        exact = CachedCoresetTreeClusterer(
            StreamingConfig(k=4, coreset_size=40, seed=3, dtype="float32")
        )
        exact.insert_batch(points)
        pts64 = points.astype(np.float64)
        cost_sketch = kmeans_cost(pts64, result.centers)
        cost_exact = kmeans_cost(pts64, exact.query().centers)
        assert cost_sketch <= 1.05 * cost_exact

    def test_checkpoint_roundtrip_bitwise_with_sketch(self, tmp_path):
        points = _mixture(1000, 10, clusters=4, seed=11)
        config = StreamingConfig(k=4, coreset_size=40, seed=4, sketch_dim=4)
        reference = CachedCoresetTreeClusterer(config)
        candidate = CachedCoresetTreeClusterer(config)
        reference.insert_batch(points)
        candidate.insert_batch(points[:600])
        restored = load_checkpoint(save_checkpoint(candidate, tmp_path / "ckpt"))
        restored.insert_batch(points[600:])
        np.testing.assert_array_equal(
            reference.query().centers, restored.query().centers
        )

    def test_mixed_sketch_union_degrades_to_exact(self):
        sketcher = Sketcher(4, entropy=1)
        block = _mixture(40, 12, clusters=2, seed=13)
        sketched = WeightedPointSet.from_points(block, sketch=sketch_for(sketcher, block))
        plain = WeightedPointSet.from_points(block)
        assert sketched.union(plain).sketch is None
        assert sketched.union(sketched).sketch is not None


class TestCostEnvelope:
    """The acceptance envelope: sketched clustering cost within 5% of exact.

    ``derandomize=True`` pins the example set: the envelope is a statistical
    property of the (seeded) pipeline, so CI must replay the same examples
    rather than sample new ones per run.
    """

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        d=st.sampled_from([64, 96, 128]),
        kind=st.sampled_from(SKETCH_KINDS),
        dtype=st.sampled_from(["float64", "float32"]),
        seed=st.integers(min_value=0, max_value=31),
    )
    def test_sketched_cost_within_envelope(self, d, kind, dtype, seed):
        points = _mixture(2500, d, clusters=8, seed=seed)
        if dtype == "float32":
            points = points.astype(np.float32)
        sketch_dim = d // 4
        exact = CachedCoresetTreeClusterer(
            StreamingConfig(k=8, seed=seed, dtype=dtype)
        )
        sketched = CachedCoresetTreeClusterer(
            StreamingConfig(
                k=8, seed=seed, dtype=dtype, sketch_dim=sketch_dim, sketch_kind=kind
            )
        )
        exact.insert_batch(points)
        sketched.insert_batch(points)
        pts64 = points.astype(np.float64)
        cost_exact = kmeans_cost(pts64, exact.query().centers)
        cost_sketched = kmeans_cost(pts64, sketched.query().centers)
        assert cost_sketched <= 1.05 * cost_exact, (
            f"sketched cost {cost_sketched:.6g} exceeds 1.05x exact "
            f"{cost_exact:.6g} (d={d}, s={sketch_dim}, kind={kind}, "
            f"dtype={dtype}, seed={seed})"
        )
