"""Fused chunked distance kernels: reference equivalence and tiling invariance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.distance import (
    assign_chunked,
    chunk_rows_for,
    min_sq_update,
    set_chunk_rows_override,
    sq_distances_to_center,
)
from repro.kernels.workspace import Workspace
from repro.kmeans.cost import pairwise_squared_distances


@pytest.fixture(autouse=True)
def _restore_chunk_override():
    yield
    set_chunk_rows_override(None)


def _reference_assign(points, centers):
    dist = pairwise_squared_distances(points, centers)
    labels = np.argmin(dist, axis=1)
    return labels, dist[np.arange(points.shape[0]), labels]


class TestSqDistancesToCenter:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_matches_naive_expansion(self, dtype):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(200, 9)).astype(dtype)
        center = pts[17].copy()
        pts_sq = np.einsum("ij,ij->i", pts, pts)
        out = np.empty(200, dtype=dtype)
        sq_distances_to_center(pts, center, pts_sq, out)
        expected = np.maximum(
            pts_sq - 2.0 * (pts @ center) + center @ center, 0.0
        )
        np.testing.assert_allclose(out, expected, rtol=1e-5 if dtype == np.float32 else 1e-12)
        # The point equal to the center must come out exactly clipped at 0
        # for float64 (cancellation is caught by the clip).
        assert out[17] >= 0.0

    def test_float64_is_bitwise_fused(self):
        """The fused order (-2b) + a + c must equal a - 2b + c bit for bit."""
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(333, 13))
        center = rng.normal(size=13)
        pts_sq = np.einsum("ij,ij->i", pts, pts)
        out = np.empty(333)
        sq_distances_to_center(pts, center, pts_sq, out)
        reference = pts_sq - 2.0 * (pts @ center) + float(center @ center)
        np.maximum(reference, 0.0, out=reference)
        np.testing.assert_array_equal(out, reference)

    def test_min_sq_update_in_place(self):
        a = np.array([3.0, 1.0, 2.0])
        b = np.array([2.0, 5.0, 2.0])
        result = min_sq_update(a, b)
        assert result is a
        np.testing.assert_array_equal(a, [2.0, 1.0, 2.0])


class TestAssignChunked:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=300),
        k=st.integers(min_value=1, max_value=12),
        d=st.integers(min_value=1, max_value=10),
        dtype=st.sampled_from([np.float64, np.float32]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_reference(self, n, k, d, dtype, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(n, d)).astype(dtype)
        ctr = rng.normal(size=(k, d)).astype(dtype)
        pts_sq = np.einsum("ij,ij->i", pts, pts, dtype=np.float64)
        labels, sq = assign_chunked(pts, ctr, pts_sq, workspace=Workspace())
        ref_labels, ref_sq = _reference_assign(
            pts.astype(np.float64), ctr.astype(np.float64)
        )
        assert sq.dtype == np.float64
        tol = 1e-3 if dtype == np.float32 else 1e-8
        # Labels may differ only where two centers are within tolerance.
        disagree = labels != ref_labels
        if np.any(disagree):
            np.testing.assert_allclose(
                sq[disagree], ref_sq[disagree], rtol=tol, atol=tol
            )
        np.testing.assert_allclose(sq, ref_sq, rtol=tol, atol=tol)

    def test_chunking_is_invariant(self):
        """Every forced tile size yields the same assignment.

        Distances may shift by BLAS last-ulp rounding across tile sizes (the
        GEMM kernel choice depends on the tile's row count), so they are
        compared at float-epsilon tolerance; the tile size itself is a pure
        function of ``(k, itemsize)``, never of ingestion mode, so the
        bit-identity contracts all compare runs with identical tiling.
        """
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(257, 8))
        ctr = rng.normal(size=(5, 8))
        pts_sq = np.einsum("ij,ij->i", pts, pts)
        set_chunk_rows_override(None)
        base_labels, base_sq = assign_chunked(pts, ctr, pts_sq)
        base_labels, base_sq = base_labels.copy(), base_sq.copy()
        for rows in (1, 7, 64, 256, 10_000):
            set_chunk_rows_override(rows)
            labels, sq = assign_chunked(pts, ctr, pts_sq, workspace=Workspace())
            np.testing.assert_array_equal(labels, base_labels)
            np.testing.assert_allclose(sq, base_sq, rtol=1e-12, atol=1e-12)

    def test_same_tiling_is_bitwise_deterministic(self):
        """Two runs with identical shapes and tiling agree bit for bit —
        the property every equivalence contract actually relies on."""
        rng = np.random.default_rng(5)
        pts = rng.normal(size=(300, 10))
        ctr = rng.normal(size=(6, 10))
        pts_sq = np.einsum("ij,ij->i", pts, pts)
        l1, s1 = assign_chunked(pts, ctr, pts_sq, workspace=Workspace())
        l1, s1 = l1.copy(), s1.copy()
        l2, s2 = assign_chunked(pts, ctr, pts_sq, workspace=Workspace())
        np.testing.assert_array_equal(l1, l2)
        np.testing.assert_array_equal(s1, s2)

    def test_outputs_into_caller_buffers(self):
        rng = np.random.default_rng(4)
        pts = rng.normal(size=(50, 3))
        ctr = rng.normal(size=(4, 3))
        pts_sq = np.einsum("ij,ij->i", pts, pts)
        out_labels = np.empty(50, dtype=np.intp)
        out_sq = np.empty(50)
        labels, sq = assign_chunked(
            pts, ctr, pts_sq, out_labels=out_labels, out_sq=out_sq
        )
        assert labels is out_labels and sq is out_sq

    def test_distances_clipped_non_negative(self):
        pts = np.ones((10, 4))
        ctr = np.ones((2, 4))
        pts_sq = np.einsum("ij,ij->i", pts, pts)
        _, sq = assign_chunked(pts, ctr, pts_sq)
        assert np.all(sq >= 0.0)


class TestChunkRowsFor:
    def test_budget_shrinks_with_k(self):
        assert chunk_rows_for(10, 8) > chunk_rows_for(1000, 8)

    def test_floor_of_64_rows(self):
        assert chunk_rows_for(10_000_000, 8) == 64

    def test_env_style_override_wins(self):
        set_chunk_rows_override(17)
        assert chunk_rows_for(10, 8) == 17
        set_chunk_rows_override(None)
        assert chunk_rows_for(10, 8) != 17

    def test_budget_accounts_for_point_dimension(self):
        """The d=500 regression: a tile's working set includes the point
        block the GEMM streams through, not just the (rows, k) scratch, so
        high-dimensional points (d >> k) must shrink the tile accordingly."""
        k, itemsize, d = 20, 8, 500
        rows = chunk_rows_for(k, itemsize, dim=d)
        assert rows * (k + d) * itemsize <= 256 * 1024 or rows == 64
        # Ignoring d would overshoot the 256 KiB budget by ~d/k here.
        assert rows < chunk_rows_for(k, itemsize)

    def test_dim_none_keeps_scratch_only_sizing(self):
        assert chunk_rows_for(20, 8) == chunk_rows_for(20, 8, dim=None)

    def test_assign_chunked_d500_matches_reference(self):
        """End-to-end at d=500: the dim-aware tiling still assigns correctly."""
        rng = np.random.default_rng(11)
        pts = rng.normal(size=(400, 500))
        ctr = rng.normal(size=(7, 500))
        pts_sq = np.einsum("ij,ij->i", pts, pts)
        labels, sq = assign_chunked(pts, ctr, pts_sq, workspace=Workspace())
        ref_labels, ref_sq = _reference_assign(pts, ctr)
        np.testing.assert_array_equal(labels, ref_labels)
        np.testing.assert_allclose(sq, ref_sq, rtol=1e-10, atol=1e-10)
