"""Bincount scatters: bit-parity with the ``np.add.at`` loops they replaced.

This is the micro-regression suite for the scatter swap: every replaced
``np.add.at`` site (Lloyd's center update, sensitivity cluster weights,
k-means++-coreset representative weights) must produce bit-identical float64
accumulations, because both primitives add contributions in label-array order.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.scatter import weighted_bincount, weighted_label_sums
from repro.kernels.workspace import Workspace


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=400),
    k=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_weighted_bincount_matches_add_at_bitwise(n, k, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, k, size=n)
    weights = rng.uniform(0.0, 3.0, size=n)
    expected = np.zeros(k, dtype=np.float64)
    np.add.at(expected, labels, weights)
    np.testing.assert_array_equal(weighted_bincount(labels, weights, k), expected)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=200),
    k=st.integers(min_value=1, max_value=10),
    d=st.integers(min_value=1, max_value=8),
    dtype=st.sampled_from([np.float64, np.float32]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_weighted_label_sums_matches_add_at(n, k, d, dtype, seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, d)).astype(dtype)
    labels = rng.integers(0, k, size=n)
    weights = rng.uniform(0.1, 2.0, size=n)
    sums, cluster_weight = weighted_label_sums(
        points, labels, weights, k, workspace=Workspace()
    )
    expected_sums = np.zeros((k, d), dtype=np.float64)
    np.add.at(expected_sums, labels, points * weights[:, None])
    expected_weight = np.zeros(k, dtype=np.float64)
    np.add.at(expected_weight, labels, weights)
    np.testing.assert_array_equal(sums, expected_sums)
    np.testing.assert_array_equal(cluster_weight, expected_weight)
    assert sums.dtype == np.float64 and cluster_weight.dtype == np.float64


def test_empty_input_yields_zeros():
    sums, cw = weighted_label_sums(
        np.empty((0, 3)), np.empty(0, dtype=np.intp), np.empty(0), 4
    )
    assert sums.shape == (4, 3) and not np.any(sums)
    assert cw.shape == (4,) and not np.any(cw)


def test_unoccupied_clusters_stay_zero():
    points = np.ones((3, 2))
    labels = np.array([0, 0, 2])
    weights = np.array([1.0, 2.0, 4.0])
    sums, cw = weighted_label_sums(points, labels, weights, 5)
    np.testing.assert_array_equal(cw, [3.0, 0.0, 4.0, 0.0, 0.0])
    np.testing.assert_array_equal(sums[1], [0.0, 0.0])
