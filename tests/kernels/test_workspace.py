"""Workspace pool: reuse semantics, no cross-call state leaks, zero-alloc merges."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coreset.bucket import WeightedPointSet
from repro.coreset.construction import (
    CoresetConfig,
    CoresetConstructor,
    sensitivity_coreset,
    span_keyed_rng,
)
from repro.kernels.workspace import Workspace
from repro.kmeans.batch import weighted_kmeans
from repro.kmeans.lloyd import lloyd_iterations


class TestWorkspaceBuffer:
    def test_same_name_same_shape_reuses_memory(self):
        ws = Workspace()
        a = ws.buffer("x", 100)
        a[:] = 7.0
        b = ws.buffer("x", 100)
        assert a is b

    def test_growth_reallocates_shrink_reuses(self):
        ws = Workspace()
        small = ws.buffer("x", 10)
        big = ws.buffer("x", 1000)
        assert big.shape == (1000,)
        again_small = ws.buffer("x", 10)
        assert again_small.shape == (10,)
        # After growing, the small view shares the big backing array.
        assert again_small.base is big.base or again_small.base is big
        del small

    def test_distinct_names_never_alias(self):
        ws = Workspace()
        a = ws.buffer("a", 50)
        b = ws.buffer("b", 50)
        a.fill(1.0)
        b.fill(2.0)
        assert float(a[0]) == 1.0 and float(b[0]) == 2.0

    def test_2d_shapes_and_dtypes(self):
        ws = Workspace()
        m = ws.buffer("m", (4, 8), np.float32)
        assert m.shape == (4, 8) and m.dtype == np.float32
        i = ws.buffer("i", 16, np.intp)
        assert i.dtype == np.intp

    def test_dtype_switch_reallocates(self):
        ws = Workspace()
        a64 = ws.buffer("x", 32, np.float64)
        a32 = ws.buffer("x", 32, np.float32)
        assert a64.dtype == np.float64 and a32.dtype == np.float32

    def test_zeros_cleared(self):
        ws = Workspace()
        ws.buffer("z", 8).fill(5.0)
        assert not np.any(ws.zeros("z", 8))

    def test_clear_drops_pools(self):
        ws = Workspace()
        ws.buffer("x", 128)
        assert ws.pooled_buffers == 1 and ws.pooled_bytes >= 128 * 8
        ws.clear()
        assert ws.pooled_buffers == 0 and ws.pooled_bytes == 0


def _random_weighted_set(rng: np.random.Generator, n: int, d: int, dtype) -> WeightedPointSet:
    points = rng.normal(size=(n, d)).astype(dtype)
    weights = rng.uniform(0.5, 2.0, size=n)
    return WeightedPointSet(points=points, weights=weights)


class TestPooledMatchesFresh:
    """Pooled scratch must be observationally identical to fresh allocation."""

    @settings(max_examples=20, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(
                st.integers(min_value=41, max_value=160),  # n (> m, so sampling runs)
                st.integers(min_value=1, max_value=7),  # d
                st.sampled_from([np.float64, np.float32]),
                st.integers(min_value=0, max_value=2**31 - 1),  # per-step seed
            ),
            min_size=2,
            max_size=6,
        )
    )
    def test_interleaved_merges_and_queries_share_one_pool(self, steps):
        """Interleave differently-shaped merges and query solves through ONE
        shared workspace; every output must equal the fresh-allocation run."""
        shared = Workspace()
        k, m = 3, 40
        for n, d, dtype, seed in steps:
            rng = np.random.default_rng(seed)
            data = _random_weighted_set(rng, n, d, dtype)
            pooled = sensitivity_coreset(
                data, k, m, np.random.default_rng(seed), workspace=shared
            )
            fresh = sensitivity_coreset(
                data, k, m, np.random.default_rng(seed), workspace=None
            )
            np.testing.assert_array_equal(pooled.points, fresh.points)
            np.testing.assert_array_equal(pooled.weights, fresh.weights)

            # Query-style solve through the same shared pool.
            solve_pooled = weighted_kmeans(
                data.points,
                k,
                weights=data.weights,
                n_init=1,
                max_iterations=3,
                rng=np.random.default_rng(seed + 1),
                workspace=shared,
            )
            solve_fresh = weighted_kmeans(
                data.points,
                k,
                weights=data.weights,
                n_init=1,
                max_iterations=3,
                rng=np.random.default_rng(seed + 1),
            )
            np.testing.assert_array_equal(solve_pooled.centers, solve_fresh.centers)
            assert solve_pooled.cost == solve_fresh.cost

    def test_constructor_merges_match_standalone(self):
        """A constructor's pooled span-keyed merges equal direct fresh calls."""
        config = CoresetConfig(k=4, coreset_size=50)
        constructor = CoresetConstructor(config, seed=123)
        rng = np.random.default_rng(0)
        for level, (start, end) in enumerate([(1, 2), (3, 4), (1, 4)], start=1):
            data = _random_weighted_set(rng, 130 + 7 * level, 5, np.float64)
            pooled = constructor.build_for_span(data, level=level, start=start, end=end)
            fresh = sensitivity_coreset(
                data, 4, 50, span_keyed_rng(123, level, start, end), workspace=None
            )
            np.testing.assert_array_equal(pooled.points, fresh.points)
            np.testing.assert_array_equal(pooled.weights, fresh.weights)

    def test_lloyd_with_shared_pool_matches_fresh(self):
        rng = np.random.default_rng(7)
        data = _random_weighted_set(rng, 90, 6, np.float64)
        seeds = data.points[:5].copy()
        shared = Workspace()
        a = lloyd_iterations(data.points, seeds, weights=data.weights, workspace=shared)
        # Dirty the pool with a different-shaped problem, then re-run.
        other = _random_weighted_set(rng, 33, 2, np.float32)
        lloyd_iterations(other.points, other.points[:3].copy(), weights=other.weights, workspace=shared)
        b = lloyd_iterations(data.points, seeds, weights=data.weights, workspace=shared)
        c = lloyd_iterations(data.points, seeds, weights=data.weights)
        np.testing.assert_array_equal(a.centers, b.centers)
        np.testing.assert_array_equal(a.centers, c.centers)
        assert a.cost == b.cost == c.cost


class TestSteadyStateAllocations:
    """After warmup, a merge of fixed shape performs no new pool allocations
    and its transient (peak) footprint collapses to near the output size."""

    @staticmethod
    def _merge_inputs(seed: int, n: int = 400, d: int = 20):
        rng = np.random.default_rng(seed)
        return _random_weighted_set(rng, n, d, np.float64)

    def test_no_new_workspace_allocations_after_warmup(self):
        constructor = CoresetConstructor(CoresetConfig(k=5, coreset_size=100), seed=0)
        for i in range(3):  # warm every pool at the steady-state shape
            constructor.build_for_span(self._merge_inputs(i), level=1, start=i + 1, end=i + 1)

        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for i in range(10):
                constructor.build_for_span(
                    self._merge_inputs(100 + i), level=1, start=50 + i, end=50 + i
                )
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()

        workspace_file = tracemalloc.Filter(True, "*kernels/workspace.py")
        grown = sum(
            stat.size_diff
            for stat in after.filter_traces([workspace_file]).compare_to(
                before.filter_traces([workspace_file]), "filename"
            )
        )
        assert grown <= 0, f"workspace pool grew by {grown} bytes across steady-state merges"

    def test_peak_scratch_collapses_vs_fresh_allocation(self):
        constructor = CoresetConstructor(CoresetConfig(k=5, coreset_size=100), seed=0)
        data = self._merge_inputs(1)
        constructor.build_for_span(data, level=1, start=1, end=1)  # warm

        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            constructor.build_for_span(data, level=1, start=2, end=2)
            current, pooled_peak = tracemalloc.get_traced_memory()
            pooled_delta = pooled_peak - current

            tracemalloc.reset_peak()
            sensitivity_coreset(data, 5, 100, span_keyed_rng(0, 1, 3, 3), workspace=None)
            current, fresh_peak = tracemalloc.get_traced_memory()
            fresh_delta = fresh_peak - current
        finally:
            tracemalloc.stop()

        # Fresh mode allocates every scratch vector per call; pooled mode only
        # touches outputs.  Require a decisive (not borderline) separation.
        assert pooled_delta < fresh_delta / 2, (
            f"pooled transient {pooled_delta}B vs fresh {fresh_delta}B"
        )


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_workspace_outputs_are_copies_not_views(dtype):
    """Coreset outputs must never alias the pool (they live on in the tree)."""
    constructor = CoresetConstructor(CoresetConfig(k=3, coreset_size=20), seed=5)
    rng = np.random.default_rng(2)
    data = _random_weighted_set(rng, 64, 4, dtype)
    out = constructor.build_for_span(data, level=1, start=1, end=2)
    pooled_backings = {id(entry[0]) for entry in constructor.workspace._pools.values()}
    for arr in (out.points, out.weights):
        base = arr.base if arr.base is not None else arr
        assert id(base) not in pooled_backings
