"""The end-to-end float32 compute path: opt-in, honest, and checkpoint-safe."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import StreamingConfig
from repro.core.buffer import BucketBuffer
from repro.core.driver import CachedCoresetTreeClusterer, CoresetTreeClusterer
from repro.coreset.bucket import WeightedPointSet
from repro.data.stream import PointStream
from repro.data.synthetic import GaussianMixtureSpec, generate_mixture
from repro.kernels.dtypes import DEFAULT_DTYPE, resolve_dtype
from repro.kmeans.cost import kmeans_cost


class TestResolveDtype:
    def test_default_is_float64(self):
        assert resolve_dtype(None) == DEFAULT_DTYPE == np.float64

    @pytest.mark.parametrize("spec", ["float32", np.float32, "<f4"])
    def test_float32_spellings(self, spec):
        assert resolve_dtype(spec) == np.float32

    @pytest.mark.parametrize("bad", ["float16", np.int32, "int64", "complex128"])
    def test_unsupported_dtypes_rejected(self, bad):
        with pytest.raises(ValueError, match="unsupported point dtype"):
            resolve_dtype(bad)

    def test_config_normalises_and_rejects(self):
        assert StreamingConfig(k=2, dtype=np.float32).dtype == "float32"
        with pytest.raises(ValueError):
            StreamingConfig(k=2, dtype="int8")


class TestStorageDtypePropagation:
    def test_weighted_point_set_keeps_float32_points_float64_weights(self):
        wps = WeightedPointSet.from_points(np.ones((3, 2), dtype=np.float32))
        assert wps.points.dtype == np.float32
        assert wps.weights.dtype == np.float64
        assert wps.union(wps).points.dtype == np.float32

    def test_weighted_point_set_coerces_other_dtypes(self):
        wps = WeightedPointSet.from_points(np.ones((3, 2), dtype=np.int64))
        assert wps.points.dtype == np.float64

    def test_bucket_buffer_dtype(self):
        buf = BucketBuffer(4, dtype=np.float32)
        buf.fill(np.ones((4, 3)))
        block = buf.drain()
        assert block.dtype == np.float32
        assert buf.snapshot().dtype == np.float32

    def test_point_stream_dtype(self):
        stream = PointStream(np.ones((10, 2)), dtype="float32")
        assert stream.dtype == np.float32
        assert stream.take(4).dtype == np.float32

    def test_driver_stores_float32_buckets(self):
        config = StreamingConfig(k=2, coreset_size=8, dtype="float32", seed=0)
        clusterer = CoresetTreeClusterer(config)
        clusterer.insert_batch(np.random.default_rng(0).normal(size=(40, 3)))
        for level in clusterer.tree.levels:
            for bucket in level:
                assert bucket.data.points.dtype == np.float32
                assert bucket.data.weights.dtype == np.float64

    def test_float64_default_unchanged(self):
        clusterer = CoresetTreeClusterer(StreamingConfig(k=2, coreset_size=8, seed=0))
        clusterer.insert_batch(np.random.default_rng(0).normal(size=(40, 3)))
        for level in clusterer.tree.levels:
            for bucket in level:
                assert bucket.data.points.dtype == np.float64


class TestFloat32TracksFloat64:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_query_cost_within_tolerance(self, seed):
        """Same stream, same seeds: the float32 clusterer's final query cost
        must track the float64 one within a small relative tolerance."""
        points, _ = generate_mixture(
            GaussianMixtureSpec(num_clusters=4, dimension=6),
            num_points=600,
            rng=np.random.default_rng(seed),
        )
        costs = {}
        for dtype in ("float64", "float32"):
            config = StreamingConfig(
                k=4, coreset_size=40, seed=seed % 10_000, dtype=dtype, warm_start=False
            )
            clusterer = CachedCoresetTreeClusterer(config)
            clusterer.insert_batch(points.astype(config.np_dtype))
            centers = clusterer.query().centers
            costs[dtype] = kmeans_cost(points, centers)
        assert costs["float32"] <= costs["float64"] * 1.10 + 1e-9
        assert costs["float64"] <= costs["float32"] * 1.10 + 1e-9

    def test_costs_accumulate_in_float64(self):
        points = np.full((64, 2), 1e4, dtype=np.float32)
        cost = kmeans_cost(points, np.zeros((1, 2), dtype=np.float32))
        assert isinstance(cost, float)
        # 64 * 2 * 1e8 with float64 accumulation, exact to relative 1e-6.
        assert cost == pytest.approx(64 * 2 * 1e8, rel=1e-6)


class TestFloat32BatchPointEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_batch_equals_point_at_float32(self, n, seed):
        points = np.random.default_rng(seed).normal(size=(n, 3)).astype(np.float32)
        config = StreamingConfig(k=2, coreset_size=10, seed=seed, dtype="float32")
        by_batch = CachedCoresetTreeClusterer(config)
        by_batch.insert_batch(points)
        by_point = CachedCoresetTreeClusterer(config)
        for row in points:
            by_point.insert(row)
        assert by_batch.points_seen == by_point.points_seen
        batch_coreset = by_batch.structure.query_coreset()
        point_coreset = by_point.structure.query_coreset()
        np.testing.assert_array_equal(batch_coreset.points, point_coreset.points)
        np.testing.assert_array_equal(batch_coreset.weights, point_coreset.weights)


class TestFloat32Checkpoints:
    def test_snapshot_roundtrip_bit_identical(self, tmp_path):
        points = np.random.default_rng(3).normal(size=(500, 4)).astype(np.float32)
        config = StreamingConfig(k=3, coreset_size=25, seed=9, dtype="float32")
        live = CachedCoresetTreeClusterer(config)
        live.insert_batch(points[:300])
        live.snapshot(tmp_path / "ckpt")
        restored = CachedCoresetTreeClusterer.restore(tmp_path / "ckpt")
        live.insert_batch(points[300:])
        restored.insert_batch(points[300:])
        a, b = live.query(), restored.query()
        np.testing.assert_array_equal(a.centers, b.centers)
        # Stored buckets stay float32 through the npz roundtrip.
        for level in restored.cached_tree.tree.levels:
            for bucket in level:
                assert bucket.data.points.dtype == np.float32

    def test_dtype_is_fingerprinted(self, tmp_path):
        from repro.checkpoint import CheckpointError, fingerprint_for, load_checkpoint

        config32 = StreamingConfig(k=3, coreset_size=25, seed=9, dtype="float32")
        live = CachedCoresetTreeClusterer(config32)
        live.insert_batch(np.ones((30, 2), dtype=np.float32))
        live.snapshot(tmp_path / "ckpt")
        probe64 = CachedCoresetTreeClusterer(
            StreamingConfig(k=3, coreset_size=25, seed=9)
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            load_checkpoint(tmp_path / "ckpt", expected_fingerprint=fingerprint_for(probe64))
