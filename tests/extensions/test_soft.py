"""Unit tests for the streaming soft (fuzzy c-means) clusterer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import collect_serving_stats
from repro.core.base import StreamingConfig
from repro.extensions.soft import SoftClusteringClusterer


@pytest.fixture()
def config() -> StreamingConfig:
    return StreamingConfig(k=3, coreset_size=50, n_init=2, lloyd_iterations=5, seed=0)


def _stream(n: int = 600, d: int = 4, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=10.0, size=(3, d))
    labels = rng.integers(0, 3, size=n)
    return centers[labels] + rng.normal(size=(n, d))


class TestConstruction:
    @pytest.mark.parametrize("fuzziness", [1.0, 0.5, -2.0])
    def test_invalid_fuzziness(self, config, fuzziness):
        with pytest.raises(ValueError, match="fuzziness must exceed 1.0"):
            SoftClusteringClusterer(config, fuzziness=fuzziness)

    def test_fuzziness_stored_as_float(self, config):
        assert SoftClusteringClusterer(config, fuzziness=2).fuzziness == 2.0

    def test_sharded_construction_refused(self, config):
        with pytest.raises(ValueError, match="does not support sharded ingestion"):
            SoftClusteringClusterer.sharded(config, num_shards=2)


class TestMembershipApi:
    def test_membership_before_query_raises(self, config):
        clusterer = SoftClusteringClusterer(config)
        clusterer.insert_batch(_stream(200))
        with pytest.raises(RuntimeError, match="call query"):
            clusterer.membership(np.zeros((2, 4)))

    def test_last_soft_none_before_query(self, config):
        assert SoftClusteringClusterer(config).last_soft is None

    def test_query_populates_last_soft(self, config):
        clusterer = SoftClusteringClusterer(config)
        clusterer.insert_batch(_stream())
        result = clusterer.query()
        soft = clusterer.last_soft
        assert soft is not None
        assert soft.centers.shape == (3, 4)
        np.testing.assert_array_equal(result.centers, soft.centers)
        # Coreset-row memberships each sum to one.
        np.testing.assert_allclose(soft.memberships.sum(axis=1), 1.0, atol=1e-9)

    def test_membership_rows_sum_to_one(self, config):
        clusterer = SoftClusteringClusterer(config)
        clusterer.insert_batch(_stream())
        clusterer.query()
        probes = np.random.default_rng(1).normal(scale=12.0, size=(64, 4))
        u = clusterer.membership(probes)
        assert u.shape == (64, 3)
        assert np.all((u >= 0.0) & (u <= 1.0))
        np.testing.assert_allclose(u.sum(axis=1), 1.0, atol=1e-9)

    def test_fuzzier_exponent_blurs_partition(self, config):
        points = _stream()
        probes = points[:128]
        peaks = {}
        for fuzziness in (1.2, 3.0):
            clusterer = SoftClusteringClusterer(config, fuzziness=fuzziness)
            clusterer.insert_batch(points)
            clusterer.query()
            peaks[fuzziness] = float(clusterer.membership(probes).max(axis=1).mean())
        assert peaks[1.2] > peaks[3.0]


class TestServingIntegration:
    def test_refinement_is_deterministic(self, config):
        points = _stream()
        first = SoftClusteringClusterer(config)
        first.insert_batch(points)
        second = SoftClusteringClusterer(config)
        second.insert_batch(points)
        np.testing.assert_array_equal(first.query().centers, second.query().centers)
        np.testing.assert_array_equal(
            first.last_soft.memberships, second.last_soft.memberships
        )

    def test_warm_cold_accounting_matches_cc(self, config):
        clusterer = SoftClusteringClusterer(config)
        clusterer.insert_batch(_stream())
        for _ in range(4):
            clusterer.query()
        stats = collect_serving_stats(clusterer)
        assert stats.warm_queries + stats.cold_queries == 4
        assert stats.cold_queries >= 1

    def test_query_multi_k_refines_every_k(self, config):
        clusterer = SoftClusteringClusterer(config)
        clusterer.insert_batch(_stream())
        sweep = clusterer.query_multi_k((2, 3, 4))
        assert set(sweep) == {2, 3, 4}
        for k, result in sweep.items():
            assert result.centers.shape == (k, 4)
        # last_soft reflects the final k served in the sweep.
        assert clusterer.last_soft is not None

    def test_last_soft_cost_consistent_with_coreset(self, config):
        from repro.kmeans.soft import soft_cost

        clusterer = SoftClusteringClusterer(config)
        clusterer.insert_batch(_stream())
        result = clusterer.query()
        coreset = clusterer.structure.query_coreset()
        soft = clusterer.last_soft
        assert soft.memberships.shape == (coreset.points.shape[0], 3)
        expected = soft_cost(
            coreset.points,
            result.centers,
            soft.memberships,
            fuzziness=clusterer.fuzziness,
            weights=coreset.weights,
        )
        assert soft.cost == pytest.approx(expected)
