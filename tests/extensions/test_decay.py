"""Unit tests for time-decayed and sliding-window clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import StreamingConfig
from repro.extensions.decay import DecayedCoresetClusterer, SlidingWindowClusterer
from repro.kmeans.cost import kmeans_cost


@pytest.fixture()
def config() -> StreamingConfig:
    return StreamingConfig(k=3, coreset_size=50, n_init=2, lloyd_iterations=5, seed=0)


def _two_phase_stream(seed: int = 0, phase_points: int = 1500, dimension: int = 3):
    """A stream whose clusters jump to a new location halfway through."""
    rng = np.random.default_rng(seed)
    old = rng.normal(loc=0.0, scale=1.0, size=(phase_points, dimension))
    new = rng.normal(loc=50.0, scale=1.0, size=(phase_points, dimension))
    return old, new


class TestDecayedCoresetClusterer:
    def test_invalid_parameters(self, config):
        with pytest.raises(ValueError):
            DecayedCoresetClusterer(config, decay=0.0)
        with pytest.raises(ValueError):
            DecayedCoresetClusterer(config, decay=1.5)
        with pytest.raises(ValueError):
            DecayedCoresetClusterer(config, min_weight=0.0)

    def test_query_before_points_raises(self, config):
        with pytest.raises(RuntimeError):
            DecayedCoresetClusterer(config).query()

    def test_query_shape(self, config, blob_points):
        clusterer = DecayedCoresetClusterer(config, decay=0.9)
        clusterer.insert_many(blob_points[:600])
        assert clusterer.query().centers.shape == (3, 4)

    def test_old_data_forgotten_after_shift(self, config):
        """With aggressive decay, centers follow the new regime after a shift."""
        old, new = _two_phase_stream()
        clusterer = DecayedCoresetClusterer(config, decay=0.5)
        clusterer.insert_many(old)
        clusterer.insert_many(new)
        centers = clusterer.query().centers
        # All centers should sit near the new location (50), not the old (0).
        assert np.all(np.linalg.norm(centers - 50.0, axis=1) < np.linalg.norm(centers, axis=1))

    def test_no_decay_keeps_both_phases(self, config):
        old, new = _two_phase_stream(phase_points=800)
        clusterer = DecayedCoresetClusterer(config, decay=1.0)
        clusterer.insert_many(old)
        clusterer.insert_many(new)
        centers = clusterer.query().centers
        near_old = np.any(np.linalg.norm(centers, axis=1) < 10.0)
        near_new = np.any(np.linalg.norm(centers - 50.0, axis=1) < 10.0)
        assert near_old and near_new

    def test_negligible_summaries_dropped(self, config):
        clusterer = DecayedCoresetClusterer(config, decay=0.5, min_weight=1e-2)
        rng = np.random.default_rng(0)
        clusterer.insert_many(rng.normal(size=(2000, 3)))
        # With decay 0.5 and threshold 1e-2, only ~log2(100) + 1 ~ 8 summaries survive.
        assert clusterer.num_summaries <= 9

    def test_stored_points_bounded(self, config):
        clusterer = DecayedCoresetClusterer(config, decay=0.7)
        rng = np.random.default_rng(1)
        clusterer.insert_many(rng.normal(size=(3000, 3)))
        assert clusterer.stored_points() < 3000

    def test_dimension_mismatch(self, config):
        clusterer = DecayedCoresetClusterer(config)
        clusterer.insert(np.zeros(2))
        with pytest.raises(ValueError):
            clusterer.insert(np.zeros(3))

    def test_points_seen(self, config, blob_points):
        clusterer = DecayedCoresetClusterer(config)
        clusterer.insert_many(blob_points[:77])
        assert clusterer.points_seen == 77


class TestSlidingWindowClusterer:
    def test_invalid_window(self, config):
        with pytest.raises(ValueError):
            SlidingWindowClusterer(config, window_buckets=0)

    def test_query_before_points_raises(self, config):
        with pytest.raises(RuntimeError):
            SlidingWindowClusterer(config).query()

    def test_window_caps_memory(self, config):
        clusterer = SlidingWindowClusterer(config, window_buckets=4)
        rng = np.random.default_rng(0)
        clusterer.insert_many(rng.normal(size=(5000, 3)))
        assert clusterer.stored_points() <= 4 * config.bucket_size + config.bucket_size
        assert clusterer.window_points <= 5 * config.bucket_size

    def test_only_recent_data_clustered(self, config):
        old, new = _two_phase_stream(phase_points=1000)
        clusterer = SlidingWindowClusterer(config, window_buckets=3)
        clusterer.insert_many(old)
        clusterer.insert_many(new)
        centers = clusterer.query().centers
        # The window (3 buckets of 50 points) contains only new-regime data.
        assert np.all(np.linalg.norm(centers - 50.0, axis=1) < 10.0)

    def test_accuracy_within_window(self, config, blob_points, blob_centers):
        clusterer = SlidingWindowClusterer(
            StreamingConfig(k=4, coreset_size=50, n_init=2, lloyd_iterations=5, seed=0),
            window_buckets=50,
        )
        clusterer.insert_many(blob_points)
        cost = kmeans_cost(blob_points, clusterer.query().centers)
        reference = kmeans_cost(blob_points, blob_centers)
        assert cost <= 3.0 * reference

    def test_partial_bucket_included(self, config):
        clusterer = SlidingWindowClusterer(config, window_buckets=2)
        rng = np.random.default_rng(3)
        clusterer.insert_many(rng.normal(size=(20, 3)))
        result = clusterer.query()
        assert result.centers.shape == (3, 3)

    def test_points_seen(self, config, blob_points):
        clusterer = SlidingWindowClusterer(config)
        clusterer.insert_many(blob_points[:91])
        assert clusterer.points_seen == 91


class TestServingPipelineIntegration:
    """Regression: window/decay must serve through the shared query pipeline.

    Historically both clusterers called ``weighted_kmeans`` directly and
    bypassed the QueryEngine entirely, so ``collect_serving_stats`` silently
    reported all-zero warm/cold counters.  As StreamClusterDriver subclasses
    they now inherit the real serving path.
    """

    @pytest.mark.parametrize("cls", (DecayedCoresetClusterer, SlidingWindowClusterer))
    def test_serving_counters_are_populated(self, config, cls):
        from repro.bench.harness import collect_serving_stats

        clusterer = cls(config)
        rng = np.random.default_rng(5)
        clusterer.insert_many(rng.normal(size=(600, 3)))
        for _ in range(4):
            clusterer.query()
        stats = collect_serving_stats(clusterer)
        assert stats.warm_queries + stats.cold_queries == 4
        assert stats.cold_queries >= 1  # the first query is always cold
        assert clusterer.last_query_stats is not None
        assert clusterer.last_query_stats.solve_seconds >= 0.0

    @pytest.mark.parametrize("cls", (DecayedCoresetClusterer, SlidingWindowClusterer))
    def test_query_multi_k_served_from_one_assembly(self, config, cls):
        clusterer = cls(config)
        clusterer.insert_many(np.random.default_rng(6).normal(size=(400, 3)))
        sweep = clusterer.query_multi_k((2, 3, 4))
        assert set(sweep) == {2, 3, 4}
        for k, result in sweep.items():
            assert result.centers.shape == (k, 3)

    @pytest.mark.parametrize("cls", (DecayedCoresetClusterer, SlidingWindowClusterer))
    def test_sharded_construction_refused(self, config, cls):
        with pytest.raises(ValueError, match="does not support sharded ingestion"):
            cls.sharded(config, num_shards=2)


class TestStorageDtypePolicy:
    """Regression: both clusterers must honour ``config.dtype`` end to end.

    Before the fix, ``insert`` coerced every row to float64 regardless of the
    configured storage dtype and ``insert_batch`` dropped ``config.dtype`` on
    the floor, so a ``dtype="float32"`` configuration silently buffered,
    summarised, and clustered in double precision.
    """

    CLUSTERERS = (DecayedCoresetClusterer, SlidingWindowClusterer)

    @staticmethod
    def _f32_config() -> StreamingConfig:
        return StreamingConfig(
            k=2, coreset_size=20, n_init=1, lloyd_iterations=2, seed=0, dtype="float32"
        )

    @staticmethod
    def _summaries(clusterer) -> list:
        if isinstance(clusterer, DecayedCoresetClusterer):
            return [summary for summary, _ in clusterer.decayed_structure.summaries()]
        return list(clusterer.window_structure.summaries())

    @pytest.mark.parametrize("cls", CLUSTERERS)
    def test_insert_keeps_float32_storage(self, cls):
        clusterer = cls(self._f32_config())
        rng = np.random.default_rng(0)
        for row in rng.normal(size=(50, 3)):  # 2 full buckets + a 10-point tail
            clusterer.insert(row)
        assert clusterer._buffer.snapshot().dtype == np.float32
        summaries = self._summaries(clusterer)
        assert summaries and all(s.points.dtype == np.float32 for s in summaries)

    @pytest.mark.parametrize("cls", CLUSTERERS)
    def test_insert_batch_keeps_float32_storage(self, cls):
        clusterer = cls(self._f32_config())
        clusterer.insert_batch(np.random.default_rng(1).normal(size=(50, 3)))
        assert clusterer._buffer.snapshot().dtype == np.float32
        summaries = self._summaries(clusterer)
        assert summaries and all(s.points.dtype == np.float32 for s in summaries)

    @pytest.mark.parametrize("cls", CLUSTERERS)
    def test_point_and_batch_paths_bit_identical(self, cls):
        """Same stream via insert() and insert_batch() yields identical centers."""
        points = np.random.default_rng(2).normal(size=(90, 3))
        one = cls(self._f32_config())
        for row in points:
            one.insert(row)
        batched = cls(self._f32_config())
        batched.insert_batch(points)
        np.testing.assert_array_equal(one.query().centers, batched.query().centers)

    @pytest.mark.parametrize("cls", CLUSTERERS)
    def test_dimension_mismatch_uses_shared_message(self, cls):
        clusterer = cls(self._f32_config())
        clusterer.insert(np.zeros(3))
        with pytest.raises(ValueError, match="point dimension is 4, expected 3"):
            clusterer.insert(np.zeros(4))
