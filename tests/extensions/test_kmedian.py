"""Unit tests for the streaming k-median extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coreset.bucket import WeightedPointSet
from repro.extensions.kmedian import (
    KMedianCachedClusterer,
    KMedianConfig,
    kmedian_cost,
    kmedian_seeding,
    kmedian_sensitivity_coreset,
    weighted_kmedian,
)


class TestKMedianCost:
    def test_simple_values(self):
        points = np.array([[0.0], [3.0]])
        centers = np.array([[0.0]])
        assert kmedian_cost(points, centers) == pytest.approx(3.0)

    def test_weighted(self):
        points = np.array([[0.0], [4.0]])
        centers = np.array([[0.0]])
        assert kmedian_cost(points, centers, weights=np.array([1.0, 2.0])) == pytest.approx(8.0)

    def test_zero_for_exact_centers(self, blob_points):
        # sqrt of the tiny floating-point cancellation residue per point means
        # "zero" accumulates to ~1e-4 over a couple of thousand points.
        assert kmedian_cost(blob_points, blob_points) == pytest.approx(0.0, abs=1e-2)

    def test_empty_points(self):
        assert kmedian_cost(np.empty((0, 2)), np.zeros((1, 2))) == 0.0

    def test_wrong_weight_shape(self):
        with pytest.raises(ValueError):
            kmedian_cost(np.zeros((3, 2)), np.zeros((1, 2)), weights=np.ones(2))

    def test_less_outlier_sensitive_than_kmeans(self):
        """The defining property of k-median: linear (not quadratic) outlier impact."""
        from repro.kmeans.cost import kmeans_cost

        points = np.vstack([np.zeros((99, 1)), [[100.0]]])
        centers = np.array([[0.0]])
        assert kmedian_cost(points, centers) == pytest.approx(100.0)
        assert kmeans_cost(points, centers) == pytest.approx(10_000.0)


class TestKMedianSeeding:
    def test_returns_k_points_from_input(self, blob_points):
        centers = kmedian_seeding(blob_points, 4, rng=np.random.default_rng(0))
        assert centers.shape == (4, blob_points.shape[1])
        for center in centers:
            assert np.min(np.linalg.norm(blob_points - center, axis=1)) == pytest.approx(0.0)

    def test_k_geq_n(self):
        points = np.zeros((3, 2))
        assert kmedian_seeding(points, 5, rng=np.random.default_rng(0)).shape == (3, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kmedian_seeding(np.empty((0, 2)), 2)
        with pytest.raises(ValueError):
            kmedian_seeding(np.zeros((5, 2)), 0)
        with pytest.raises(ValueError):
            kmedian_seeding(np.zeros(5), 2)


class TestWeightedKMedian:
    def test_recovers_blobs(self, blob_points, blob_centers):
        result = weighted_kmedian(blob_points, 4, rng=np.random.default_rng(0))
        assert result.centers.shape == (4, 4)
        reference = kmedian_cost(blob_points, blob_centers)
        assert result.cost <= 1.5 * reference

    def test_cost_consistent_with_centers(self, blob_points):
        result = weighted_kmedian(blob_points, 4, rng=np.random.default_rng(1))
        assert result.cost == pytest.approx(kmedian_cost(blob_points, result.centers))

    def test_median_robust_to_outlier(self):
        # One far outlier: the k-median center of the cluster stays near the
        # bulk (a k-means centroid would be dragged noticeably).
        points = np.vstack([np.random.default_rng(0).normal(size=(50, 1)), [[1000.0]]])
        result = weighted_kmedian(points, 1, rng=np.random.default_rng(0), n_init=1)
        assert abs(result.centers[0, 0]) < 5.0

    def test_fewer_points_than_k(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = weighted_kmedian(points, 4, rng=np.random.default_rng(0))
        assert result.centers.shape == (4, 2)

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            weighted_kmedian(np.empty((0, 2)), 2)


class TestKMedianCoreset:
    def test_size_and_finiteness(self, blob_points):
        data = WeightedPointSet.from_points(blob_points)
        coreset = kmedian_sensitivity_coreset(data, k=4, m=100, rng=np.random.default_rng(0))
        assert coreset.size == 100
        assert np.all(np.isfinite(coreset.weights))

    def test_passthrough_small(self):
        data = WeightedPointSet.from_points(np.zeros((5, 2)))
        assert kmedian_sensitivity_coreset(data, 2, 10, np.random.default_rng(0)) is data

    def test_cost_roughly_preserved(self, blob_points, blob_centers):
        data = WeightedPointSet.from_points(blob_points)
        coreset = kmedian_sensitivity_coreset(data, k=4, m=400, rng=np.random.default_rng(1))
        full = kmedian_cost(blob_points, blob_centers)
        approx = kmedian_cost(coreset.points, blob_centers, coreset.weights)
        assert approx == pytest.approx(full, rel=0.35)


class TestKMedianConfig:
    def test_default_bucket_size(self):
        assert KMedianConfig(k=10).bucket_size == 200

    @pytest.mark.parametrize(
        "kwargs", [{"k": 0}, {"k": 3, "merge_degree": 1}, {"k": 3, "coreset_size": 0}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            KMedianConfig(**kwargs)


class TestKMedianCachedClusterer:
    def test_query_before_points_raises(self):
        clusterer = KMedianCachedClusterer(KMedianConfig(k=3, coreset_size=50, seed=0))
        with pytest.raises(RuntimeError):
            clusterer.query()

    def test_end_to_end_on_blobs(self, blob_points, blob_centers):
        clusterer = KMedianCachedClusterer(KMedianConfig(k=4, coreset_size=60, seed=0))
        clusterer.insert_many(blob_points)
        result = clusterer.query()
        assert result.centers.shape == (4, 4)
        cost = kmedian_cost(blob_points, result.centers)
        reference = kmedian_cost(blob_points, blob_centers)
        assert cost <= 2.0 * reference

    def test_cache_populated_by_queries(self, blob_points):
        clusterer = KMedianCachedClusterer(KMedianConfig(k=4, coreset_size=60, seed=0))
        for start in range(0, 1200, 120):
            clusterer.insert_many(blob_points[start : start + 120])
            clusterer.query()
        assert len(clusterer.cache) >= 1

    def test_dimension_mismatch(self):
        clusterer = KMedianCachedClusterer(KMedianConfig(k=2, coreset_size=20, seed=0))
        clusterer.insert(np.zeros(3))
        with pytest.raises(ValueError):
            clusterer.insert(np.zeros(4))

    def test_memory_stays_bounded(self, blob_points):
        clusterer = KMedianCachedClusterer(KMedianConfig(k=4, coreset_size=50, seed=0))
        clusterer.insert_many(blob_points)
        clusterer.query()
        assert clusterer.stored_points() < blob_points.shape[0]

    def test_points_seen(self, blob_points):
        clusterer = KMedianCachedClusterer(KMedianConfig(k=4, coreset_size=50, seed=0))
        clusterer.insert_many(blob_points[:130])
        assert clusterer.points_seen == 130
