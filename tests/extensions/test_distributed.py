"""Unit tests for distributed / parallel stream clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import StreamingConfig
from repro.extensions.distributed import DistributedCoordinator
from repro.kmeans.cost import kmeans_cost


@pytest.fixture()
def config() -> StreamingConfig:
    return StreamingConfig(k=4, coreset_size=50, n_init=2, lloyd_iterations=5, seed=0)


class TestDistributedCoordinator:
    def test_invalid_parameters(self, config):
        with pytest.raises(ValueError):
            DistributedCoordinator(config, num_shards=0)
        with pytest.raises(ValueError):
            DistributedCoordinator(config, routing="broadcast")

    def test_query_before_points_raises(self, config):
        with pytest.raises(RuntimeError):
            DistributedCoordinator(config).query()

    def test_round_robin_balances_load(self, config, blob_points):
        coordinator = DistributedCoordinator(config, num_shards=4, routing="round_robin")
        coordinator.insert_many(blob_points[:1000])
        loads = coordinator.shard_loads()
        assert sum(loads) == 1000
        assert max(loads) - min(loads) <= 1

    def test_random_routing_covers_all_shards(self, config, blob_points):
        coordinator = DistributedCoordinator(config, num_shards=4, routing="random")
        coordinator.insert_many(blob_points[:1000])
        assert all(load > 0 for load in coordinator.shard_loads())

    def test_hash_routing_is_deterministic_per_point(self, config):
        coordinator = DistributedCoordinator(config, num_shards=4, routing="hash")
        point = np.array([1.0, 2.0, 3.0, 4.0])
        shard_a = coordinator._route(point)
        shard_b = coordinator._route(point)
        assert shard_a == shard_b

    @pytest.mark.parametrize("routing", ["round_robin", "random"])
    def test_global_query_quality(self, config, blob_points, blob_centers, routing):
        coordinator = DistributedCoordinator(config, num_shards=4, routing=routing)
        coordinator.insert_many(blob_points)
        result = coordinator.query()
        assert result.centers.shape == (4, 4)
        cost = kmeans_cost(blob_points, result.centers)
        reference = kmeans_cost(blob_points, blob_centers)
        assert cost <= 3.0 * reference

    def test_matches_single_shard_quality(self, config, blob_points):
        """Sharding should not materially hurt accuracy versus one CC instance."""
        single = DistributedCoordinator(config, num_shards=1)
        sharded = DistributedCoordinator(config, num_shards=4)
        single.insert_many(blob_points)
        sharded.insert_many(blob_points)
        single_cost = kmeans_cost(blob_points, single.query().centers)
        sharded_cost = kmeans_cost(blob_points, sharded.query().centers)
        assert sharded_cost <= 2.0 * single_cost

    def test_memory_split_across_shards(self, config, blob_points):
        coordinator = DistributedCoordinator(config, num_shards=4)
        coordinator.insert_many(blob_points)
        per_shard = [shard.stored_points() for shard in coordinator.shards]
        assert sum(per_shard) == coordinator.stored_points()
        assert all(points > 0 for points in per_shard)

    def test_points_seen(self, config, blob_points):
        coordinator = DistributedCoordinator(config, num_shards=3)
        coordinator.insert_many(blob_points[:321])
        assert coordinator.points_seen == 321

    def test_dimension_mismatch(self, config):
        coordinator = DistributedCoordinator(config)
        coordinator.insert(np.zeros(4))
        with pytest.raises(ValueError):
            coordinator.insert(np.zeros(2))
