"""Unit tests for persistence helpers (centers, query results, CSV/JSON)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import QueryResult
from repro.io.serialization import (
    load_centers,
    load_query_result,
    results_from_csv,
    results_to_csv,
    save_centers,
    save_query_result,
    series_from_json,
    series_to_json,
)


class TestCenters:
    def test_roundtrip(self, tmp_path):
        centers = np.random.default_rng(0).normal(size=(5, 3))
        path = save_centers(tmp_path / "centers.npz", centers)
        loaded = load_centers(path)
        np.testing.assert_allclose(loaded, centers)

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            save_centers(tmp_path / "bad.npz", np.zeros(5))

    def test_missing_key_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(KeyError):
            load_centers(path)

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "nested" / "deeper" / "centers.npz"
        save_centers(target, np.zeros((2, 2)))
        assert target.exists()

    def test_preserves_dtype(self, tmp_path):
        # Regression: centers used to be silently upcast to float64.
        centers = np.random.default_rng(1).normal(size=(4, 2)).astype(np.float32)
        loaded = load_centers(save_centers(tmp_path / "f32.npz", centers))
        assert loaded.dtype == np.float32
        np.testing.assert_array_equal(loaded, centers)

    def test_weights_roundtrip(self, tmp_path):
        # Regression: the weights a coreset query carries used to be dropped.
        centers = np.random.default_rng(2).normal(size=(3, 2))
        weights = np.array([1.5, 2.0, 0.25])
        path = save_centers(tmp_path / "w.npz", centers, weights=weights)
        loaded_centers, loaded_weights = load_centers(path, with_weights=True)
        np.testing.assert_array_equal(loaded_centers, centers)
        np.testing.assert_array_equal(loaded_weights, weights)

    def test_weights_absent_returns_none(self, tmp_path):
        path = save_centers(tmp_path / "nw.npz", np.zeros((2, 2)))
        _, weights = load_centers(path, with_weights=True)
        assert weights is None

    def test_rejects_mismatched_weights(self, tmp_path):
        with pytest.raises(ValueError):
            save_centers(tmp_path / "bad.npz", np.zeros((3, 2)), weights=np.ones(2))


class TestQueryResult:
    def test_roundtrip(self, tmp_path):
        result = QueryResult(
            centers=np.arange(6, dtype=float).reshape(3, 2),
            coreset_points=123,
            from_cache=True,
        )
        path = save_query_result(tmp_path / "result.npz", result)
        loaded = load_query_result(path)
        np.testing.assert_allclose(loaded.centers, result.centers)
        assert loaded.coreset_points == 123
        assert loaded.from_cache is True

    def test_roundtrip_false_flag(self, tmp_path):
        result = QueryResult(centers=np.zeros((2, 2)), coreset_points=0, from_cache=False)
        loaded = load_query_result(save_query_result(tmp_path / "r.npz", result))
        assert loaded.from_cache is False


class TestCsv:
    def test_roundtrip(self, tmp_path):
        rows = [
            {"algorithm": "cc", "cost": 1.5, "points": 100},
            {"algorithm": "rcc", "cost": 2.5, "points": 200},
        ]
        path = results_to_csv(tmp_path / "results.csv", rows)
        loaded = results_from_csv(path)
        assert len(loaded) == 2
        assert loaded[0]["algorithm"] == "cc"
        assert float(loaded[1]["cost"]) == pytest.approx(2.5)

    def test_heterogeneous_keys(self, tmp_path):
        rows = [{"a": 1}, {"b": 2}]
        path = results_to_csv(tmp_path / "mixed.csv", rows)
        loaded = results_from_csv(path)
        assert loaded[0]["a"] == "1"
        assert loaded[0]["b"] == ""
        assert loaded[1]["b"] == "2"

    def test_empty_rows(self, tmp_path):
        path = results_to_csv(tmp_path / "empty.csv", [])
        assert results_from_csv(path) == []


class TestJsonSeries:
    def test_roundtrip(self, tmp_path):
        series = {"cc": {50: 1.25, 100: 0.75}, "rcc": {50: 1.5}}
        path = series_to_json(tmp_path / "fig.json", series)
        loaded = series_from_json(path)
        assert loaded["cc"]["50"] == pytest.approx(1.25)
        assert loaded["rcc"]["50"] == pytest.approx(1.5)

    def test_handles_numpy_values(self, tmp_path):
        series = {"cc": {np.int64(10): np.float64(3.5)}}
        path = series_to_json(tmp_path / "np.json", series)
        loaded = series_from_json(path)
        assert loaded["cc"]["10"] == pytest.approx(3.5)
