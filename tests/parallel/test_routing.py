"""Unit tests for routing policies and per-shard seed derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.routing import (
    HashRouter,
    RandomRouter,
    RoundRobinRouter,
    make_router,
    spawn_shard_seeds,
    stable_row_hash,
)


def _gather(blocks, num_shards):
    """Per-shard row lists from a split_batch result."""
    out = {index: [] for index in range(num_shards)}
    for shard_index, block in blocks:
        out[shard_index].append(block)
    return {
        index: (np.vstack(parts) if parts else np.empty((0,)))
        for index, parts in out.items()
    }


class TestStableRowHash:
    def test_deterministic_across_calls(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(64, 7))
        assert np.array_equal(stable_row_hash(arr), stable_row_hash(arr))

    def test_row_hash_matches_single_row(self):
        rng = np.random.default_rng(1)
        arr = rng.normal(size=(16, 3))
        whole = stable_row_hash(arr)
        each = np.array([stable_row_hash(row)[0] for row in arr])
        assert np.array_equal(whole, each)

    def test_distinct_rows_rarely_collide(self):
        rng = np.random.default_rng(2)
        arr = rng.normal(size=(512, 4))
        assert len(set(stable_row_hash(arr).tolist())) == 512

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            stable_row_hash(np.zeros((2, 2, 2)))

    def test_non_contiguous_input(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(32, 8))
        strided = base[::2, ::2]
        assert np.array_equal(
            stable_row_hash(strided), stable_row_hash(np.ascontiguousarray(strided))
        )


class TestSpawnShardSeeds:
    def test_none_propagates(self):
        assert spawn_shard_seeds(None, 3) == [None, None, None]

    def test_reproducible(self):
        assert spawn_shard_seeds(7, 4) == spawn_shard_seeds(7, 4)

    def test_independent_of_shard_count(self):
        """Shard i's stream must not change when the cluster is resized."""
        assert spawn_shard_seeds(7, 2) == spawn_shard_seeds(7, 8)[:2]

    def test_distinct_within_an_engine(self):
        seeds = spawn_shard_seeds(0, 16)
        assert len(set(seeds)) == 16

    def test_regression_no_cross_coordinator_collisions(self):
        """The old ``seed + shard_index`` scheme made coordinator seed=0
        shard 1 share its sampling stream with coordinator seed=1 shard 0."""
        a = spawn_shard_seeds(0, 4)
        b = spawn_shard_seeds(1, 4)
        assert not set(a) & set(b)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_shard_seeds(0, 0)


class TestRoundRobinRouter:
    def test_balances_and_preserves_order(self):
        router = RoundRobinRouter(3)
        arr = np.arange(20.0).reshape(10, 2)
        shards = _gather(router.split_batch(arr), 3)
        sizes = sorted(block.shape[0] for block in shards.values())
        assert sizes == [3, 3, 4]
        for index, block in shards.items():
            assert np.array_equal(block, arr[index::3])

    def test_point_and_batch_share_the_cursor(self):
        batch_router = RoundRobinRouter(3)
        point_router = RoundRobinRouter(3)
        arr = np.arange(14.0).reshape(7, 2)
        batched = _gather(batch_router.split_batch(arr), 3)
        point_wise = {index: [] for index in range(3)}
        for row in arr:
            point_wise[point_router.route_point(row)].append(row)
        for index in range(3):
            expected = np.vstack(point_wise[index]) if point_wise[index] else None
            if expected is None:
                assert batched[index].shape[0] == 0
            else:
                assert np.array_equal(batched[index], expected)
        # The cursor carries over: the next point goes where the batch left off.
        assert batch_router.route_point(arr[0]) == point_router.route_point(arr[0])


class TestHashRouter:
    def test_stateless_and_content_keyed(self):
        router = HashRouter(4)
        point = np.array([1.0, 2.0, 3.0])
        assert router.route_point(point) == router.route_point(point)

    def test_batch_matches_per_point(self):
        router = HashRouter(4)
        arr = np.random.default_rng(5).normal(size=(40, 3))
        shards = _gather(router.split_batch(arr), 4)
        for row in arr:
            index = router.route_point(row)
            assert any(np.array_equal(row, stored) for stored in shards[index])

    def test_invariant_to_batch_boundaries(self):
        arr = np.random.default_rng(6).normal(size=(60, 4))
        one = _gather(HashRouter(3).split_batch(arr), 3)
        router = HashRouter(3)
        pieces = [arr[:13], arr[13:37], arr[37:]]
        accumulated = {index: [] for index in range(3)}
        for piece in pieces:
            for shard_index, block in router.split_batch(piece):
                accumulated[shard_index].append(block)
        for index in range(3):
            rebuilt = (
                np.vstack(accumulated[index])
                if accumulated[index]
                else np.empty((0, 4))
            )
            if one[index].shape[0] == 0:
                assert rebuilt.shape[0] == 0
            else:
                assert np.array_equal(one[index], rebuilt)


class TestRandomRouter:
    def test_seeded_reproducibility(self):
        arr = np.random.default_rng(7).normal(size=(50, 3))
        a = _gather(RandomRouter(4, seed=9).split_batch(arr), 4)
        b = _gather(RandomRouter(4, seed=9).split_batch(arr), 4)
        for index in range(4):
            assert np.array_equal(a[index], b[index])

    def test_covers_all_shards(self):
        arr = np.random.default_rng(8).normal(size=(400, 2))
        shards = _gather(RandomRouter(4, seed=0).split_batch(arr), 4)
        assert all(block.shape[0] > 0 for block in shards.values())


class TestMakeRouter:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_router("broadcast", 2)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            make_router("round_robin", 0)

    @pytest.mark.parametrize("policy", ["round_robin", "hash", "random"])
    def test_policy_attribute(self, policy):
        assert make_router(policy, 2, seed=0).policy == policy
