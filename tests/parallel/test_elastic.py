"""Elasticity battery: live resharding, migration, crash recovery, routing dtype.

Covers the elastic-sharding contract end to end: N→M reshards are lossless
(the redistributed union coreset is the same multiset, ``points_seen``
accounting is exact, partial-bucket tails survive), post-reshard query
quality stays within the golden 1.10x geomean bound, load-driven migration
moves coreset mass and virtual routing buckets together, a killed
process-backend worker is transparently restarted from its recovery point
with the journal tail replayed, and the ``_route``/storage-dtype regression
stays fixed.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.parallel.backends as backends_module
from repro.bench.harness import StreamingExperiment, run_experiment
from repro.checkpoint import load_checkpoint
from repro.core.base import StreamingConfig
from repro.data.loaders import load_dataset
from repro.kmeans.cost import kmeans_cost
from repro.parallel import (
    RebalancePolicy,
    ShardedEngine,
    ShardWorkerError,
    apportion_points,
)
from repro.parallel.routing import make_router
from repro.parallel.shard import StreamShard
from repro.queries.schedule import FixedIntervalSchedule
from repro.serving.plane import ServingPlane

_SHARDS = max(2, int(os.environ.get("REPRO_TEST_SHARDS", "3")))
_BACKENDS = tuple(
    name.strip()
    for name in os.environ.get("REPRO_TEST_BACKENDS", "serial,thread,process").split(",")
    if name.strip()
)

needs_process = pytest.mark.skipif(
    "process" not in _BACKENDS,
    reason="process backend disabled via REPRO_TEST_BACKENDS",
)
needs_thread = pytest.mark.skipif(
    "thread" not in _BACKENDS,
    reason="thread backend disabled via REPRO_TEST_BACKENDS",
)


@pytest.fixture(autouse=True)
def short_stall_timeout(monkeypatch):
    """Fail fast instead of waiting out the production stall deadline."""
    monkeypatch.setattr(backends_module, "_STALL_TIMEOUT", 20.0)


def _sorted_union(engine: ShardedEngine) -> np.ndarray:
    """The engine's merged coreset as lexsorted (point..., weight) rows."""
    coreset, _ = engine.collect_serving_snapshot()
    rows = np.column_stack(
        [
            np.asarray(coreset.points, dtype=np.float64),
            np.asarray(coreset.weights, dtype=np.float64),
        ]
    )
    return rows[np.lexsort(rows.T)]


class FailingShard(StreamShard):
    """Shard that blows up once it has seen more than ``FAIL_AFTER`` points.

    The failure is deterministic in ``points_seen``, so a recovery replay
    re-triggers it — exactly the case the ``max_restarts`` budget exists for.
    """

    FAIL_AFTER = 120

    def insert_batch(self, points):  # noqa: D102 - inherited behaviour + fault
        if self.points_seen + np.asarray(points).shape[0] > self.FAIL_AFTER:
            raise RuntimeError("injected shard failure")
        super().insert_batch(points)


def failing_factory(config, shard_index, seed, structure, **kwargs):
    """Module-level factory (picklable) producing :class:`FailingShard`."""
    return FailingShard(config, shard_index, seed=seed, structure=structure)


class TestReshardCorrectness:
    def test_reshard_preserves_union_and_accounting(
        self, parallel_config, stream_points, backend
    ):
        """Grow N→M: same coreset multiset, exact points_seen apportionment."""
        with ShardedEngine(
            parallel_config, num_shards=_SHARDS, backend=backend
        ) as engine:
            engine.insert_batch(stream_points[:1130])  # leaves a partial bucket
            before = _sorted_union(engine)
            report = engine.reshard(_SHARDS + 2)
            assert engine.num_shards == _SHARDS + 2
            assert report.old_num_shards == _SHARDS
            assert report.points_represented == 1130
            assert report.pause_seconds >= 0.0
            np.testing.assert_allclose(_sorted_union(engine), before)
            assert engine.points_seen == 1130
            assert sum(engine.shard_loads()) == 1130
            assert engine.stored_points() == report.coreset_points
            # The engine keeps ingesting and answering after the reshard.
            engine.insert_batch(stream_points[1130:1500])
            assert engine.points_seen == 1500
            assert sum(engine.shard_loads()) == 1500
            assert np.isfinite(engine.query().stats.cost)

    def test_reshard_shrink(self, parallel_config, stream_points, backend):
        """Shrinking M→1 folds every shard into one without losing mass."""
        with ShardedEngine(
            parallel_config, num_shards=_SHARDS, backend=backend
        ) as engine:
            engine.insert_batch(stream_points[:800])
            before = _sorted_union(engine)
            engine.reshard(1)
            assert engine.num_shards == 1
            np.testing.assert_allclose(_sorted_union(engine), before)
            assert engine.shard_loads() == [800]
            assert np.isfinite(engine.query().stats.cost)

    def test_reshard_preserves_partial_bucket_tail(self, parallel_config, backend):
        """Points still in shard buffers (no full bucket yet) survive verbatim."""
        rng = np.random.default_rng(13)
        tail = rng.normal(size=(7, 5))  # far below bucket_size=50
        with ShardedEngine(
            parallel_config, num_shards=2, backend=backend
        ) as engine:
            engine.insert_batch(tail)
            engine.reshard(3)
            coreset, _ = engine.collect_serving_snapshot()
            assert coreset.size == 7
            np.testing.assert_allclose(np.sort(coreset.weights), np.ones(7))
            got = np.asarray(coreset.points, dtype=np.float64)
            np.testing.assert_allclose(
                got[np.lexsort(got.T)], tail[np.lexsort(tail.T)]
            )

    def test_reshard_validation(self, parallel_config):
        with ShardedEngine(parallel_config, num_shards=2) as engine:
            with pytest.raises(ValueError):
                engine.reshard(0)
        with pytest.raises(RuntimeError):
            engine.reshard(2)


class TestReshardRoundTripProperties:
    _POINTS = np.random.default_rng(21).normal(scale=8.0, size=(400, 4))

    @given(
        n_points=st.integers(min_value=30, max_value=400),
        m1=st.integers(min_value=1, max_value=6),
        m2=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_n_m_n_round_trip_is_lossless(self, n_points, m1, m2):
        """Any N→M1→M2 chain preserves the union multiset and accounting."""
        config = StreamingConfig(
            k=3, coreset_size=25, n_init=1, lloyd_iterations=2, seed=5
        )
        with ShardedEngine(config, num_shards=3, backend="serial") as engine:
            engine.insert_batch(self._POINTS[:n_points])
            before = _sorted_union(engine)
            engine.reshard(m1)
            report = engine.reshard(m2)
            np.testing.assert_allclose(_sorted_union(engine), before)
            assert engine.points_seen == n_points
            assert sum(engine.shard_loads()) == n_points
            assert engine.num_shards == m2
            assert engine.stored_points() == report.coreset_points

    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        total=st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_apportion_points_is_exact(self, weights, total):
        counts = apportion_points(weights, total)
        assert len(counts) == len(weights)
        assert sum(counts) == total
        assert all(count >= 0 for count in counts)

    def test_apportion_points_edge_cases(self):
        assert apportion_points([], 0) == []
        with pytest.raises(ValueError):
            apportion_points([], 5)
        assert apportion_points([0.0, 0.0, 0.0], 7) == [3, 2, 2]
        assert apportion_points([3.0, 1.0], 4) == [3, 1]


class TestReshardQuality:
    """The acceptance gate: resharding must not degrade clustering quality.

    A mid-stream 4→8 reshard redistributes the union coreset (Observation 1),
    so the final query cost must stay within the same golden bound the
    never-resharded sharded engine is held to: per-seed ratio <= 1.5 against
    the equal-``m`` single-structure CC run, geomean across seeds <= 1.10.
    """

    @pytest.mark.parametrize("dataset", ["covtype", "drift"])
    def test_post_reshard_cost_within_1_10x_of_single_cc(self, dataset):
        info = load_dataset(dataset, num_points=6000, seed=0)
        points = info.points
        ratios = []
        for seed in (0, 1, 2):
            config = StreamingConfig(
                k=10, coreset_size=200, n_init=5, lloyd_iterations=20, seed=seed
            )
            single = ShardedEngine(config, num_shards=1, backend="serial")
            with single:
                single.insert_batch(points)
                single_cost = kmeans_cost(points, single.query().centers)

            with ShardedEngine(
                config, num_shards=4, routing="round_robin"
            ) as engine:
                engine.insert_batch(points[:3000])
                engine.reshard(8)
                engine.insert_batch(points[3000:])
                resharded_cost = kmeans_cost(points, engine.query().centers)

            ratio = resharded_cost / single_cost
            assert ratio <= 1.5, f"seed {seed}: post-reshard cost degraded {ratio:.2f}x"
            ratios.append(ratio)

        geomean = float(np.exp(np.mean(np.log(ratios))))
        assert geomean <= 1.10, f"post-reshard cost geomean {geomean:.3f} > 1.10"


class TestMigration:
    def test_migrate_moves_mass_and_preserves_totals(
        self, parallel_config, stream_points, backend
    ):
        with ShardedEngine(
            parallel_config, num_shards=_SHARDS, backend=backend
        ) as engine:
            engine.insert_batch(stream_points[:900])
            total_before = float(np.sum(_sorted_union(engine)[:, -1]))
            loads_before = engine.shard_loads()
            report = engine.migrate(0, 1, fraction=0.5)
            assert report.moved_coreset_points > 0
            assert report.moved_points_represented > 0
            assert engine.points_seen == 900
            assert sum(engine.shard_loads()) == 900
            assert engine.shard_loads()[0] == (
                loads_before[0] - report.moved_points_represented
            )
            total_after = float(np.sum(_sorted_union(engine)[:, -1]))
            assert total_after == pytest.approx(total_before)
            assert np.isfinite(engine.query().stats.cost)

    def test_migrate_validation(self, parallel_config):
        with ShardedEngine(parallel_config, num_shards=2) as engine:
            engine.insert_batch(np.random.default_rng(1).normal(size=(60, 3)))
            with pytest.raises(ValueError):
                engine.migrate(0, 0)
            with pytest.raises(ValueError):
                engine.migrate(0, 5)
            with pytest.raises(ValueError):
                engine.migrate(0, 1, fraction=0.0)

    def test_rebalance_policy_triggers_on_hash_skew(self, parallel_config):
        """Duplicate rows hash to one shard; the policy migrates them away."""
        rng = np.random.default_rng(3)
        hot_row = rng.normal(size=5)
        hot = np.tile(hot_row, (600, 1))
        policy = RebalancePolicy(imbalance_ratio=1.2, min_points=200, fraction=0.5)
        with ShardedEngine(
            parallel_config,
            num_shards=_SHARDS,
            backend="serial",
            routing="hash",
            rebalance=policy,
        ) as engine:
            for offset in range(0, 600, 100):
                engine.insert_batch(hot[offset : offset + 100])
            history = engine.migration_history
            assert history, "skewed hash stream never triggered a migration"
            assert history[0].router_slots_moved > 0
            assert sum(engine.shard_loads()) == engine.points_seen == 600
            assert np.isfinite(engine.query().stats.cost)

    def test_rebalance_policy_decisions(self):
        policy = RebalancePolicy(imbalance_ratio=1.5, min_points=100, fraction=0.5)
        assert policy.decide([1000]) is None  # one shard: nothing to do
        assert policy.decide([10, 10]) is None  # below min_points
        assert policy.decide([100, 100]) is None  # balanced
        assert policy.decide([300, 100]) == (0, 1)
        assert policy.decide([100, 300, 20]) == (1, 2)

    def test_rebalance_policy_validation(self):
        with pytest.raises(ValueError):
            RebalancePolicy(imbalance_ratio=1.0)
        with pytest.raises(ValueError):
            RebalancePolicy(min_points=0)
        with pytest.raises(ValueError):
            RebalancePolicy(fraction=0.0)


class TestCrashRecovery:
    @needs_process
    def test_killed_process_worker_recovers_and_converges(
        self, parallel_config, stream_points
    ):
        """Kill a worker mid-stream: the engine restarts it, replays the
        journal tail, keeps exact accounting, and still converges."""
        with ShardedEngine(
            parallel_config, num_shards=2, backend="serial"
        ) as reference:
            reference.insert_batch(stream_points)
            reference_cost = kmeans_cost(stream_points, reference.query().centers)

        engine = ShardedEngine(
            parallel_config,
            num_shards=2,
            backend="process",
            auto_recover=True,
            recovery_interval=256,
            max_restarts=2,
        )
        try:
            for offset in range(0, 1500, 250):
                engine.insert_batch(stream_points[offset : offset + 250])
            engine.flush()
            victim = engine._backend._processes[1]
            victim.terminate()
            victim.join(timeout=10.0)
            for offset in range(1500, 3000, 250):
                engine.insert_batch(stream_points[offset : offset + 250])
            result = engine.query()
            assert engine.points_seen == 3000
            assert sum(engine.shard_loads()) == 3000
            events = engine.recovery_events
            assert events, "killed worker was never recovered"
            assert events[0].shard_index == 1
            assert events[0].restarts == 1
            cost = kmeans_cost(stream_points, result.centers)
            assert np.isfinite(cost)
            assert cost <= 1.5 * reference_cost
        finally:
            engine.close()

    @needs_process
    def test_repeated_kills_never_wedge_other_shards(
        self, parallel_config, stream_points
    ):
        """Kill workers right after a barrier, repeatedly, alternating shards.

        Regression: replies used to travel over ONE queue shared by all
        workers, so a worker terminated in the window between its barrier
        reply landing and its feeder thread releasing the queue's write
        lock left that lock held forever — and the next barrier on any
        OTHER shard stalled.  Per-worker reply pipes confine a kill at any
        instant to the dead worker's own channel.
        """
        engine = ShardedEngine(
            parallel_config,
            num_shards=2,
            backend="process",
            auto_recover=True,
            recovery_interval=128,
            max_restarts=20,
        )
        try:
            offset = 0
            for cycle in range(6):
                for _ in range(3):
                    engine.insert_batch(stream_points[offset : offset + 100])
                    offset += 100
                # flush() returns the instant the sync replies arrive —
                # terminating right here maximizes the chance of hitting a
                # worker that is still inside its reply send path.
                engine.flush()
                victim = engine._backend._processes[cycle % 2]
                victim.terminate()
                victim.join(timeout=10.0)
            engine.flush()
            result = engine.query()
            assert result.centers.shape[0] == parallel_config.k
            assert engine.points_seen == offset
            assert sum(engine.shard_loads()) == offset
            assert engine.recovery_events
        finally:
            engine.close()

    @needs_thread
    def test_deterministic_failure_exhausts_restart_budget(self, parallel_config):
        """A fault the journal replay re-triggers surfaces after max_restarts."""
        engine = ShardedEngine(
            parallel_config,
            num_shards=2,
            backend="thread",
            queue_depth=2,
            shard_factory=failing_factory,
            auto_recover=True,
            recovery_interval=64,
            max_restarts=1,
        )
        try:
            points = np.random.default_rng(6).normal(size=(600, 3))
            with pytest.raises(ShardWorkerError):
                for offset in range(0, 600, 30):
                    engine.insert_batch(points[offset : offset + 30])
                engine.flush()
            assert all(
                event.restarts <= 1 for event in engine.recovery_events
            )
        finally:
            engine.close()

    def test_serial_backend_failures_stay_inline(self, parallel_config):
        """Serial shards run in the caller; auto_recover never masks them."""
        engine = ShardedEngine(
            parallel_config,
            num_shards=2,
            backend="serial",
            shard_factory=failing_factory,
            auto_recover=True,
        )
        try:
            points = np.random.default_rng(7).normal(size=(600, 3))
            with pytest.raises(RuntimeError, match="injected shard failure"):
                for offset in range(0, 600, 30):
                    engine.insert_batch(points[offset : offset + 30])
            assert engine.recovery_events == []
        finally:
            engine.close()


class TestHarnessAndServing:
    def test_harness_reshard_schedule(self, stream_points):
        config = StreamingConfig(
            k=4, coreset_size=50, n_init=1, lloyd_iterations=3, seed=7
        )
        result = run_experiment(
            StreamingExperiment(
                algorithm="cc",
                config=config,
                schedule=FixedIntervalSchedule(500),
                shards=2,
                backend="serial",
                reshard_at={600: 4, 1200: 3},
            ),
            stream_points[:1500],
        )
        assert [report.new_num_shards for report in result.reshards] == [4, 3]
        assert all(report.pause_seconds >= 0.0 for report in result.reshards)
        assert np.isfinite(result.final_cost)

    def test_harness_reshard_requires_sharded_run(self, stream_points):
        config = StreamingConfig(k=4, coreset_size=50, seed=7)
        with pytest.raises(ValueError, match="reshard_at requires"):
            run_experiment(
                StreamingExperiment(
                    algorithm="cc", config=config, reshard_at={100: 2}
                ),
                stream_points[:200],
            )

    @needs_thread
    def test_serving_plane_reshard_during_reads(self, parallel_config, stream_points):
        """A reader keeps answering while the writer reshards underneath it."""
        engine = ShardedEngine(parallel_config, num_shards=2, backend="thread")
        with ServingPlane(engine) as plane:
            plane.ingest(stream_points[:600])
            reader = plane.reader()
            stop = threading.Event()
            errors: list[Exception] = []
            served = []

            def serve() -> None:
                while not stop.is_set():
                    try:
                        served.append(reader.query().cost)
                    except Exception as exc:  # noqa: BLE001 - recorded for assert
                        errors.append(exc)
                        return

            thread = threading.Thread(target=serve)
            thread.start()
            try:
                for offset in range(600, 1800, 300):
                    plane.ingest(stream_points[offset : offset + 300])
                    if offset == 900:
                        report = plane.reshard(4)
                        assert report.new_num_shards == 4
            finally:
                stop.set()
                thread.join(timeout=20.0)
            assert not errors
            assert served and all(np.isfinite(cost) for cost in served)
            assert engine.num_shards == 4
            assert plane.points_ingested == 1800

    def test_serving_plane_reshard_rejects_single_structure(self, parallel_config):
        from repro.core.driver import CachedCoresetTreeClusterer

        plane = ServingPlane(CachedCoresetTreeClusterer(parallel_config))
        with pytest.raises(TypeError, match="does not support resharding"):
            plane.reshard(2)

    def test_checkpoint_round_trip_after_reshard(
        self, tmp_path, parallel_config, stream_points, backend
    ):
        """Inherited (post-reshard) shard state survives snapshot/restore."""
        with ShardedEngine(
            parallel_config, num_shards=2, backend=backend
        ) as engine:
            engine.insert_batch(stream_points[:700])
            engine.reshard(4)
            engine.insert_batch(stream_points[700:930])
            before = _sorted_union(engine)
            points_seen = engine.points_seen
            loads = engine.shard_loads()
            engine.snapshot(tmp_path / "ckpt")
        restored = load_checkpoint(tmp_path / "ckpt")
        try:
            assert restored.num_shards == 4
            assert restored.points_seen == points_seen
            assert restored.shard_loads() == loads
            np.testing.assert_allclose(_sorted_union(restored), before)
            assert np.isfinite(restored.query().stats.cost)
        finally:
            restored.close()


class TestRouteDtypeRegression:
    """``_route`` must hash the storage-dtype row, not the raw float64 input."""

    @staticmethod
    def _quantization_sensitive_row(router, rng) -> np.ndarray:
        """A float64 row whose hash shard changes under float32 quantization."""
        for _ in range(1000):
            row = rng.normal(scale=3.0, size=5)
            quantized = row.astype(np.float32).astype(np.float64)
            if router.route_point(row) != router.route_point(
                np.asarray(row, dtype=np.float32)
            ) and not np.array_equal(row, quantized):
                return row
        raise AssertionError("no quantization-sensitive row found")

    def test_route_matches_actual_insert_shard_under_float32(self):
        config = StreamingConfig(k=3, coreset_size=25, seed=9, dtype="float32")
        with ShardedEngine(
            config, num_shards=3, backend="serial", routing="hash"
        ) as engine:
            row = self._quantization_sensitive_row(
                make_router("hash", 3, seed=9), np.random.default_rng(17)
            )
            predicted = engine._route(row)
            engine.insert(row)
            engine.flush()
            loads = engine.shard_loads()
            assert loads[predicted] == 1, (
                f"_route named shard {predicted} but the point landed on "
                f"shard {int(np.argmax(loads))}"
            )

    def test_route_unchanged_for_float64(self):
        config = StreamingConfig(k=3, coreset_size=25, seed=9)
        with ShardedEngine(
            config, num_shards=3, backend="serial", routing="hash"
        ) as engine:
            rng = np.random.default_rng(23)
            for row in rng.normal(size=(50, 4)):
                predicted = engine._route(row)
                before = engine.shard_loads()
                engine.insert(row)
                after = engine.shard_loads()
                assert after[predicted] == before[predicted] + 1
