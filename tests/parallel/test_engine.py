"""Unit tests for the sharded ingestion engine across backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import CachedCoresetTreeClusterer, StreamClusterDriver
from repro.extensions.distributed import DistributedCoordinator
from repro.kmeans.cost import kmeans_cost
from repro.parallel import ShardedEngine


class TestConstruction:
    def test_invalid_parameters(self, parallel_config):
        with pytest.raises(ValueError):
            ShardedEngine(parallel_config, num_shards=0)
        with pytest.raises(ValueError):
            ShardedEngine(parallel_config, routing="broadcast")
        with pytest.raises(ValueError):
            ShardedEngine(parallel_config, backend="gpu")
        with pytest.raises(ValueError):
            ShardedEngine(parallel_config, structure="kdtree")

    def test_query_before_points_raises(self, parallel_config, backend):
        with ShardedEngine(parallel_config, num_shards=2, backend=backend) as engine:
            with pytest.raises(RuntimeError):
                engine.query()

    def test_driver_sharded_constructor_path(self, parallel_config):
        engine = CachedCoresetTreeClusterer.sharded(parallel_config, num_shards=2)
        try:
            assert isinstance(engine, ShardedEngine)
            assert engine.structure_name == "cc"
            assert engine.num_shards == 2
        finally:
            engine.close()

    def test_generic_driver_has_no_shard_structure(self, parallel_config):
        with pytest.raises(TypeError):
            StreamClusterDriver.sharded(parallel_config, num_shards=2)

    @pytest.mark.parametrize("structure", ["ct", "cc", "rcc"])
    def test_all_shard_structures(self, parallel_config, stream_points, structure):
        with ShardedEngine(
            parallel_config, num_shards=2, structure=structure
        ) as engine:
            engine.insert_batch(stream_points[:500])
            result = engine.query()
            assert result.centers.shape == (parallel_config.k, 5)
            # CT shards have no coreset cache; CC/RCC serve cached coresets.
            assert result.from_cache == (structure != "ct")
            assert (engine.cache_stats() is None) == (structure == "ct")

    def test_rcc_shards_respect_nesting_depth(self, parallel_config):
        with ShardedEngine(
            parallel_config, num_shards=2, structure="rcc", nesting_depth=1
        ) as engine:
            assert all(
                shard.structure.nesting_depth == 1 for shard in engine.shards
            )


class TestIngestion:
    def test_round_robin_balances_load(self, parallel_config, stream_points, backend, shards):
        with ShardedEngine(
            parallel_config, num_shards=shards, backend=backend
        ) as engine:
            engine.insert_batch(stream_points[:1000])
            loads = engine.shard_loads()
            assert sum(loads) == 1000
            assert max(loads) - min(loads) <= 1
            assert engine.points_seen == 1000

    def test_per_point_matches_batch_routing(self, parallel_config, stream_points):
        batched = ShardedEngine(parallel_config, num_shards=3)
        pointwise = ShardedEngine(parallel_config, num_shards=3)
        batched.insert_batch(stream_points[:120])
        for row in stream_points[:120]:
            pointwise.insert(row)
        assert batched.shard_loads() == pointwise.shard_loads()
        for left, right in zip(batched.shards, pointwise.shards):
            assert left.points_seen == right.points_seen
        batched.close()
        pointwise.close()

    def test_dimension_mismatch(self, parallel_config, backend):
        with ShardedEngine(parallel_config, num_shards=2, backend=backend) as engine:
            engine.insert(np.zeros(4))
            with pytest.raises(ValueError):
                engine.insert(np.zeros(2))
            with pytest.raises(ValueError):
                engine.insert_batch(np.zeros((3, 6)))

    def test_empty_batch_is_a_no_op(self, parallel_config):
        with ShardedEngine(parallel_config, num_shards=2) as engine:
            engine.insert_batch(np.empty((0, 4)))
            assert engine.points_seen == 0

    def test_flush_is_a_barrier(self, parallel_config, stream_points, backend):
        with ShardedEngine(parallel_config, num_shards=2, backend=backend) as engine:
            engine.insert_batch(stream_points[:700])
            engine.flush()
            # After the barrier every routed point is inside a shard.
            assert engine.stored_points() > 0
            assert sum(engine.shard_loads()) == 700


class TestQueries:
    def test_global_query_quality(self, parallel_config, stream_points, backend):
        with ShardedEngine(
            parallel_config, num_shards=4, backend=backend
        ) as engine:
            engine.insert_batch(stream_points)
            result = engine.query()
            assert result.centers.shape == (4, 5)
            assert result.from_cache
            cost = kmeans_cost(stream_points, result.centers)
            assert np.isfinite(cost) and cost > 0

    def test_warm_start_on_repeat_queries(self, parallel_config, stream_points):
        with ShardedEngine(parallel_config, num_shards=2) as engine:
            engine.insert_batch(stream_points[:1500])
            first = engine.query()
            second = engine.query()
            assert not first.warm_start
            assert second.warm_start
            assert engine.query_engine.warm_queries >= 1

    def test_query_stats_and_cache_aggregation(self, parallel_config, stream_points, backend):
        with ShardedEngine(
            parallel_config, num_shards=2, backend=backend
        ) as engine:
            engine.insert_batch(stream_points[:1200])
            result = engine.query()
            stats = result.stats
            assert stats is not None
            assert stats.coreset_points == result.coreset_points
            snapshots = engine.last_snapshots()
            assert snapshots is not None and len(snapshots) == 2
            aggregated = engine.cache_stats()
            assert aggregated is not None
            assert aggregated.lookups == sum(
                s.cache_hits + s.cache_misses for s in snapshots
            )

    def test_query_multi_k(self, parallel_config, stream_points, backend):
        with ShardedEngine(
            parallel_config, num_shards=2, backend=backend
        ) as engine:
            engine.insert_batch(stream_points[:1000])
            sweep = engine.query_multi_k([2, 4])
            assert set(sweep) == {2, 4}
            assert sweep[2].centers.shape[0] == 2
            assert sweep[4].centers.shape[0] == 4

    def test_stored_points_matches_shard_sum(self, parallel_config, stream_points):
        with ShardedEngine(parallel_config, num_shards=3) as engine:
            engine.insert_batch(stream_points[:900])
            per_shard = [shard.stored_points() for shard in engine.shards]
            assert engine.stored_points() == sum(per_shard)
            assert all(points > 0 for points in per_shard)


class TestDistributedCoordinatorRebase:
    def test_serial_default_and_api(self, parallel_config):
        coordinator = DistributedCoordinator(parallel_config, num_shards=2)
        assert coordinator.backend_name == "serial"
        assert coordinator.structure_name == "cc"
        assert isinstance(coordinator, ShardedEngine)

    def test_coordinator_matches_engine_bitwise(self, parallel_config, stream_points):
        """The rebased coordinator is exactly a serial CC ShardedEngine."""
        coordinator = DistributedCoordinator(parallel_config, num_shards=3)
        engine = ShardedEngine(parallel_config, num_shards=3, backend="serial")
        for offset in range(0, 1500, 400):
            block = stream_points[offset : offset + 400]
            coordinator.insert_batch(block)
            engine.insert_batch(block)
        left = coordinator.query()
        right = engine.query()
        assert np.array_equal(left.centers, right.centers)
        assert left.coreset_points == right.coreset_points

    def test_coordinator_on_parallel_backend(self, parallel_config, stream_points, backend):
        with DistributedCoordinator(
            parallel_config, num_shards=2, backend=backend
        ) as coordinator:
            coordinator.insert_batch(stream_points[:800])
            result = coordinator.query()
            assert result.centers.shape == (4, 5)
