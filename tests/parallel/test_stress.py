"""Concurrency stress and fault-injection tests for the sharded engine.

Covers the failure modes a real parallel engine must not have: racy small
batches interleaved with queries, worker exceptions that must surface at
``insert_batch``/``query`` instead of hanging the coordinator, and shutdown
that never leaves live worker threads or processes behind.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.parallel.backends as backends_module
from repro.core.base import StreamingConfig
from repro.kmeans.cost import kmeans_cost
from repro.parallel import ShardedEngine, ShardWorkerError
from repro.parallel.shard import StreamShard

_SHARDS = max(2, int(os.environ.get("REPRO_TEST_SHARDS", "3")))


class FailingShard(StreamShard):
    """Shard that blows up once it has seen more than ``FAIL_AFTER`` points."""

    FAIL_AFTER = 120

    def insert_batch(self, points):  # noqa: D102 - inherited behaviour + fault
        if self.points_seen + np.asarray(points).shape[0] > self.FAIL_AFTER:
            raise RuntimeError("injected shard failure")
        super().insert_batch(points)


def failing_factory(config, shard_index, seed, structure, **kwargs):
    """Module-level factory (picklable) producing :class:`FailingShard`."""
    return FailingShard(config, shard_index, seed=seed, structure=structure)


@pytest.fixture()
def stress_config() -> StreamingConfig:
    return StreamingConfig(k=3, coreset_size=25, n_init=1, lloyd_iterations=3, seed=2)


@pytest.fixture(autouse=True)
def short_stall_timeout(monkeypatch):
    """Fail fast instead of waiting out the production stall deadline."""
    monkeypatch.setattr(backends_module, "_STALL_TIMEOUT", 20.0)


class TestRacyInterleaving:
    def test_many_small_batches_with_queries(self, stress_config, backend):
        """Dozens of tiny ragged batches racing shard merges and queries."""
        rng = np.random.default_rng(3)
        points = rng.normal(scale=4.0, size=(1700, 3))
        with ShardedEngine(
            stress_config, num_shards=_SHARDS, backend=backend, queue_depth=2
        ) as engine:
            offset = 0
            costs = []
            batch_no = 0
            while offset < points.shape[0]:
                size = int(rng.integers(1, 64))
                engine.insert_batch(points[offset : offset + size])
                offset += size
                batch_no += 1
                if batch_no % 5 == 0:
                    costs.append(engine.query().stats.cost)
            result = engine.query()
            assert engine.points_seen == points.shape[0]
            assert sum(engine.shard_loads()) == points.shape[0]
            assert all(np.isfinite(cost) for cost in costs)
            assert np.isfinite(kmeans_cost(points, result.centers))

    def test_per_point_inserts_race_queries(self, stress_config, backend):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(300, 3))
        with ShardedEngine(
            stress_config, num_shards=_SHARDS, backend=backend, queue_depth=2
        ) as engine:
            for index, row in enumerate(points):
                engine.insert(row)
                if (index + 1) % 60 == 0:
                    engine.query()
            assert engine.points_seen == 300


class TestFaultInjection:
    def test_worker_error_surfaces_without_hanging(self, stress_config, backend):
        """A raised worker exception surfaces at insert/query, never a hang."""
        rng = np.random.default_rng(5)
        points = rng.normal(size=(2000, 3))
        engine = ShardedEngine(
            stress_config,
            num_shards=2,
            backend=backend,
            queue_depth=2,
            shard_factory=failing_factory,
        )
        try:
            with pytest.raises((ShardWorkerError, RuntimeError)) as excinfo:
                for offset in range(0, points.shape[0], 30):
                    engine.insert_batch(points[offset : offset + 30])
                engine.query()
            assert "injected shard failure" in str(excinfo.value)
            if backend != "serial":
                assert isinstance(excinfo.value, ShardWorkerError)
                assert excinfo.value.shard_index in (0, 1)
        finally:
            engine.close()

    def test_query_after_worker_error_raises(self, stress_config, backend):
        if backend == "serial":
            pytest.skip("serial raises inline; there is no deferred error state")
        engine = ShardedEngine(
            stress_config,
            num_shards=2,
            backend=backend,
            queue_depth=4,
            shard_factory=failing_factory,
        )
        try:
            points = np.random.default_rng(6).normal(size=(400, 3))
            with pytest.raises(ShardWorkerError):
                for offset in range(0, 400, 20):
                    engine.insert_batch(points[offset : offset + 20])
                engine.query()
            # The engine stays failed but responsive.
            with pytest.raises(ShardWorkerError):
                engine.query()
        finally:
            engine.close()

    def test_killed_worker_process_is_detected(self, stress_config):
        engine = ShardedEngine(
            stress_config, num_shards=2, backend="process", queue_depth=2
        )
        try:
            points = np.random.default_rng(7).normal(size=(200, 3))
            engine.insert_batch(points)
            engine.flush()
            engine._backend._processes[0].terminate()
            engine._backend._processes[0].join(timeout=10.0)
            with pytest.raises((ShardWorkerError, RuntimeError)):
                engine.query()
        finally:
            engine.close()


class TestCleanShutdown:
    def test_close_is_idempotent(self, stress_config, backend):
        engine = ShardedEngine(stress_config, num_shards=2, backend=backend)
        engine.insert_batch(np.random.default_rng(8).normal(size=(100, 3)))
        engine.close()
        engine.close()
        assert engine.closed

    def test_context_manager_closes(self, stress_config, backend):
        with ShardedEngine(stress_config, num_shards=2, backend=backend) as engine:
            engine.insert_batch(np.random.default_rng(9).normal(size=(100, 3)))
        assert engine.closed
        with pytest.raises(RuntimeError):
            engine.insert_batch(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            engine.query()

    def test_no_live_workers_after_close(self, stress_config):
        engine = ShardedEngine(stress_config, num_shards=2, backend="process")
        engine.insert_batch(np.random.default_rng(10).normal(size=(300, 3)))
        engine.query()
        workers = list(engine._backend._processes)
        engine.close()
        assert all(not worker.is_alive() for worker in workers)

    def test_no_live_threads_after_close(self, stress_config):
        engine = ShardedEngine(stress_config, num_shards=2, backend="thread")
        engine.insert_batch(np.random.default_rng(11).normal(size=(300, 3)))
        engine.query()
        workers = list(engine._backend._workers)
        engine.close()
        assert all(not worker.is_alive() for worker in workers)

    def test_close_after_worker_error(self, stress_config, backend):
        engine = ShardedEngine(
            stress_config,
            num_shards=2,
            backend=backend,
            queue_depth=2,
            shard_factory=failing_factory,
        )
        points = np.random.default_rng(12).normal(size=(500, 3))
        with pytest.raises((ShardWorkerError, RuntimeError)):
            for offset in range(0, 500, 25):
                engine.insert_batch(points[offset : offset + 25])
            engine.query()
        engine.close()
        assert engine.closed
