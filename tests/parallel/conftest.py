"""Shared fixtures for the parallel-engine test battery.

Two environment knobs keep CI runtime bounded (see ``.github/workflows/ci.yml``):

* ``REPRO_TEST_BACKENDS`` — comma-separated subset of
  ``serial,thread,process`` to exercise (default: all three);
* ``REPRO_TEST_SHARDS`` — shard count used by the parametrized tests
  (default: 3);
* ``REPRO_TEST_SKETCH`` — when truthy, the shared configuration enables JL
  sketching (``sketch_dim=3`` against the 5-dimensional stream), so the whole
  battery — cross-backend equivalence, snapshots, global queries — exercises
  the sketched slabs instead of the exact-only path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.base import StreamingConfig


def enabled_backends() -> tuple[str, ...]:
    """The executor backends selected via ``REPRO_TEST_BACKENDS``."""
    raw = os.environ.get("REPRO_TEST_BACKENDS", "serial,thread,process")
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    return names or ("serial",)


def num_test_shards() -> int:
    """The shard count selected via ``REPRO_TEST_SHARDS`` (default 3)."""
    return max(2, int(os.environ.get("REPRO_TEST_SHARDS", "3")))


@pytest.fixture(params=enabled_backends())
def backend(request) -> str:
    """Parametrized over every enabled executor backend."""
    return request.param


@pytest.fixture()
def shards() -> int:
    """Shard count for parametrized engine tests."""
    return num_test_shards()


@pytest.fixture()
def parallel_config() -> StreamingConfig:
    """Small, fast configuration shared across the parallel tests."""
    sketch_dim = 3 if os.environ.get("REPRO_TEST_SKETCH") else None
    return StreamingConfig(
        k=4,
        coreset_size=50,
        n_init=2,
        lloyd_iterations=5,
        seed=11,
        sketch_dim=sketch_dim,
    )


@pytest.fixture(scope="session")
def stream_points() -> np.ndarray:
    """A mixed 4-cluster stream (3000 x 5) used across the parallel tests."""
    rng = np.random.default_rng(42)
    centers = rng.normal(scale=15.0, size=(4, 5))
    labels = rng.integers(0, 4, size=3000)
    return centers[labels] + rng.normal(scale=1.0, size=(3000, 5))
