"""Cross-backend equivalence: serial, thread, and process must agree bitwise.

The engine's design makes shard state a pure function of (config seed, shard
seed, routed point sequence): routing happens coordinator-side, each shard's
work queue is FIFO, and merge randomness is span-keyed.  So all three
executor backends must produce *identical* shard coresets and query answers
— any divergence means ordering, copying, or seeding broke.  The serial
backend doubles as the reference for the simulation-era
``DistributedCoordinator`` semantics.
"""

from __future__ import annotations

import os

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.base import StreamingConfig
from repro.parallel import ShardedEngine

_BACKENDS = tuple(
    name.strip()
    for name in os.environ.get("REPRO_TEST_BACKENDS", "serial,thread,process").split(",")
    if name.strip()
)
_SHARDS = max(2, int(os.environ.get("REPRO_TEST_SHARDS", "3")))


def _config(seed: int) -> StreamingConfig:
    return StreamingConfig(k=3, coreset_size=24, n_init=1, lloyd_iterations=3, seed=seed)


@st.composite
def point_streams(draw):
    """A small float stream plus a way to cut it into batches."""
    n = draw(st.integers(min_value=20, max_value=160))
    d = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    points = np.random.default_rng(seed).normal(scale=5.0, size=(n, d))
    num_cuts = draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=n - 1),
                min_size=num_cuts,
                max_size=num_cuts,
            )
        )
    )
    return points, cuts


def _batches(points: np.ndarray, cuts: list[int]):
    edges = [0, *cuts, points.shape[0]]
    return [points[a:b] for a, b in zip(edges, edges[1:]) if b > a]


def _run(backend: str, routing: str, seed: int, batches, interleave_queries: bool):
    engine = ShardedEngine(
        _config(seed),
        num_shards=_SHARDS,
        routing=routing,
        backend=backend,
    )
    try:
        costs = []
        for batch in batches:
            engine.insert_batch(batch)
            if interleave_queries:
                costs.append(engine.query().stats.cost)
        result = engine.query()
        snapshots = engine.last_snapshots()
        return {
            "centers": result.centers.copy(),
            "cost": result.stats.cost,
            "interleaved_costs": costs,
            "snapshots": [
                (s.points.copy(), s.weights.copy(), s.points_seen, s.stored_points)
                for s in snapshots
            ],
            "loads": engine.shard_loads(),
        }
    finally:
        engine.close()


def _assert_same(reference, other, backend: str):
    assert reference["loads"] == other["loads"], f"{backend}: shard loads differ"
    assert reference["interleaved_costs"] == other["interleaved_costs"], (
        f"{backend}: interleaved query costs differ"
    )
    assert reference["cost"] == other["cost"], f"{backend}: query cost differs"
    assert np.array_equal(reference["centers"], other["centers"]), (
        f"{backend}: query centers differ"
    )
    for index, (left, right) in enumerate(
        zip(reference["snapshots"], other["snapshots"])
    ):
        assert left[2] == right[2] and left[3] == right[3], (
            f"{backend}: shard {index} accounting differs"
        )
        assert np.array_equal(left[0], right[0]), (
            f"{backend}: shard {index} coreset points differ"
        )
        assert np.array_equal(left[1], right[1]), (
            f"{backend}: shard {index} coreset weights differ"
        )


class TestCrossBackendEquivalence:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        stream=point_streams(),
        routing=st.sampled_from(["round_robin", "hash", "random"]),
        interleave=st.booleans(),
    )
    def test_backends_agree_bitwise(self, stream, routing, interleave):
        points, cuts = stream
        batches = _batches(points, cuts)
        seed = 5
        reference = _run("serial", routing, seed, batches, interleave)
        for backend in _BACKENDS:
            if backend == "serial":
                continue
            other = _run(backend, routing, seed, batches, interleave)
            _assert_same(reference, other, backend)

    def test_backends_agree_on_a_long_run(self, stream_points):
        """One larger fixed case with interleaved queries, all backends."""
        batches = [stream_points[offset : offset + 333] for offset in range(0, 3000, 333)]
        reference = _run("serial", "round_robin", 1, batches, interleave_queries=True)
        for backend in _BACKENDS:
            if backend == "serial":
                continue
            _assert_same(
                reference, _run(backend, "round_robin", 1, batches, True), backend
            )


class TestHashRoutingBatchInvariance:
    @settings(max_examples=20, deadline=None)
    @given(stream=point_streams())
    def test_shard_contents_ignore_batch_boundaries(self, stream):
        """The same points split differently land identically on every shard."""
        points, cuts = stream
        one = _run("serial", "hash", 3, [points], interleave_queries=False)
        split = _run("serial", "hash", 3, _batches(points, cuts), interleave_queries=False)
        _assert_same(one, split, "serial/hash-split")
