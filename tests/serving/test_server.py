"""Fault injection against the asyncio front end.

Every design point of the server gets an adversarial test: malformed and
oversized requests, overload shedding (429), a reader that raises (500 but
the server survives), a client that stops reading (write timeout, abort,
others unaffected), and graceful drain (in-flight answered, newcomers
refused).  Misbehaving readers are injected through the ``reader_factory``
hook — the same pattern the parallel stress suite uses for failing shards.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.base import StreamingConfig
from repro.core.driver import CachedCoresetTreeClusterer
from repro.serving.client import ServingClient
from repro.serving.plane import ServingPlane
from repro.serving.server import ServerThread

from serving_helpers import make_stream

CONFIG = StreamingConfig(k=4, coreset_size=40, n_init=1, lloyd_iterations=4, seed=9)


class SlowReader:
    """Reader that dawdles before every sweep (holds a worker busy)."""

    def __init__(self, plane: ServingPlane, delay: float) -> None:
        self._reader = plane.reader(seed=123)
        self._delay = delay

    def query_multi_k(self, ks):
        time.sleep(self._delay)
        return self._reader.query_multi_k(ks)


class FailingReader:
    """Reader whose every sweep raises (the injected internal fault)."""

    def __init__(self, plane: ServingPlane) -> None:
        del plane

    def query_multi_k(self, ks):
        raise RuntimeError("injected reader failure")


@pytest.fixture
def served_plane():
    plane = ServingPlane(CachedCoresetTreeClusterer(CONFIG))
    plane.ingest(make_stream(num_points=1200, dimension=4, seed=3))
    yield plane
    plane.close()


def raw_request(port: int, payload: bytes, timeout: float = 10.0) -> dict | None:
    """Send raw bytes on a fresh connection; return the decoded reply line."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(payload)
        handle = sock.makefile("rb")
        line = handle.readline()
    return json.loads(line) if line else None


class TestProtocol:
    def test_ping_query_sweep_and_stats(self, served_plane):
        with ServerThread(served_plane) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                assert client.ping() == {"ok": True, "op": "ping"}

                response = client.query(k=3)
                assert response["ok"] and response["k"] == 3
                assert response["version"] >= 1
                assert np.asarray(response["centers"]).shape == (3, 4)

                sweep = client.query_multi_k([2, 3])
                assert sweep["ok"] and sorted(sweep["results"]) == ["2", "3"]
                versions = {r["version"] for r in sweep["results"].values()}
                assert len(versions) == 1

                lean = client.query(k=2, include_centers=False)
                assert lean["ok"] and "centers" not in lean

                stats = client.stats()
                assert stats["ok"] and stats["version"] >= 1
                assert stats["stats"]["served"] >= 3
                assert stats["stats"]["connections"] >= 1

    def test_query_without_k_uses_config_default(self, served_plane):
        with ServerThread(served_plane) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                response = client.query()
                assert response["ok"] and response["k"] == CONFIG.k


class TestMalformedRequests:
    def test_bad_payloads_get_400_and_connection_survives(self, served_plane):
        bad_payloads = [
            {"op": "bogus"},
            {"op": "query", "k": 0},
            {"op": "query", "k": True},
            {"op": "query", "k": "many"},
            {"op": "query_multi_k", "ks": []},
            {"op": "query_multi_k", "ks": [3, "x"]},
            {"op": "query_multi_k"},
        ]
        with ServerThread(served_plane) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                for payload in bad_payloads:
                    response = client.request(payload)
                    assert response["ok"] is False and response["code"] == 400
                # The same connection still serves real queries.
                assert client.ping()["ok"]
                assert client.query(k=2)["ok"]
            assert server.server.stats.bad_requests == len(bad_payloads)

    def test_non_json_and_non_object_lines(self, served_plane):
        with ServerThread(served_plane) as server:
            response = raw_request(server.port, b"{this is not json\n")
            assert response["code"] == 400 and "malformed" in response["error"]
            response = raw_request(server.port, b"[1, 2, 3]\n")
            assert response["code"] == 400 and "object" in response["error"]

    def test_oversized_line_rejected(self, served_plane):
        with ServerThread(served_plane) as server:
            blob = b"x" * (2 << 20)  # 2 MiB, over the 1 MiB line limit
            response = raw_request(server.port, blob + b"\n")
            assert response is not None and response["code"] == 400
            assert "exceeds" in response["error"]

    def test_empty_plane_yields_503(self):
        plane = ServingPlane(CachedCoresetTreeClusterer(CONFIG))
        try:
            with ServerThread(plane) as server:
                with ServingClient("127.0.0.1", server.port) as client:
                    response = client.query(k=3)
                    assert response["ok"] is False and response["code"] == 503
        finally:
            plane.close()


class TestOverload:
    def test_admission_queue_sheds_with_429(self, served_plane):
        responses: list[dict] = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def fire():
            barrier.wait()
            with ServingClient("127.0.0.1", port) as client:
                response = client.query(k=3)
            with lock:
                responses.append(response)

        with ServerThread(
            served_plane,
            num_workers=1,
            batch_limit=1,
            max_pending=1,
            reader_factory=lambda plane: SlowReader(plane, delay=0.4),
        ) as server:
            port = server.port
            threads = [threading.Thread(target=fire) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)

            assert len(responses) == 8
            shed = [r for r in responses if not r["ok"]]
            ok = [r for r in responses if r["ok"]]
            assert ok, "at least one admitted query must be served"
            assert shed, "with max_pending=1 and 8 concurrent clients, some must shed"
            assert all(r["code"] == 429 for r in shed)
            assert all("overloaded" in r["error"] for r in shed)
            assert server.server.stats.shed == len(shed)

    def test_batching_coalesces_queued_requests(self, served_plane):
        responses: list[dict] = []
        lock = threading.Lock()

        def fire(k: int):
            with ServingClient("127.0.0.1", port) as client:
                response = client.query(k=k)
            with lock:
                responses.append(response)

        with ServerThread(
            served_plane,
            num_workers=1,
            batch_limit=8,
            max_pending=64,
            reader_factory=lambda plane: SlowReader(plane, delay=0.5),
        ) as server:
            port = server.port
            # First query occupies the single worker for 0.5s...
            head = threading.Thread(target=fire, args=(2,))
            head.start()
            time.sleep(0.15)
            # ...so these queue up and are drained as ONE multi-k sweep.
            tail = [threading.Thread(target=fire, args=(k,)) for k in (2, 3, 4, 3)]
            for thread in tail:
                thread.start()
            for thread in [head, *tail]:
                thread.join(timeout=30.0)

            assert len(responses) == 5 and all(r["ok"] for r in responses)
            assert max(r["batched"] for r in responses) >= 2
            assert server.server.stats.batched >= 2


class TestInjectedFaults:
    def test_reader_exception_is_500_and_server_survives(self, served_plane):
        with ServerThread(
            served_plane, num_workers=1, reader_factory=FailingReader
        ) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                for _ in range(3):
                    response = client.query(k=3)
                    assert response["ok"] is False and response["code"] == 500
                    assert "internal error" in response["error"]
                    assert "RuntimeError" in response["error"]
                assert client.ping()["ok"]  # the connection and server live on
            assert server.server.stats.internal_errors == 3

    def test_slow_client_is_aborted_others_unaffected(self, served_plane):
        with ServerThread(
            served_plane,
            num_workers=2,
            write_timeout_s=0.4,
            sndbuf=2048,
        ) as server:
            hog = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            hog.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
            hog.connect(("127.0.0.1", server.port))
            try:
                # Many requests, never reading a byte back: the response
                # stream backs up until the write timeout fires.
                request = json.dumps({"op": "query", "k": 4}).encode() + b"\n"
                hog.sendall(request * 400)

                deadline = time.monotonic() + 15.0
                with ServingClient("127.0.0.1", server.port) as polite:
                    while time.monotonic() < deadline:
                        assert polite.query(k=3)["ok"]  # others keep being served
                        if server.server.stats.slow_client_disconnects:
                            break
                        time.sleep(0.05)
                assert server.server.stats.slow_client_disconnects == 1
            finally:
                hog.close()


class TestDrain:
    def test_drain_answers_inflight_then_refuses_new_connections(self, served_plane):
        outcome: dict = {}

        def slow_query():
            with ServingClient("127.0.0.1", port, timeout=30.0) as client:
                outcome["response"] = client.query(k=3)

        server = ServerThread(
            served_plane,
            num_workers=1,
            reader_factory=lambda plane: SlowReader(plane, delay=0.6),
        )
        port = server.port
        inflight = threading.Thread(target=slow_query)
        inflight.start()
        time.sleep(0.2)  # the query is admitted and solving
        server.stop(drain=True)
        inflight.join(timeout=30.0)

        assert outcome["response"]["ok"], "drained shutdown must answer in-flight work"
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=2.0)

    def test_stop_without_drain_and_double_stop(self, served_plane):
        server = ServerThread(served_plane)
        server.stop(drain=False)
        server.stop()  # idempotent


class TestCliServe:
    def test_cli_serve_runs_and_drains(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve",
                "--duration",
                "0.6",
                "--port",
                "0",
                "--num-points",
                "1500",
                "--k",
                "4",
                "--dataset",
                "covtype",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "serving" in output.lower()
