"""Shared fixtures for the serving-plane battery.

The plane tests run against every clusterer shape the plane supports: a
plain driver, a sharded engine on the serial backend, and a sharded engine
on the thread backend (real cross-thread worker traffic under the ingest
lock).  ``REPRO_SERVING_READERS`` scales the concurrent-reader tests — the
CI serving job runs the suite at two different values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import StreamingConfig

from serving_helpers import PLANE_KINDS, build_plane, make_stream


@pytest.fixture
def serving_config() -> StreamingConfig:
    return StreamingConfig(
        k=4, coreset_size=40, merge_degree=2, n_init=2, lloyd_iterations=5, seed=11
    )


@pytest.fixture
def stream_points() -> np.ndarray:
    return make_stream()


@pytest.fixture(params=PLANE_KINDS)
def plane_kind(request) -> str:
    return request.param


@pytest.fixture
def plane(serving_config, plane_kind):
    built = build_plane(serving_config, plane_kind)
    yield built
    built.close()
