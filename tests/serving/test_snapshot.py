"""Unit tests for RCU snapshot publication: immutability, retirement, hooks."""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.coreset.bucket import WeightedPointSet
from repro.serving.snapshot import SnapshotPublisher, freeze_pointset


def make_pointset(seed: int = 0, size: int = 16, dimension: int = 3) -> WeightedPointSet:
    rng = np.random.default_rng(seed)
    return WeightedPointSet(
        points=rng.normal(size=(size, dimension)),
        weights=rng.uniform(0.5, 2.0, size=size),
    )


class TestFreezePointset:
    def test_views_are_read_only(self):
        data = make_pointset()
        frozen = freeze_pointset(data)
        with pytest.raises(ValueError):
            frozen.points[0, 0] = 1.0
        with pytest.raises(ValueError):
            frozen.weights[0] = 1.0

    def test_zero_copy_and_writer_unaffected(self):
        data = make_pointset()
        frozen = freeze_pointset(data)
        assert np.shares_memory(frozen.points, data.points)
        assert np.shares_memory(frozen.weights, data.weights)
        # The writer's own arrays stay writeable: freezing is view-only.
        data.points[0, 0] = 42.0
        assert frozen.points[0, 0] == 42.0

    def test_values_preserved(self):
        data = make_pointset(seed=3)
        frozen = freeze_pointset(data)
        assert np.array_equal(frozen.points, data.points)
        assert np.array_equal(frozen.weights, data.weights)
        assert frozen.size == data.size


class TestSnapshotPublisher:
    def test_versions_monotonic_and_latest_tracks(self):
        publisher = SnapshotPublisher()
        assert publisher.latest is None
        assert publisher.version == 0
        seen = []
        for step in range(1, 4):
            snapshot = publisher.publish(
                make_pointset(seed=step), points_seen=100 * step, dimension=3
            )
            seen.append(snapshot.version)
            assert publisher.latest is snapshot
            assert snapshot.points_seen == 100 * step
        assert seen == [1, 2, 3]
        assert publisher.version == 3

    def test_published_snapshot_is_frozen(self):
        publisher = SnapshotPublisher()
        snapshot = publisher.publish(make_pointset(), points_seen=5, dimension=3)
        with pytest.raises(ValueError):
            snapshot.coreset.points[:] = 0.0

    def test_subscribe_sees_every_publication(self):
        publisher = SnapshotPublisher()
        retained = {}
        publisher.subscribe(lambda snapshot: retained.__setitem__(snapshot.version, snapshot))
        for step in range(1, 5):
            publisher.publish(make_pointset(seed=step), points_seen=step, dimension=3)
        assert sorted(retained) == [1, 2, 3, 4]
        assert retained[4] is publisher.latest

    def test_live_retired_counts_only_reachable_snapshots(self):
        publisher = SnapshotPublisher()
        first = publisher.publish(make_pointset(seed=1), points_seen=1, dimension=3)
        publisher.publish(make_pointset(seed=2), points_seen=2, dimension=3)
        # ``first`` is retired but still referenced here.
        assert publisher.live_retired() == 1
        del first
        gc.collect()
        assert publisher.live_retired() == 0

    def test_latest_never_counts_as_retired(self):
        publisher = SnapshotPublisher()
        publisher.publish(make_pointset(), points_seen=1, dimension=3)
        gc.collect()
        assert publisher.latest is not None
        assert publisher.live_retired() == 0

    def test_retired_bookkeeping_stays_bounded(self):
        publisher = SnapshotPublisher()
        for step in range(300):
            publisher.publish(make_pointset(size=4), points_seen=step + 1, dimension=3)
        gc.collect()
        assert publisher.live_retired() == 0
        # The weakref list is trimmed as dead references accumulate; it must
        # not grow linearly with publication count.
        assert len(publisher._retired) < 299
