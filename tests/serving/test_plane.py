"""Serving-plane behaviour: publication, readers, staleness, restore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.plane import ServingPlane, SnapshotUnavailable

from serving_helpers import build_plane


class TestConstruction:
    def test_requires_coreset_backed_clusterer(self):
        with pytest.raises(TypeError, match="CoresetServingMixin"):
            ServingPlane(object())

    def test_serving_plane_factory_on_clusterer(self, serving_config, stream_points):
        from repro.core.driver import CachedCoresetTreeClusterer

        clusterer = CachedCoresetTreeClusterer(serving_config)
        plane = clusterer.serving_plane()
        assert plane.clusterer is clusterer
        assert plane.config is serving_config
        plane.close()

    def test_wrapping_warm_clusterer_publishes_immediately(
        self, serving_config, stream_points
    ):
        from repro.core.driver import CachedCoresetTreeClusterer

        clusterer = CachedCoresetTreeClusterer(serving_config)
        clusterer.insert_batch(stream_points[:500])
        with ServingPlane(clusterer) as plane:
            assert plane.version == 1
            assert plane.publisher.latest.points_seen == 500


class TestPublication:
    def test_no_snapshot_before_first_point(self, plane):
        assert plane.version == 0
        assert plane.publish() is None
        with pytest.raises(SnapshotUnavailable):
            plane.reader(seed=0).query()

    def test_ingest_publishes_a_version_per_batch(self, plane, stream_points):
        for step in range(3):
            snapshot = plane.ingest(stream_points[step * 300 : (step + 1) * 300])
            assert snapshot is not None
            assert snapshot.version == step + 1
            assert snapshot.points_seen == (step + 1) * 300
        assert plane.version == 3
        assert plane.points_ingested == 900
        assert plane.staleness() == (0, 0.0)

    def test_snapshot_coreset_is_frozen_and_consistent(self, plane, stream_points):
        snapshot = plane.ingest(stream_points[:600])
        with pytest.raises(ValueError):
            snapshot.coreset.points[:] = 0.0
        assert snapshot.dimension == stream_points.shape[1]
        assert snapshot.size == snapshot.coreset.size > 0
        # The published coreset is what the writer would assemble right now.
        coreset, _ = plane.clusterer.collect_serving_snapshot()
        assert np.array_equal(snapshot.coreset.points, coreset.points)
        assert np.array_equal(snapshot.coreset.weights, coreset.weights)

    def test_republish_without_new_points_keeps_version(self, plane, stream_points):
        first = plane.ingest(stream_points[:400])
        again = plane.publish()
        assert again is first
        assert plane.version == 1

    def test_manual_publication_cadence(self, serving_config, plane_kind, stream_points):
        plane = build_plane(serving_config, plane_kind, auto_publish=False)
        try:
            assert plane.ingest(stream_points[:300]) is None
            assert plane.version == 0
            snapshot = plane.publish()
            assert snapshot.version == 1
            # More ingest without publication: snapshot goes stale.
            plane.ingest(stream_points[300:600])
            behind, _ = plane.staleness()
            assert behind == 300
            result = plane.reader(seed=1).query()
            assert result.version == 1
            assert result.snapshot_points == 300
            assert result.staleness_points == 300
            assert result.staleness_seconds > 0.0
        finally:
            plane.close()


class TestReaders:
    def test_result_matches_direct_solve_on_snapshot(self, plane, stream_points):
        snapshot = plane.ingest(stream_points[:800])
        result = plane.reader(seed=42).query(3)
        engine = plane.clusterer.query_engine.fork()
        expected = engine.solve(snapshot.coreset, 3, np.random.default_rng(42))
        assert np.array_equal(result.centers, expected.centers)
        assert result.cost == expected.cost
        assert result.k == 3
        assert result.version == snapshot.version
        assert result.coreset_points == snapshot.size
        assert result.solve_seconds >= 0.0

    def test_same_seed_readers_are_identical(self, plane, stream_points):
        plane.ingest(stream_points[:800])
        first, second = plane.reader(seed=5), plane.reader(seed=5)
        for k in (3, 4, 3, 5):
            a, b = first.query(k), second.query(k)
            assert np.array_equal(a.centers, b.centers)
            assert a.cost == b.cost
        assert first.queries_served == second.queries_served == 4

    def test_default_reader_seeds_are_deterministic(
        self, serving_config, plane_kind, stream_points
    ):
        results = []
        for _ in range(2):
            plane = build_plane(serving_config, plane_kind)
            try:
                plane.ingest(stream_points[:600])
                reader = plane.reader()  # first default-seeded reader
                results.append(reader.query(4).centers)
            finally:
                plane.close()
        assert np.array_equal(results[0], results[1])

    def test_readers_do_not_perturb_each_other(
        self, serving_config, plane_kind, stream_points
    ):
        # Reader A on a quiet plane vs. reader A interleaved with a noisy
        # reader B on an identical plane: A's answers must be identical.
        def run(noisy: bool):
            plane = build_plane(serving_config, plane_kind)
            try:
                plane.ingest(stream_points[:700])
                target = plane.reader(seed=8)
                other = plane.reader(seed=9)
                outputs = []
                for k in (3, 4, 5):
                    if noisy:
                        other.query(k + 1)
                        other.query_multi_k([2, 3])
                    outputs.append(target.query(k).centers)
                return outputs
            finally:
                plane.close()

        quiet, noisy = run(False), run(True)
        for a, b in zip(quiet, noisy):
            assert np.array_equal(a, b)

    def test_multi_k_serves_one_consistent_snapshot(self, plane, stream_points):
        plane.ingest(stream_points[:500])
        reader = plane.reader(seed=2)
        results = reader.query_multi_k([2, 3, 4])
        assert sorted(results) == [2, 3, 4]
        versions = {result.version for result in results.values()}
        positions = {result.snapshot_points for result in results.values()}
        assert len(versions) == 1 and len(positions) == 1
        for k, result in results.items():
            assert result.centers.shape == (k, stream_points.shape[1])
        assert reader.queries_served == 3
        assert reader.last_version == plane.version

    def test_reader_sees_newer_snapshot_after_ingest(self, plane, stream_points):
        plane.ingest(stream_points[:300])
        reader = plane.reader(seed=3)
        first = reader.query(3)
        plane.ingest(stream_points[300:700])
        second = reader.query(3)
        assert second.version > first.version
        assert second.snapshot_points > first.snapshot_points


class TestCheckpointRestore:
    def test_restore_republishes_the_checkpointed_stream(
        self, serving_config, plane_kind, stream_points, tmp_path
    ):
        plane = build_plane(serving_config, plane_kind)
        original_points = None
        try:
            plane.ingest(stream_points[:900])
            original = plane.publisher.latest
            original_points = (
                np.array(original.coreset.points), np.array(original.coreset.weights)
            )
            path = plane.snapshot(tmp_path / "ckpt")
        finally:
            plane.close()

        overrides = {}
        if plane_kind.startswith("sharded-"):
            overrides["backend"] = plane_kind.split("-", 1)[1]
        restored = ServingPlane.restore(path, **overrides)
        try:
            # Versions are a serving-session property: restored planes start at 1.
            assert restored.version == 1
            snapshot = restored.publisher.latest
            assert snapshot.points_seen == 900
            assert np.array_equal(snapshot.coreset.points, original_points[0])
            assert np.array_equal(snapshot.coreset.weights, original_points[1])
            result = restored.reader(seed=4).query(3)
            assert result.version == 1
            assert result.staleness_points == 0
        finally:
            restored.close()

    def test_restore_refuses_non_serving_checkpoints(self, tmp_path):
        from repro.baselines import SequentialKMeans
        from repro.checkpoint import save_checkpoint

        baseline = SequentialKMeans(3)
        baseline.insert_batch(np.random.default_rng(0).normal(size=(50, 3)))
        path = save_checkpoint(baseline, tmp_path / "baseline")
        with pytest.raises(TypeError, match="cannot serve"):
            ServingPlane.restore(path)
