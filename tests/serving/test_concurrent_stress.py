"""Concurrent-reader stress: monotonic versions, replayable answers, no leaks.

Real threads this time: one writer ingesting and publishing continuously
while at least eight readers serve closed-loop.  The linearizability check
is the same replay as the hypothesis battery — every answer a reader
produced under contention must be bitwise reproducible single-threaded from
the retained snapshot it claims it was computed from.

Leak accounting: a retired snapshot's only legitimate owners are readers
mid-query.  Once readers finish and drop their references, ``gc.collect()``
must bring ``SnapshotPublisher.live_retired()`` to zero.  The long version
runs under ``REPRO_SOAK=1``.
"""

from __future__ import annotations

import gc
import os
import threading
import time

import numpy as np
import pytest

from repro.core.base import StreamingConfig

from serving_helpers import STRESS_READERS, build_plane, make_stream

STRESS_CONFIG = StreamingConfig(
    k=3, coreset_size=30, merge_degree=2, n_init=1, lloyd_iterations=3, seed=17
)

POINTS = make_stream(num_points=6000, dimension=4, seed=23)


def reader_worker(plane, index, stop_event, history, errors):
    """Closed-loop reader: deterministic op sequence, recorded for replay."""
    try:
        reader = plane.reader(seed=500 + index)
        step = 0
        while not stop_event.is_set() or step == 0:
            if plane.version == 0:
                time.sleep(0.001)
                continue
            if step % 4 == 3:
                ks = (2, 3)
                results = reader.query_multi_k(ks)
                history.append(
                    (ks, True, results[ks[0]].version, [results[k] for k in ks])
                )
            else:
                k = (2, 3, 4)[step % 3]
                result = reader.query(k)
                history.append(((k,), False, result.version, [result]))
            step += 1
    except Exception as exc:  # noqa: BLE001 - reported to the main thread
        errors.append((index, exc))


def run_stress(kind: str, batches: int, retain: bool):
    """Drive ``batches`` publishes under STRESS_READERS concurrent readers."""
    plane = build_plane(STRESS_CONFIG, kind)
    retained: dict = {}
    histories = [[] for _ in range(STRESS_READERS)]
    errors: list = []
    try:
        if retain:
            plane.publisher.subscribe(
                lambda snapshot: retained.__setitem__(snapshot.version, snapshot)
            )
        engine_factory = plane.clusterer.query_engine.fork
        stop_event = threading.Event()
        threads = [
            threading.Thread(
                target=reader_worker,
                args=(plane, index, stop_event, histories[index], errors),
                daemon=True,
            )
            for index in range(STRESS_READERS)
        ]
        for thread in threads:
            thread.start()
        cursor = 0
        for _ in range(batches):
            plane.ingest(POINTS[cursor : cursor + 120])
            cursor = (cursor + 120) % (POINTS.shape[0] - 200)
        stop_event.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
    finally:
        plane.close()
    assert not errors, f"reader threads raised: {errors}"
    return plane.publisher, retained, histories, engine_factory


def replay(retained, histories, engine_factory):
    for index, history in enumerate(histories):
        versions = [entry[2] for entry in history]
        assert versions == sorted(versions), f"reader {index} versions not monotonic"
        assert set(versions) <= set(retained)
        engine = engine_factory()
        rng = np.random.default_rng(500 + index)
        for ks, multi, version, served in history:
            coreset = retained[version].coreset
            if multi:
                solutions = engine.solve_multi(coreset, ks, rng)
                replayed = [solutions[k] for k in ks]
            else:
                replayed = [engine.solve(coreset, ks[0], rng)]
            for result, solution in zip(served, replayed):
                assert np.array_equal(result.centers, solution.centers)
                assert result.cost == solution.cost


@pytest.mark.parametrize("kind", ["driver", "sharded-thread"])
def test_concurrent_readers_serve_replayable_snapshots(kind):
    publisher, retained, histories, engine_factory = run_stress(
        kind, batches=25, retain=True
    )
    assert publisher.version == 25
    served = sum(len(history) for history in histories)
    assert served > 0
    replay(retained, histories, engine_factory)


def test_no_retired_snapshot_survives_the_readers():
    publisher, _, histories, _ = run_stress("driver", batches=20, retain=False)
    del histories  # served results do not hold snapshots, but be thorough
    gc.collect()
    assert publisher.live_retired() == 0
    assert publisher.latest is not None  # only the live snapshot remains


@pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="soak run: set REPRO_SOAK=1 (several minutes of sustained load)",
)
def test_soak_sustained_load_leaks_nothing():
    """Minutes-long churn: versions keep flowing, retired snapshots die."""
    seconds = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))
    plane = build_plane(STRESS_CONFIG, "driver")
    errors: list = []
    histories = [[] for _ in range(STRESS_READERS)]
    try:
        stop_event = threading.Event()
        threads = [
            threading.Thread(
                target=reader_worker,
                args=(plane, index, stop_event, histories[index], errors),
                daemon=True,
            )
            for index in range(STRESS_READERS)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + seconds
        cursor = 0
        checkpoints = 0
        while time.monotonic() < deadline:
            plane.ingest(POINTS[cursor : cursor + 120])
            cursor = (cursor + 120) % (POINTS.shape[0] - 200)
            checkpoints += 1
            if checkpoints % 50 == 0:
                # Mid-soak accounting: anything beyond what the readers are
                # holding right now must already be collectable.
                gc.collect()
                assert plane.publisher.live_retired() <= STRESS_READERS
        stop_event.set()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)
    finally:
        plane.close()
    assert not errors, f"reader threads raised: {errors}"
    served = sum(len(history) for history in histories)
    assert served > STRESS_READERS  # every reader made progress
    for history in histories:
        versions = [entry[2] for entry in history]
        assert versions == sorted(versions)
    del histories
    gc.collect()
    assert plane.publisher.live_retired() == 0
