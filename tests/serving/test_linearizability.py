"""Linearizability of snapshot serving, checked by deterministic replay.

Property: every served result is *exactly* the result of a single-threaded
query against some published snapshot version, and each reader observes
monotonically non-decreasing versions.  The battery drives randomized
interleavings of ingest/publish/query operations (hypothesis generates the
schedules), retains every published snapshot via the publisher's subscribe
hook, and then replays each reader's recorded history on a fresh,
identically-seeded engine against the retained snapshots — demanding
bitwise-equal centers and costs.

Runs against the plain driver and against the sharded engine on both the
serial and the thread backend (100 examples each).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.base import StreamingConfig

from serving_helpers import PLANE_KINDS, build_plane, make_stream

CONFIG = StreamingConfig(
    k=3, coreset_size=24, merge_degree=2, n_init=1, lloyd_iterations=4, seed=5
)

#: Deterministic point pool every interleaving draws its batches from.
POOL = make_stream(num_points=1600, dimension=3, seed=13)

NUM_READERS = 2

#: One schedule step: ingest a batch, a single-k query, or a k-sweep.
OPS = st.one_of(
    st.tuples(st.just("ingest"), st.integers(min_value=1, max_value=3)),
    st.tuples(
        st.just("query"),
        st.integers(min_value=0, max_value=NUM_READERS - 1),
        st.integers(min_value=2, max_value=4),
    ),
    st.tuples(st.just("multi"), st.integers(min_value=0, max_value=NUM_READERS - 1)),
)

SCHEDULES = st.lists(OPS, min_size=3, max_size=10)


def run_interleaving(kind: str, schedule: list[tuple]):
    """Execute one schedule, retaining every snapshot and every served answer."""
    plane = build_plane(CONFIG, kind)
    retained: dict = {}
    histories: list[list] = [[] for _ in range(NUM_READERS)]
    try:
        plane.publisher.subscribe(
            lambda snapshot: retained.__setitem__(snapshot.version, snapshot)
        )
        readers = [plane.reader(seed=100 + index) for index in range(NUM_READERS)]
        engine_factory = plane.clusterer.query_engine.fork
        cursor = 0
        for op in schedule:
            if op[0] == "ingest":
                size = 37 * op[1]
                plane.ingest(POOL[cursor : cursor + size])
                cursor = (cursor + size) % (POOL.shape[0] - 200)
            elif plane.version == 0:
                continue  # nothing published yet: queries would 503
            elif op[0] == "query":
                _, index, k = op
                result = readers[index].query(k)
                histories[index].append(((k,), False, result.version, [result]))
            else:
                _, index = op
                ks = (2, 3)
                results = readers[index].query_multi_k(ks)
                histories[index].append(
                    (ks, True, results[ks[0]].version, [results[k] for k in ks])
                )
    finally:
        plane.close()
    return retained, histories, engine_factory


def replay_and_check(retained, histories, engine_factory):
    """Replay each reader's history single-threaded; demand bitwise equality."""
    for index, history in enumerate(histories):
        versions = [entry[2] for entry in history]
        assert versions == sorted(versions), f"reader {index} versions not monotonic"
        assert set(versions) <= set(retained), (
            f"reader {index} served an unpublished version"
        )
        engine = engine_factory()
        rng = np.random.default_rng(100 + index)
        for ks, multi, version, served in history:
            coreset = retained[version].coreset
            if multi:
                solutions = engine.solve_multi(coreset, ks, rng)
                replayed = [solutions[k] for k in ks]
            else:
                replayed = [engine.solve(coreset, ks[0], rng)]
            for result, solution in zip(served, replayed):
                assert np.array_equal(result.centers, solution.centers)
                assert result.cost == solution.cost
                assert result.warm_start == solution.warm_start


@pytest.mark.parametrize("kind", PLANE_KINDS)
class TestLinearizability:
    @settings(
        max_examples=100,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(schedule=SCHEDULES)
    def test_served_results_replay_from_published_snapshots(self, kind, schedule):
        retained, histories, engine_factory = run_interleaving(kind, schedule)
        replay_and_check(retained, histories, engine_factory)
