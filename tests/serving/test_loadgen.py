"""Load-generator correctness: arrival process, reports, smoke runs, CLI."""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.base import StreamingConfig
from repro.core.driver import CachedCoresetTreeClusterer
from repro.serving.loadgen import (
    IngestLoop,
    LoadgenConfig,
    _arrival_delay,
    _build_report,
    _Samples,
    run_plane_loadgen,
    run_tcp_loadgen,
)
from repro.serving.plane import ServingPlane
from repro.serving.server import ServerThread

from serving_helpers import make_stream

CONFIG = StreamingConfig(k=4, coreset_size=40, n_init=1, lloyd_iterations=4, seed=21)


@pytest.fixture
def warm_plane():
    plane = ServingPlane(CachedCoresetTreeClusterer(CONFIG))
    plane.ingest(make_stream(num_points=1000, dimension=4, seed=5))
    yield plane
    plane.close()


class TestArrivalProcess:
    def test_closed_loop_never_waits(self):
        cfg = LoadgenConfig(rate=None)
        rng = np.random.default_rng(0)
        assert _arrival_delay(cfg, None, elapsed=0.0, rng=rng) == 0.0

    def test_steady_rate_matches_mean(self):
        cfg = LoadgenConfig(rate=100.0)
        rng = np.random.default_rng(1)
        delays = [_arrival_delay(cfg, 100.0, 0.0, rng) for _ in range(4000)]
        assert all(delay >= 0.0 for delay in delays)
        assert np.mean(delays) == pytest.approx(1.0 / 100.0, rel=0.1)

    def test_burst_schedule_alternates_fast_and_slow_phases(self):
        cfg = LoadgenConfig(rate=100.0, burst=True, burst_factor=4.0, burst_period=1.0)
        rng = np.random.default_rng(2)
        burst = np.mean([_arrival_delay(cfg, 100.0, 0.5, rng) for _ in range(2000)])
        lull = np.mean([_arrival_delay(cfg, 100.0, 1.5, rng) for _ in range(2000)])
        # Burst phase: 4x the rate (shorter gaps); lull phase: rate/4.
        assert burst == pytest.approx(1.0 / 400.0, rel=0.15)
        assert lull == pytest.approx(4.0 / 100.0, rel=0.15)
        assert burst < lull


class TestReport:
    def test_build_report_aggregates_and_percentiles(self):
        fast = _Samples(latencies=[0.001] * 99, staleness_points=[10] * 99,
                        staleness_ms=[1.0] * 99, issued=100, served=99, shed=1,
                        retries=3)
        slow = _Samples(latencies=[0.1], staleness_points=[500],
                        staleness_ms=[40.0], issued=2, served=1, errors=1)
        report = _build_report([fast, slow], duration=2.0)
        assert report.issued == 102 and report.served == 100
        assert report.shed == 1 and report.errors == 1
        assert report.retries == 3
        assert report.qps == pytest.approx(50.0)
        assert report.p50_us == pytest.approx(1000.0)
        assert report.p99_us > report.p50_us
        assert report.p999_us >= report.p99_us
        assert report.staleness_points_p99 >= report.staleness_points_mean
        payload = report.as_dict()
        for key in ("p50_us", "p99_us", "p999_us", "qps", "retries",
                    "staleness_points_p99", "staleness_ms_p99"):
            assert key in payload
        assert "latencies_us" not in payload  # raw array stays out of JSON
        text = report.summary()
        assert "p99" in text and "staleness" in text
        assert "retries=3" in text

    def test_empty_report_is_all_zero(self):
        report = _build_report([_Samples()], duration=1.0)
        assert report.served == 0 and report.p99_us == 0.0 and report.qps == 0.0


class TestIngestLoop:
    def test_pause_and_resume_gate_ingestion(self, warm_plane):
        loop = IngestLoop(warm_plane, make_stream(2000, 4, seed=6), batch_size=200)
        loop.start()
        try:
            deadline = time.monotonic() + 10.0
            while loop.batches_ingested < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert loop.batches_ingested >= 2

            loop.pause()
            settled = loop.batches_ingested
            time.sleep(0.25)
            # At most one already-started batch can land after pause().
            assert loop.batches_ingested <= settled + 1

            loop.resume()
            resumed_at = loop.batches_ingested
            deadline = time.monotonic() + 10.0
            while loop.batches_ingested == resumed_at and time.monotonic() < deadline:
                time.sleep(0.01)
            assert loop.batches_ingested > resumed_at
        finally:
            loop.stop()
        assert not loop.is_alive()


class TestLoadRuns:
    def test_plane_mode_smoke(self, warm_plane):
        cfg = LoadgenConfig(seconds=0.8, rate=None, ks=(2, 3), seed=1)
        report = run_plane_loadgen(warm_plane, cfg, readers=2)
        assert report.served > 0 and report.errors == 0
        assert report.issued >= report.served
        assert report.p99_us > 0.0
        assert report.duration_seconds == pytest.approx(0.8, abs=0.5)

    def test_tcp_mode_smoke(self, warm_plane):
        cfg = LoadgenConfig(seconds=0.8, rate=None, ks=(2, 3), seed=2)
        with ServerThread(warm_plane, num_workers=2) as server:
            report = run_tcp_loadgen("127.0.0.1", server.port, cfg, clients=5)
        assert report.served > 0 and report.errors == 0
        assert report.p99_us > 0.0


class _SheddingServer:
    """Newline-JSON fake that sheds (429) every odd-numbered request.

    With a single closed-loop client the strict alternation means each
    query needs exactly one retry to land, which pins the retry counters.
    """

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._halt = threading.Event()
        self._lock = threading.Lock()
        self.requests = 0
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while not self._halt.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,), daemon=True).start()

    def _serve(self, conn):
        file = conn.makefile("rwb")
        try:
            while not self._halt.is_set():
                if not file.readline():
                    return
                with self._lock:
                    self.requests += 1
                    shed = self.requests % 2 == 1
                if shed:
                    response = {"ok": False, "code": 429, "error": "overloaded"}
                else:
                    response = {"ok": True, "op": "query", "centers": [],
                                "staleness_points": 0, "staleness_seconds": 0.0}
                file.write(json.dumps(response).encode() + b"\n")
                file.flush()
        except OSError:
            pass
        finally:
            file.close()
            conn.close()

    def close(self):
        self._halt.set()
        self._listener.close()
        self._thread.join(timeout=2.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TestTcpRetry:
    def test_sheds_are_retried_and_counted(self):
        cfg = LoadgenConfig(seconds=0.5, rate=None, ks=(3,), seed=4,
                            max_retries=2, retry_backoff_s=0.001)
        with _SheddingServer() as server:
            report = run_tcp_loadgen("127.0.0.1", server.port, cfg, clients=1)
        assert report.served > 0 and report.errors == 0
        # Every served query burned exactly one retry on the alternating
        # shed; at most the final in-flight query may have run out of clock
        # mid-retry and been recorded as shed instead.
        assert report.retries >= report.served
        assert report.shed <= 1
        assert report.as_dict()["retries"] == report.retries

    def test_retries_default_off(self):
        cfg = LoadgenConfig(seconds=0.3, rate=None, ks=(3,), seed=4)
        with _SheddingServer() as server:
            report = run_tcp_loadgen("127.0.0.1", server.port, cfg, clients=1)
        assert report.retries == 0
        assert report.shed > 0 and report.served > 0 and report.errors == 0


def _load_loadgen_tool():
    """Import ``tools/loadgen.py`` as a module (it is a script, not a package)."""
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "tools" / "loadgen.py"
    spec = importlib.util.spec_from_file_location("loadgen_tool", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLoadgenCli:
    def test_plane_mode_cli_writes_json_report(self, tmp_path, capsys):
        loadgen_tool = _load_loadgen_tool()

        out = tmp_path / "report.json"
        code = loadgen_tool.main(
            [
                "--mode", "plane",
                "--seconds", "0.6",
                "--readers", "2",
                "--rate", "0",
                "--num-points", "1500",
                "--k", "4",
                "--ks", "2", "3",
                "--json", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["served"] > 0
        assert report["p99_us"] > 0.0
        stdout = capsys.readouterr().out
        assert "latency" in stdout and "staleness" in stdout
