"""Shared builders for the serving battery (imported by tests and conftest).

Kept in a uniquely-named module (not ``conftest``) so both hypothesis test
bodies and fixtures can import the same plane builders without relying on
pytest's conftest import machinery.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.base import StreamingConfig
from repro.core.driver import CachedCoresetTreeClusterer
from repro.serving.plane import ServingPlane

#: Reader-thread count knob for the concurrency tests (CI runs 2 values).
READER_COUNT = max(1, int(os.environ.get("REPRO_SERVING_READERS", "4")))

#: The stress/soak tests always use at least 8 readers (the ISSUE floor).
STRESS_READERS = max(8, READER_COUNT)

PLANE_KINDS = ("driver", "sharded-serial", "sharded-thread")


def build_clusterer(config: StreamingConfig, kind: str):
    """One coreset-backed clusterer of the requested shape."""
    if kind == "driver":
        return CachedCoresetTreeClusterer(config)
    backend = kind.split("-", 1)[1]
    return CachedCoresetTreeClusterer.sharded(config, num_shards=2, backend=backend)


def build_plane(config: StreamingConfig, kind: str, **kwargs) -> ServingPlane:
    """A serving plane over a fresh clusterer of the requested shape."""
    return ServingPlane(build_clusterer(config, kind), **kwargs)


def make_stream(num_points: int = 4000, dimension: int = 5, seed: int = 7) -> np.ndarray:
    """A well-separated 4-blob stream (deterministic)."""
    generator = np.random.default_rng(seed)
    centers = generator.normal(size=(4, dimension)) * 8.0
    labels = generator.integers(0, 4, size=num_points)
    noise = generator.normal(scale=0.4, size=(num_points, dimension))
    return centers[labels] + noise
