"""The serving SLO: reader p99 under live ingest within 2x of ingest-paused.

This is the acceptance gate of the concurrent plane: publication must not
stall readers.  The measurement always runs and always prints both p99s (the
bench gate records the same numbers in BENCH_pr7.json); the comparison
itself is asserted only where wall-clock comparisons are meaningful
(``timing_assertions_enabled()`` — on a contended single core the two
measurements share one CPU with the writer, so the ratio measures the
scheduler, not snapshot publication).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.base import StreamingConfig
from repro.core.driver import CachedCoresetTreeClusterer
from repro.metrics.timing import timing_assertions_enabled
from repro.serving.loadgen import IngestLoop
from repro.serving.plane import ServingPlane

from serving_helpers import make_stream

CONFIG = StreamingConfig(k=4, coreset_size=40, n_init=1, lloyd_iterations=4, seed=31)

WARMUP_QUERIES = 25
MEASURE_QUERIES = 150


def measure_p99_us(reader, rng, queries: int) -> tuple[float, float]:
    """(p99 latency us, mean staleness points) over ``queries`` solves."""
    latencies = np.empty(queries)
    staleness = np.empty(queries)
    for index in range(queries):
        k = int(rng.choice((2, 3, 4)))
        start = time.perf_counter()
        result = reader.query(k)
        latencies[index] = time.perf_counter() - start
        staleness[index] = result.staleness_points
    return float(np.percentile(latencies, 99) * 1e6), float(staleness.mean())


def test_reader_p99_within_2x_of_paused_ingest(capsys):
    plane = ServingPlane(CachedCoresetTreeClusterer(CONFIG))
    points = make_stream(num_points=8000, dimension=4, seed=41)
    try:
        plane.ingest(points[:500])
        ingest = IngestLoop(plane, points, batch_size=250)
        ingest.start()
        try:
            reader = plane.reader(seed=77)
            rng = np.random.default_rng(7)
            measure_p99_us(reader, rng, WARMUP_QUERIES)  # warm caches and engine

            ingest.pause()
            time.sleep(0.05)  # let any in-flight batch settle
            paused_p99, _ = measure_p99_us(reader, rng, MEASURE_QUERIES)

            ingest.resume()
            time.sleep(0.05)  # make sure publication churn is live again
            live_p99, live_staleness = measure_p99_us(reader, rng, MEASURE_QUERIES)
        finally:
            ingest.stop()
    finally:
        plane.close()

    # Always record the measurement, whether or not the gate is armed.
    with capsys.disabled():
        print(
            f"\n[serving SLO] p99 paused={paused_p99:.0f}us live={live_p99:.0f}us "
            f"ratio={live_p99 / max(paused_p99, 1e-9):.2f} "
            f"mean staleness={live_staleness:.0f}pts "
            f"(asserted={timing_assertions_enabled()})"
        )

    assert paused_p99 > 0.0 and live_p99 > 0.0
    assert live_staleness >= 0.0
    if not timing_assertions_enabled():
        return
    assert live_p99 <= 2.0 * paused_p99, (
        f"reader p99 under live ingest ({live_p99:.0f}us) exceeds 2x the "
        f"ingest-paused p99 ({paused_p99:.0f}us)"
    )
