"""Property: crash anywhere, recover, and the state is bit-identical.

Hypothesis drives the crash batch, the fault flavour (torn append vs crash
after the durable append), the torn-byte count, and the seed — across
ct/cc/rcc, float32/float64, and (for the sharded engine) every executor
backend ``REPRO_TEST_BACKENDS`` enables.  The reference is always an
uninterrupted :class:`~repro.serving.plane.ServingPlane` run over the same
batches; equality is the packed state tree, array for array, bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import pack_state
from repro.checkpoint.store import CheckpointStore
from repro.resilience import (
    ChaosController,
    ChaosSchedule,
    Fault,
    HealthState,
    IngestSupervisor,
    RestartPolicy,
)
from repro.serving.plane import ServingPlane

from _resilience_utils import (
    assert_states_equal,
    capture_state,
    make_batches,
    make_factory,
    reference_state,
)

NUM_BATCHES = 10

_SETTINGS = dict(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _run_supervised(tmp_path, factory, batches, schedule, restore_overrides=None):
    """Drive ``batches`` under ``schedule``; returns the surviving plane."""
    plane = ServingPlane(factory())
    chaos = ChaosController(schedule=schedule)
    supervisor = IngestSupervisor(
        plane,
        CheckpointStore(tmp_path / "ckpts", keep_last=3),
        tmp_path / "wal",
        clusterer_factory=factory,
        checkpoint_every_batches=3,
        fsync_every=0,
        policy=RestartPolicy(
            seed=1, max_restarts=50, backoff_base_s=0.0, backoff_cap_s=0.0
        ),
        wal_write_hook=chaos.wal_write_hook,
        restore_overrides=restore_overrides,
    )
    chaos.drive(supervisor, batches)
    assert supervisor.health() is HealthState.LIVE
    supervisor.close(final_checkpoint=False)
    return plane


@pytest.mark.parametrize("algorithm", ["ct", "cc", "rcc"])
@settings(**_SETTINGS)
@given(
    crash_batch=st.integers(min_value=1, max_value=NUM_BATCHES - 1),
    durable_append=st.booleans(),
    torn_keep=st.integers(min_value=0, max_value=180),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_crash_at_any_batch_recovers_bit_identically(
    algorithm, crash_batch, durable_append, torn_keep, seed, tmp_path_factory
):
    """ct/cc/rcc: a crash at any batch — torn or durably appended — is invisible."""
    tmp_path = tmp_path_factory.mktemp("crash")
    factory = make_factory(algorithm, seed=7)
    batches = make_batches(NUM_BATCHES, batch_size=50, seed=seed % 1000)
    expected = reference_state(factory, batches)
    fault = (
        Fault("crash_before_insert", at_batch=crash_batch)
        if durable_append
        else Fault("torn_wal", at_batch=crash_batch, detail=torn_keep)
    )
    plane = _run_supervised(tmp_path, factory, batches, ChaosSchedule.of(fault))
    try:
        assert_states_equal(capture_state(plane), expected)
    finally:
        plane.close()


@pytest.mark.parametrize("dtype", ["float32", "float64"])
@settings(**_SETTINGS)
@given(
    crash_batch=st.integers(min_value=1, max_value=NUM_BATCHES - 1),
    torn_keep=st.integers(min_value=0, max_value=180),
)
def test_torn_final_record_recovers_across_dtypes(
    dtype, crash_batch, torn_keep, tmp_path_factory
):
    """The torn *final* WAL record case, at both storage dtypes."""
    tmp_path = tmp_path_factory.mktemp("dtype")
    factory = make_factory("cc", seed=7, dtype=dtype)
    batches = make_batches(NUM_BATCHES, batch_size=50, seed=5)
    expected = reference_state(factory, batches)
    schedule = ChaosSchedule.of(Fault("torn_wal", at_batch=crash_batch, detail=torn_keep))
    plane = _run_supervised(tmp_path, factory, batches, schedule)
    try:
        state = capture_state(plane)
        assert_states_equal(state, expected)
        # The recovered arrays really are at the configured dtype.
        assert any(
            arr.dtype == np.dtype(dtype)
            for arr in state[1].values()
            if arr.dtype.kind == "f"
        )
    finally:
        plane.close()


@settings(**_SETTINGS)
@given(
    crash_batch=st.integers(min_value=1, max_value=NUM_BATCHES - 1),
    durable_append=st.booleans(),
)
def test_sharded_crash_recovers_bit_identically(
    backend, crash_batch, durable_append, tmp_path_factory
):
    """2-shard engine on every enabled backend: crash, restore, replay, equal."""
    tmp_path = tmp_path_factory.mktemp("sharded")
    factory = make_factory(seed=7, shards=2, backend=backend)
    batches = make_batches(NUM_BATCHES, batch_size=50, seed=9)
    expected = reference_state(factory, batches)
    kind = "crash_before_insert" if durable_append else "torn_wal"
    plane = _run_supervised(
        tmp_path,
        factory,
        batches,
        ChaosSchedule.of(Fault(kind, at_batch=crash_batch)),
        restore_overrides={"backend": backend},
    )
    try:
        assert_states_equal(capture_state(plane), expected)
    finally:
        plane.close()


@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(crash_batch=st.integers(min_value=6, max_value=NUM_BATCHES - 1))
def test_sharded_reshard_then_crash(backend, crash_batch, tmp_path_factory):
    """Reshard mid-stream, checkpoint the new shape, crash later: still equal.

    Recovery restores the *post-reshard* checkpoint (it is the newest good
    one), so replay continues on the resharded engine — the reshard itself
    is a checkpointed state transition, not a journaled batch.
    """
    tmp_path = tmp_path_factory.mktemp("reshard")
    factory = make_factory(seed=7, shards=2, backend=backend)
    batches = make_batches(NUM_BATCHES, batch_size=50, seed=11)
    reshard_after = 4  # batches ingested before growing to 3 shards

    reference = ServingPlane(factory())
    try:
        for index, batch in enumerate(batches):
            if index == reshard_after:
                reference.reshard(3)
            reference.ingest(batch.copy())
        expected = pack_state(reference.clusterer._state_tree())
    finally:
        reference.close()

    plane = ServingPlane(factory())
    chaos = ChaosController(
        schedule=ChaosSchedule.of(Fault("torn_wal", at_batch=crash_batch))
    )
    supervisor = IngestSupervisor(
        plane,
        CheckpointStore(tmp_path / "ckpts", keep_last=3),
        tmp_path / "wal",
        clusterer_factory=factory,
        checkpoint_every_batches=None,
        fsync_every=0,
        policy=RestartPolicy(
            seed=1, max_restarts=50, backoff_base_s=0.0, backoff_cap_s=0.0
        ),
        wal_write_hook=chaos.wal_write_hook,
        restore_overrides={"backend": backend},
    )
    try:
        for index, batch in enumerate(batches):
            if index == reshard_after:
                plane.reshard(3)
                supervisor.checkpoint()  # pin the new shape before crashing
            chaos.step(supervisor, index, batch)
        assert supervisor.health() is HealthState.LIVE
        assert supervisor.stats.recoveries == 1
        assert_states_equal(capture_state(plane), expected)
    finally:
        supervisor.close(final_checkpoint=False)
        plane.close()
