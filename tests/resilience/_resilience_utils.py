"""Shared builders for the resilience battery (WAL, supervisor, chaos).

The recovery-equivalence contract under test everywhere in this package:
an *uninterrupted* run is a :class:`~repro.serving.plane.ServingPlane`
ingesting batch after batch (insert + publish per batch — publication
mutates caches and RNG streams, so it is part of the reference history);
a *supervised* run must reach the exact same state — bit for bit — no
matter where it crashed, because restore-from-checkpoint plus WAL replay
reproduces that same insert/publish history.

``REPRO_TEST_BACKENDS`` bounds the sharded matrix per CI job exactly as in
the checkpoint battery; ``REPRO_CHAOS_SEED`` reseeds every storm-driven
test so the CI matrix explores different fault schedules per lane.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.checkpoint import pack_state
from repro.checkpoint.store import CheckpointStore
from repro.core.base import StreamingConfig
from repro.core.driver import (
    CachedCoresetTreeClusterer,
    CoresetTreeClusterer,
    RecursiveCachedClusterer,
)
from repro.resilience import ChaosController, IngestSupervisor, RestartPolicy
from repro.serving.plane import ServingPlane

#: name -> factory(config) for the coreset clusterers the plane serves.
PLANE_ALGORITHMS = {
    "ct": lambda config: CoresetTreeClusterer(config),
    "cc": lambda config: CachedCoresetTreeClusterer(config),
    "rcc": lambda config: RecursiveCachedClusterer(config, nesting_depth=2),
}


def enabled_backends() -> tuple[str, ...]:
    """Executor backends selected via ``REPRO_TEST_BACKENDS`` (default: all)."""
    raw = os.environ.get("REPRO_TEST_BACKENDS", "serial,thread,process")
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    return names or ("serial",)


def small_config(seed: int = 7, dtype: str = "float64") -> StreamingConfig:
    """The battery's small/fast configuration (mirrors the checkpoint suite)."""
    return StreamingConfig(
        k=3,
        coreset_size=40,
        merge_degree=2,
        n_init=2,
        lloyd_iterations=4,
        seed=seed,
        dtype=dtype,
    )


def make_factory(algorithm: str = "cc", *, seed: int = 7, dtype: str = "float64",
                 shards: int = 1, backend: str = "serial"):
    """A zero-argument clusterer factory (the supervisor's rebuild seam)."""
    config = small_config(seed, dtype)
    if shards > 1:
        return lambda: CachedCoresetTreeClusterer.sharded(
            config, num_shards=shards, backend=backend
        )
    build = PLANE_ALGORITHMS[algorithm]
    return lambda: build(config)


def make_batches(num_batches: int = 16, batch_size: int = 60, dimension: int = 4,
                 seed: int = 3) -> list[np.ndarray]:
    """A deterministic 3-blob stream pre-split into equal batches."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=10.0, size=(3, dimension))
    total = num_batches * batch_size
    labels = rng.integers(0, 3, size=total)
    points = centers[labels] + rng.normal(scale=0.8, size=(total, dimension))
    return [points[i : i + batch_size] for i in range(0, total, batch_size)]


def reference_state(factory, batches: list[np.ndarray]):
    """(skeleton, arrays) of an uninterrupted plane run over ``batches``."""
    plane = ServingPlane(factory())
    try:
        for batch in batches:
            plane.ingest(batch.copy())
        return pack_state(plane.clusterer._state_tree())
    finally:
        plane.close()


def capture_state(plane: ServingPlane):
    """(skeleton, arrays) of the plane's current clusterer state."""
    return pack_state(plane.clusterer._state_tree())


def assert_states_equal(actual, expected) -> None:
    """Bitwise state-tree equality: same skeleton, same bytes in every array."""
    actual_skeleton, actual_arrays = actual
    expected_skeleton, expected_arrays = expected
    assert actual_skeleton == expected_skeleton
    assert sorted(actual_arrays) == sorted(expected_arrays)
    for key, expected_array in expected_arrays.items():
        got = actual_arrays[key]
        assert got.dtype == expected_array.dtype, key
        np.testing.assert_array_equal(got, expected_array, err_msg=key)


def make_supervisor(tmp_path: Path, factory, *, chaos: ChaosController | None = None,
                    checkpoint_every_batches: int = 4, keep_last: int = 3,
                    policy: RestartPolicy | None = None,
                    fsync_every: int = 0) -> tuple[IngestSupervisor, ServingPlane]:
    """A fresh supervised plane rooted under ``tmp_path`` (no real sleeps)."""
    plane = ServingPlane(factory())
    supervisor = IngestSupervisor(
        plane,
        CheckpointStore(tmp_path / "ckpts", keep_last=keep_last),
        tmp_path / "wal",
        clusterer_factory=factory,
        checkpoint_every_batches=checkpoint_every_batches,
        fsync_every=fsync_every,
        policy=policy
        or RestartPolicy(seed=1, max_restarts=50, backoff_base_s=0.0, backoff_cap_s=0.0),
        wal_write_hook=chaos.wal_write_hook if chaos is not None else None,
    )
    return supervisor, plane
