"""Degraded-mode serving: answer from the last snapshot, say so, bound it.

When the writer dies, the server must keep answering from the last
published :class:`CoresetSnapshot` — annotated ``degraded`` with the
snapshot's age — until the configured staleness ceiling, past which
answers flip to 503 ``stale``.  The ``health`` op exposes the supervisor's
state the whole time.
"""

from __future__ import annotations

import time

import pytest

from repro.checkpoint.store import CheckpointStore
from repro.resilience import (
    ChaosController,
    ChaosSchedule,
    Fault,
    HealthState,
    IngestSupervisor,
    RestartPolicy,
    SupervisorError,
)
from repro.serving.client import ServingClient
from repro.serving.plane import ServingPlane
from repro.serving.server import ServerThread

from _resilience_utils import make_batches, make_factory


@pytest.fixture
def live_plane(stream_batches):
    plane = ServingPlane(make_factory(seed=7)())
    for batch in stream_batches[:3]:
        plane.ingest(batch.copy())
    yield plane
    plane.close()


class TestHealthOp:
    def test_health_reports_live_by_default(self, live_plane):
        with ServerThread(live_plane, num_workers=1) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                payload = client.health()
        assert payload["ok"] and payload["op"] == "health"
        assert payload["state"] == "live"
        assert payload["degraded"] is False
        assert payload["version"] == live_plane.version
        assert payload["snapshot_age_s"] is not None
        assert payload["staleness_ceiling_s"] is None

    def test_health_source_drives_the_state(self, live_plane):
        with ServerThread(
            live_plane, num_workers=1, health_source=lambda: "DEGRADED"
        ) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                payload = client.health()
        assert payload["state"] == "degraded"
        assert payload["degraded"] is True

    def test_health_reports_down_before_first_snapshot(self):
        plane = ServingPlane(make_factory(seed=7)())
        try:
            with ServerThread(plane, num_workers=1) as server:
                with ServingClient("127.0.0.1", server.port) as client:
                    payload = client.health()
            assert payload["state"] == "down"
            assert payload["snapshot_age_s"] is None
        finally:
            plane.close()


class TestDegradedAnnotation:
    def test_queries_keep_working_and_are_annotated(self, live_plane):
        with ServerThread(
            live_plane, num_workers=1, health_source=lambda: "degraded"
        ) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                response = client.query(k=3)
            stats = server.server.stats
        assert response["ok"]
        assert response["degraded"] is True
        assert response["health"] == "degraded"
        assert response["snapshot_age_s"] >= 0.0
        assert len(response["centers"]) == 3
        assert stats.degraded_served == 1

    def test_live_responses_carry_no_annotation(self, live_plane):
        with ServerThread(live_plane, num_workers=1) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                response = client.query(k=3)
            stats = server.server.stats
        assert response["ok"]
        assert "degraded" not in response
        assert stats.degraded_served == 0


class TestStalenessCeiling:
    def test_fresh_snapshot_is_served_then_old_one_rejected(self, live_plane):
        with ServerThread(
            live_plane,
            num_workers=1,
            staleness_ceiling_s=0.4,
            health_source=lambda: "degraded",
        ) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                live_plane.ingest(make_batches(1, 30)[0])  # refresh published_at
                fresh = client.query(k=3)
                time.sleep(0.6)  # outlive the ceiling with a dead writer
                stale = client.query(k=3)
                health = client.health()
            stats = server.server.stats
        assert fresh["ok"] and fresh["degraded"] is True
        assert not stale["ok"]
        assert stale["code"] == 503
        assert "stale" in stale["error"]
        assert stats.stale_rejections == 1
        # The health probe still answers (it is not a query).
        assert health["ok"] and health["snapshot_age_s"] > 0.4

    def test_ceiling_validation(self, live_plane):
        with pytest.raises(ValueError, match="staleness_ceiling_s"):
            ServerThread(live_plane, num_workers=1, staleness_ceiling_s=0.0)


class TestSupervisedIntegration:
    def test_degraded_supervisor_keeps_serving(self, tmp_path, stream_batches):
        """End-to-end: budget-exhausted supervisor, server still answers."""
        factory = make_factory(seed=7)
        plane = ServingPlane(factory())
        chaos = ChaosController(
            schedule=ChaosSchedule.of(
                *[Fault("torn_wal", at_batch=b) for b in range(1, 4)]
            )
        )
        supervisor = IngestSupervisor(
            plane,
            CheckpointStore(tmp_path / "ckpts", keep_last=2),
            tmp_path / "wal",
            clusterer_factory=factory,
            policy=RestartPolicy(
                seed=1, max_restarts=0, backoff_base_s=0.0, backoff_cap_s=0.0
            ),
            wal_write_hook=chaos.wal_write_hook,
        )
        try:
            supervisor.ingest(stream_batches[0].copy())
            with pytest.raises(SupervisorError):
                chaos.step(supervisor, 1, stream_batches[1])
            assert supervisor.health() is HealthState.DEGRADED
            with ServerThread(
                plane,
                num_workers=1,
                health_source=lambda: supervisor.health().value,
            ) as server:
                with ServingClient("127.0.0.1", server.port) as client:
                    health = client.health()
                    response = client.query(k=3)
            assert health["state"] == "degraded"
            assert response["ok"] and response["degraded"] is True
            assert response["version"] == 1  # the pre-crash publication
        finally:
            supervisor.close(final_checkpoint=False)
            plane.close()
