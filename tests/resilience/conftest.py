"""Fixtures for the resilience battery (helpers in ``_resilience_utils``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import chaos_seed_from_env

from _resilience_utils import enabled_backends, make_batches


@pytest.fixture(params=enabled_backends())
def backend(request) -> str:
    """Parametrized over every executor backend enabled via REPRO_TEST_BACKENDS."""
    return request.param


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    """Storm seed: ``REPRO_CHAOS_SEED`` (CI matrix) or 0 for local runs."""
    return chaos_seed_from_env()


@pytest.fixture(scope="session")
def stream_batches() -> list[np.ndarray]:
    """The battery's shared deterministic stream, pre-split into batches."""
    return make_batches()
