"""Seeded fault storms: every fault kind at once, zero lost batches.

The soak gate of the durable-ingest work: drive a whole stream through a
supervised plane while a seeded :meth:`ChaosSchedule.storm` fires torn
appends, post-append crashes, disk-full snapshots, and checkpoint
corruption — then assert nothing was lost (stream position exact), the
pipeline is LIVE, and the surviving state is bit-identical to a run that
saw no faults at all.  ``REPRO_CHAOS_SEED`` reseeds the storm per CI lane;
``REPRO_SOAK=1`` unlocks the long-running variant.
"""

from __future__ import annotations

import os

import pytest

from repro.resilience import ChaosController, ChaosSchedule, HealthState

from _resilience_utils import (
    assert_states_equal,
    capture_state,
    make_batches,
    make_factory,
    make_supervisor,
    reference_state,
)

#: kill_worker is exercised via the sharded variant; the single-process
#: storm uses the in-process fault kinds.
SOLO_KINDS = ("crash_before_insert", "torn_wal", "disk_full", "corrupt_checkpoint")


def _storm_run(tmp_path, factory, batches, schedule):
    chaos = ChaosController(schedule=schedule)
    supervisor, plane = make_supervisor(
        tmp_path, factory, chaos=chaos, checkpoint_every_batches=4
    )
    count = chaos.drive(supervisor, batches)
    return supervisor, plane, chaos, count


def test_storm_loses_nothing_and_recovers_bit_identically(tmp_path, chaos_seed):
    factory = make_factory("cc", seed=7)
    batches = make_batches(20, batch_size=60)
    expected = reference_state(factory, batches)
    schedule = ChaosSchedule.storm(chaos_seed, 20, kinds=SOLO_KINDS, num_shards=1)
    assert schedule.faults  # the storm actually scheduled something
    supervisor, plane, chaos, count = _storm_run(tmp_path, factory, batches, schedule)
    try:
        # Zero lost batches: every driven batch is durably applied.
        assert count == 20
        assert supervisor.stats.batches_ingested == 20
        assert plane.points_ingested == sum(b.shape[0] for b in batches)
        assert supervisor.health() is HealthState.LIVE
        assert chaos.fired  # faults really fired
        assert_states_equal(capture_state(plane), expected)
    finally:
        supervisor.close(final_checkpoint=False)
        plane.close()


@pytest.mark.parametrize("offset", [1, 2])
def test_storms_at_neighbouring_seeds(tmp_path, chaos_seed, offset):
    """Different seeds -> different fault mixes, same invariants."""
    factory = make_factory("cc", seed=7)
    batches = make_batches(14, batch_size=60)
    expected = reference_state(factory, batches)
    schedule = ChaosSchedule.storm(
        chaos_seed + offset, 14, kinds=SOLO_KINDS, num_shards=1
    )
    supervisor, plane, chaos, count = _storm_run(tmp_path, factory, batches, schedule)
    try:
        assert count == 14
        assert supervisor.health() is HealthState.LIVE
        assert_states_equal(capture_state(plane), expected)
    finally:
        supervisor.close(final_checkpoint=False)
        plane.close()


def test_storm_is_deterministic(chaos_seed):
    """Same seed, same schedule — the reproducibility contract of the DSL."""
    first = ChaosSchedule.storm(chaos_seed, 20)
    second = ChaosSchedule.storm(chaos_seed, 20)
    assert first == second
    assert ChaosSchedule.storm(chaos_seed + 1, 20) != first


def test_sharded_storm(tmp_path, chaos_seed, backend):
    """The storm against a 2-shard engine on every enabled backend."""
    factory = make_factory(seed=7, shards=2, backend=backend)
    batches = make_batches(12, batch_size=60)
    expected = reference_state(factory, batches)
    schedule = ChaosSchedule.storm(
        chaos_seed, 12, faults_per_kind=1, kinds=SOLO_KINDS, num_shards=2
    )
    chaos = ChaosController(schedule=schedule)
    supervisor, plane = make_supervisor(
        tmp_path, factory, chaos=chaos, checkpoint_every_batches=4
    )
    # Sharded restores must come back on the same backend.
    supervisor._restore_overrides = {"backend": backend}
    try:
        count = chaos.drive(supervisor, batches)
        assert count == 12
        assert supervisor.health() is HealthState.LIVE
        assert plane.points_ingested == sum(b.shape[0] for b in batches)
        assert_states_equal(capture_state(plane), expected)
    finally:
        supervisor.close(final_checkpoint=False)
        plane.close()


@pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="soak run: set REPRO_SOAK=1 (long storm battery)",
)
def test_soak_many_storms(tmp_path, chaos_seed):
    """Soak: a long stream under repeated dense storms, still bit-identical."""
    rounds = int(os.environ.get("REPRO_SOAK_STORMS", "10"))
    factory = make_factory("cc", seed=7)
    batches = make_batches(40, batch_size=60)
    expected = reference_state(factory, batches)
    for round_index in range(rounds):
        schedule = ChaosSchedule.storm(
            chaos_seed + round_index, 40, faults_per_kind=3,
            kinds=SOLO_KINDS, num_shards=1,
        )
        supervisor, plane, chaos, count = _storm_run(
            tmp_path / f"round-{round_index}", factory, batches, schedule
        )
        try:
            assert count == 40
            assert supervisor.health() is HealthState.LIVE
            assert_states_equal(capture_state(plane), expected)
        finally:
            supervisor.close(final_checkpoint=False)
            plane.close()
