"""Supervisor behaviour: checkpoints, retention, recovery, budgets, resume.

The bitwise equivalence *properties* live in ``test_crash_property.py``;
this file pins the supervisor's observable mechanics — what gets written
where, which events are recorded, and how the health state moves.
"""

from __future__ import annotations

import pytest

from repro.checkpoint.store import STATE_NAME, CheckpointStore
from repro.resilience import (
    ChaosController,
    ChaosSchedule,
    Fault,
    HealthState,
    IngestSupervisor,
    RestartPolicy,
    SupervisorError,
    corrupt_file,
    replay_wal,
    wal_segments,
)
from repro.serving.plane import ServingPlane

from _resilience_utils import (
    assert_states_equal,
    capture_state,
    make_factory,
    make_supervisor,
    reference_state,
)


class TestCheckpointing:
    def test_interval_checkpoints_and_retention(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        supervisor, plane = make_supervisor(
            tmp_path, factory, checkpoint_every_batches=2, keep_last=3
        )
        for batch in stream_batches:
            supervisor.ingest(batch.copy())
        retained = supervisor.store.list()
        assert len(retained) == 3  # 8 written, retention keeps the newest 3
        assert supervisor.stats.checkpoints_written == 8
        assert retained[-1].name == f"ckpt-{plane.points_ingested:010d}"
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_truncation_keeps_journal_past_the_newest_snapshot(
        self, tmp_path, stream_batches
    ):
        factory = make_factory(seed=7)
        supervisor, plane = make_supervisor(
            tmp_path, factory, checkpoint_every_batches=2
        )
        for batch in stream_batches:
            supervisor.ingest(batch.copy())
        # The journal must still reach back to the *previous* retained
        # snapshot: the newest one is never a single point of failure.
        retained = supervisor.store.list()
        fallback_position = int(retained[-2].name.split("-")[1])
        replayed = list(replay_wal(tmp_path / "wal", start_points=fallback_position))
        assert replayed and replayed[0].points_before == fallback_position
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_disk_full_checkpoint_is_not_fatal(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        chaos = ChaosController(
            schedule=ChaosSchedule.of(Fault("disk_full", at_batch=3))
        )
        supervisor, plane = make_supervisor(
            tmp_path, factory, chaos=chaos, checkpoint_every_batches=2
        )
        chaos.drive(supervisor, stream_batches[:8])
        assert supervisor.stats.checkpoint_failures == 1
        assert "checkpoint failed" in supervisor.last_error
        assert supervisor.health() is HealthState.LIVE
        assert plane.points_ingested == sum(b.shape[0] for b in stream_batches[:8])
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_close_writes_final_checkpoint_and_truncates(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        supervisor, plane = make_supervisor(
            tmp_path, factory, checkpoint_every_batches=None
        )
        for batch in stream_batches[:3]:
            supervisor.ingest(batch.copy())
        path = supervisor.close(final_checkpoint=True)
        assert path is not None and path.exists()
        assert supervisor.wal.closed
        plane.close()


class TestRecovery:
    def test_torn_wal_recovers_bit_identically(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        expected = reference_state(factory, stream_batches)
        chaos = ChaosController(
            schedule=ChaosSchedule.of(Fault("torn_wal", at_batch=5, detail=9))
        )
        supervisor, plane = make_supervisor(
            tmp_path, factory, chaos=chaos, checkpoint_every_batches=3
        )
        chaos.drive(supervisor, stream_batches)
        assert supervisor.stats.recoveries == 1
        (event,) = supervisor.stats.events
        assert event.reapplied_inflight  # torn record -> batch re-journaled
        assert event.restored_from is not None
        assert_states_equal(capture_state(plane), expected)
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_crash_after_durable_append_does_not_double_apply(
        self, tmp_path, stream_batches
    ):
        factory = make_factory(seed=7)
        expected = reference_state(factory, stream_batches)
        chaos = ChaosController(
            schedule=ChaosSchedule.of(Fault("crash_before_insert", at_batch=5))
        )
        supervisor, plane = make_supervisor(
            tmp_path, factory, chaos=chaos, checkpoint_every_batches=3
        )
        chaos.drive(supervisor, stream_batches)
        (event,) = supervisor.stats.events
        assert not event.reapplied_inflight  # replay already applied it
        assert_states_equal(capture_state(plane), expected)
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_corrupt_newest_checkpoint_falls_back(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        expected = reference_state(factory, stream_batches)
        chaos = ChaosController(
            schedule=ChaosSchedule.of(
                Fault("corrupt_checkpoint", at_batch=6, detail=100),
                Fault("torn_wal", at_batch=7, detail=5),
            )
        )
        supervisor, plane = make_supervisor(
            tmp_path, factory, chaos=chaos, checkpoint_every_batches=3
        )
        chaos.drive(supervisor, stream_batches)
        (event,) = supervisor.stats.events
        corrupted = supervisor.store.list()[-1]
        assert event.restored_from != str(corrupted)
        assert_states_equal(capture_state(plane), expected)
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_cold_recovery_without_any_checkpoint(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        expected = reference_state(factory, stream_batches[:6])
        chaos = ChaosController(
            schedule=ChaosSchedule.of(Fault("torn_wal", at_batch=4))
        )
        supervisor, plane = make_supervisor(
            tmp_path, factory, chaos=chaos, checkpoint_every_batches=None
        )
        chaos.drive(supervisor, stream_batches[:6])
        (event,) = supervisor.stats.events
        assert event.restored_from is None  # replayed the whole journal
        assert event.replayed_records == 4
        assert_states_equal(capture_state(plane), expected)
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_restart_budget_exhaustion_degrades(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        plane = ServingPlane(factory())
        always_torn = ChaosController(
            schedule=ChaosSchedule.of(
                *[Fault("torn_wal", at_batch=b) for b in range(1, 10)]
            )
        )
        supervisor = IngestSupervisor(
            plane,
            CheckpointStore(tmp_path / "ckpts", keep_last=3),
            tmp_path / "wal",
            clusterer_factory=factory,
            policy=RestartPolicy(
                seed=1, max_restarts=0, backoff_base_s=0.0, backoff_cap_s=0.0
            ),
            wal_write_hook=always_torn.wal_write_hook,
        )
        supervisor.ingest(stream_batches[0].copy())
        with pytest.raises(SupervisorError, match="budget exhausted"):
            always_torn.step(supervisor, 1, stream_batches[1])
        assert supervisor.health() is HealthState.DEGRADED
        # The plane still serves the last published snapshot.
        result = plane.reader(seed=0).query()
        assert result.centers.shape[0] >= 1
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_down_when_degraded_before_any_publication(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        plane = ServingPlane(factory())
        chaos = ChaosController(
            schedule=ChaosSchedule.of(Fault("torn_wal", at_batch=0))
        )
        supervisor = IngestSupervisor(
            plane,
            CheckpointStore(tmp_path / "ckpts", keep_last=3),
            tmp_path / "wal",
            clusterer_factory=factory,
            policy=RestartPolicy(
                seed=1, max_restarts=0, backoff_base_s=0.0, backoff_cap_s=0.0
            ),
            wal_write_hook=chaos.wal_write_hook,
        )
        with pytest.raises(SupervisorError):
            chaos.step(supervisor, 0, stream_batches[0])
        assert supervisor.health() is HealthState.DOWN
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_recovery_requires_factory_or_checkpoint(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        plane = ServingPlane(factory())
        chaos = ChaosController(
            schedule=ChaosSchedule.of(Fault("torn_wal", at_batch=0))
        )
        supervisor = IngestSupervisor(
            plane,
            CheckpointStore(tmp_path / "ckpts", keep_last=3),
            tmp_path / "wal",
            clusterer_factory=None,  # no cold-recovery seam
            policy=RestartPolicy(
                seed=1, max_restarts=3, backoff_base_s=0.0, backoff_cap_s=0.0
            ),
            wal_write_hook=chaos.wal_write_hook,
        )
        with pytest.raises(SupervisorError):
            chaos.step(supervisor, 0, stream_batches[0])
        supervisor.close(final_checkpoint=False)
        plane.close()


class TestResume:
    def test_blank_store_resume_is_noop(self, tmp_path):
        supervisor, plane = make_supervisor(tmp_path, make_factory(seed=7))
        assert supervisor.resume() is None
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_resume_restores_checkpoint_plus_journal_tail(
        self, tmp_path, stream_batches
    ):
        factory = make_factory(seed=7)
        expected = reference_state(factory, stream_batches[:6])
        # First incarnation: checkpoint at batch 4, journal through batch 6,
        # then vanish without close() — as a killed process would.
        first, first_plane = make_supervisor(
            tmp_path, factory, checkpoint_every_batches=4
        )
        for batch in stream_batches[:6]:
            first.ingest(batch.copy())
        first_plane.close()
        del first

        second, second_plane = make_supervisor(tmp_path, factory)
        event = second.resume()
        assert event is not None and event.cause == "startup resume"
        assert event.replayed_records == 2  # batches 5 and 6 came from the WAL
        assert_states_equal(capture_state(second_plane), expected)
        # The resumed pipeline continues ingesting normally.
        second.ingest(stream_batches[6].copy())
        assert second_plane.points_ingested == sum(
            b.shape[0] for b in stream_batches[:7]
        )
        second.close(final_checkpoint=False)
        second_plane.close()

    def test_resume_falls_back_past_corrupt_newest_snapshot(
        self, tmp_path, stream_batches
    ):
        factory = make_factory(seed=7)
        expected = reference_state(factory, stream_batches[:6])
        first, first_plane = make_supervisor(
            tmp_path, factory, checkpoint_every_batches=2
        )
        for batch in stream_batches[:6]:
            first.ingest(batch.copy())
        first_plane.close()
        newest = first.store.list()[-1]
        corrupt_file(newest / STATE_NAME, offset=100)

        second, second_plane = make_supervisor(tmp_path, factory)
        event = second.resume()
        assert event is not None
        assert event.restored_from != str(newest)
        assert event.replayed_records > 0
        assert_states_equal(capture_state(second_plane), expected)
        second.close(final_checkpoint=False)
        second_plane.close()


class TestWalHousekeeping:
    def test_recovery_reopens_a_fresh_segment(self, tmp_path, stream_batches):
        factory = make_factory(seed=7)
        chaos = ChaosController(
            schedule=ChaosSchedule.of(Fault("torn_wal", at_batch=2))
        )
        supervisor, plane = make_supervisor(tmp_path, factory, chaos=chaos)
        old_wal = supervisor.wal
        chaos.drive(supervisor, stream_batches[:4])
        assert supervisor.wal is not old_wal  # process-restart semantics
        assert len(wal_segments(tmp_path / "wal")) == 2
        # The full journal still replays the whole accepted stream.
        total = sum(r.batch.shape[0] for r in replay_wal(tmp_path / "wal"))
        assert total == plane.points_ingested
        supervisor.close(final_checkpoint=False)
        plane.close()

    def test_invalid_construction(self, tmp_path):
        factory = make_factory(seed=7)
        plane = ServingPlane(factory())
        with pytest.raises(ValueError, match="checkpoint_every_batches"):
            IngestSupervisor(
                plane,
                CheckpointStore(tmp_path / "c"),
                tmp_path / "w",
                checkpoint_every_batches=0,
            )
        plane.close()
