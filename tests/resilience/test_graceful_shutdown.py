"""``repro serve`` process lifecycle: SIGTERM drains, checkpoints, exits 0.

Real subprocesses (no mocks): the regression here is an operator's
``kill <pid>`` during a rolling restart — it must produce a final
checkpoint, a truncated journal, exit code 0, and a directory the next
incarnation resumes from.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn_serve(tmp_path, *extra):
    env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--dataset", "power", "--num-points", "1500",
            "--batch-size", "150", "--port", "0", "--duration", "0",
            "--checkpoint-to", str(tmp_path / "durable"),
            "--checkpoint-interval", "450",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _wait_for_line(process, needle, timeout_s=60.0):
    """Read stdout lines until one contains ``needle`` (collected lines back)."""
    lines = []
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                break
            continue
        lines.append(line)
        if needle in line:
            return lines
    raise AssertionError(
        f"never saw {needle!r} in serve output:\n{''.join(lines)}"
    )


def _port_from_banner(lines):
    banner = next(line for line in lines if "serving on" in line)
    return int(banner.split("serving on ", 1)[1].split()[0].rsplit(":", 1)[1])


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_checkpoints_and_exits_zero(tmp_path, signum):
    process = _spawn_serve(tmp_path)
    try:
        lines = _wait_for_line(process, "serving on")
        time.sleep(1.0)  # let some batches through
        process.send_signal(signum)
        out, _ = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, out
    assert "final checkpoint:" in out
    assert "drained:" in out
    root = tmp_path / "durable"
    checkpoints = sorted(p for p in root.iterdir() if p.name.startswith("ckpt-"))
    assert checkpoints, "graceful exit wrote no checkpoint"
    # The final checkpoint truncated the journal: whatever segments remain
    # only cover positions past an older retained snapshot.
    assert (root / "wal").is_dir()
    assert lines  # the banner was seen before the signal


def test_second_incarnation_resumes_from_the_first(tmp_path):
    first = _spawn_serve(tmp_path)
    try:
        _wait_for_line(first, "serving on")
        time.sleep(1.0)
        first.send_signal(signal.SIGTERM)
        out, _ = first.communicate(timeout=60)
    finally:
        if first.poll() is None:
            first.kill()
            first.communicate()
    assert first.returncode == 0, out

    second = _spawn_serve(tmp_path)
    try:
        lines = _wait_for_line(second, "serving on")
        resumed = [line for line in lines if line.startswith("resumed from")]
        assert resumed, f"no resume banner in: {''.join(lines)}"
        assert "ckpt-" in resumed[0]
        second.send_signal(signal.SIGTERM)
        out, _ = second.communicate(timeout=60)
    finally:
        if second.poll() is None:
            second.kill()
            second.communicate()
    assert second.returncode == 0, out


def test_live_health_probe_over_tcp(tmp_path):
    """The serve process answers the ``health`` op while durable."""
    process = _spawn_serve(tmp_path, "--staleness-ceiling", "60")
    try:
        lines = _wait_for_line(process, "serving on")
        port = _port_from_banner(lines)
        with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
            file = conn.makefile("rwb")
            file.write(b'{"op": "health"}\n')
            file.flush()
            payload = json.loads(file.readline())
        assert payload["ok"]
        assert payload["state"] == "live"
        assert payload["staleness_ceiling_s"] == 60.0
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=60)
        assert process.returncode == 0, out
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
