"""Unit and property tests for the write-ahead journal's on-disk format.

The format contract: a crash at *any byte* of an append leaves a journal
that replays every previously accounted record and silently discards the
torn tail — while damage a crash cannot explain (a bad record *followed by
more bytes*) is loudly :class:`~repro.resilience.WalCorruption`.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import (
    WalCorruption,
    WalError,
    WriteAheadLog,
    replay_wal,
    wal_segments,
)


def _batches(count: int, rows: int = 5, cols: int = 3, dtype=np.float64):
    rng = np.random.default_rng(42)
    return [rng.normal(size=(rows, cols)).astype(dtype) for _ in range(count)]


def _fill(directory, batches, **kwargs):
    """Append ``batches`` contiguously and return the WAL (left open)."""
    wal = WriteAheadLog(directory, **kwargs)
    position = 0
    for batch in batches:
        wal.append(batch, position)
        position += batch.shape[0]
    return wal


class TestRoundTrip:
    def test_append_then_replay_is_identity(self, tmp_path):
        batches = _batches(6)
        with _fill(tmp_path, batches) as wal:
            assert wal.appended_records == 6
        records = list(replay_wal(tmp_path))
        assert [r.seq for r in records] == list(range(6))
        position = 0
        for record, batch in zip(records, batches):
            assert record.points_before == position
            np.testing.assert_array_equal(record.batch, batch)
            assert record.batch.dtype == batch.dtype
            position = record.points_after
        assert position == 30

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtype_and_shape_survive(self, tmp_path, dtype):
        batch = np.arange(12, dtype=dtype).reshape(3, 4)
        with WriteAheadLog(tmp_path) as wal:
            wal.append(batch, 0)
        (record,) = replay_wal(tmp_path)
        assert record.batch.dtype == np.dtype(dtype)
        assert record.batch.shape == (3, 4)
        np.testing.assert_array_equal(record.batch, batch)

    def test_replay_skips_checkpointed_prefix(self, tmp_path):
        with _fill(tmp_path, _batches(6)):
            pass
        records = list(replay_wal(tmp_path, start_points=15))
        assert [r.points_before for r in records] == [15, 20, 25]

    def test_replay_rejects_straddling_checkpoint_position(self, tmp_path):
        with _fill(tmp_path, _batches(4)):
            pass
        with pytest.raises(WalError, match="not contiguous"):
            list(replay_wal(tmp_path, start_points=7))

    def test_replay_rejects_gap(self, tmp_path):
        with _fill(tmp_path, _batches(4), segment_max_bytes=256):
            pass
        segments = wal_segments(tmp_path)
        assert len(segments) >= 3
        segments[1].unlink()
        with pytest.raises(WalError, match="not contiguous"):
            list(replay_wal(tmp_path))

    def test_empty_and_missing_directory_replay_nothing(self, tmp_path):
        assert list(replay_wal(tmp_path)) == []
        assert list(replay_wal(tmp_path / "never-created")) == []

    def test_append_rejects_bad_batches(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            with pytest.raises(WalError, match="non-empty 2-D"):
                wal.append(np.empty((0, 3)), 0)
            with pytest.raises(WalError, match="non-empty 2-D"):
                wal.append(np.ones(3), 0)
            with pytest.raises(WalError, match="points_before"):
                wal.append(np.ones((1, 3)), -1)


class TestRotationAndTruncation:
    def test_rotation_splits_segments_and_replay_spans_them(self, tmp_path):
        batches = _batches(8)
        with _fill(tmp_path, batches, segment_max_bytes=300):
            pass
        assert len(wal_segments(tmp_path)) > 1
        records = list(replay_wal(tmp_path))
        assert [r.seq for r in records] == list(range(8))

    def test_truncate_through_drops_covered_segments(self, tmp_path):
        wal = _fill(tmp_path, _batches(8), segment_max_bytes=300)
        before = len(wal_segments(tmp_path))
        dropped = wal.truncate_through(20)  # 4 batches x 5 rows
        assert 0 < dropped < before
        # Everything after position 20 is still replayable.
        records = list(replay_wal(tmp_path, start_points=20))
        assert [r.points_before for r in records] == [20, 25, 30, 35]
        wal.close()

    def test_truncate_at_current_position_empties_the_journal(self, tmp_path):
        wal = _fill(tmp_path, _batches(4), segment_max_bytes=300)
        wal.truncate_through(20)
        assert wal_segments(tmp_path) == []
        # Appends after truncation continue in a fresh segment.
        wal.append(np.ones((5, 3)), 20)
        (record,) = replay_wal(tmp_path, start_points=20)
        assert record.points_before == 20
        wal.close()

    def test_fsync_policy_counters(self, tmp_path):
        with _fill(tmp_path, _batches(6), fsync_every=2) as wal:
            assert wal.syncs == 3
        with _fill(tmp_path / "b", _batches(6), fsync_every=0) as wal:
            assert wal.syncs == 0
        assert wal.syncs == 1  # close() seals with one fsync


def _tail_segment_bytes(directory) -> tuple[object, bytes]:
    segment = wal_segments(directory)[-1]
    return segment, segment.read_bytes()


class TestTornTail:
    @settings(max_examples=30, deadline=None)
    @given(cut=st.integers(min_value=1, max_value=200))
    def test_crash_at_any_byte_of_final_record_discards_only_it(self, tmp_path_factory, cut):
        directory = tmp_path_factory.mktemp("wal")
        batches = _batches(4)
        with _fill(directory, batches):
            pass
        segment, data = _tail_segment_bytes(directory)
        # Chop up to `cut` bytes off the tail — never into the 3rd record.
        record_size = (len(data) - 8) // 4
        segment.write_bytes(data[: len(data) - min(cut, record_size)])
        records = list(replay_wal(directory))
        assert len(records) == (4 if cut == 0 else 3)
        for record, batch in zip(records, batches):
            np.testing.assert_array_equal(record.batch, batch)

    def test_crc_flip_in_final_record_reads_as_torn(self, tmp_path):
        with _fill(tmp_path, _batches(3)):
            pass
        segment, data = _tail_segment_bytes(tmp_path)
        segment.write_bytes(data[:-4] + bytes(b ^ 0xFF for b in data[-4:]))
        assert [r.seq for r in list(replay_wal(tmp_path))] == [0, 1]

    def test_crc_flip_mid_segment_is_corruption(self, tmp_path):
        with _fill(tmp_path, _batches(3)):
            pass
        segment, data = _tail_segment_bytes(tmp_path)
        mutated = bytearray(data)
        mutated[len(data) // 2] ^= 0xFF  # inside record 1, records follow
        segment.write_bytes(bytes(mutated))
        with pytest.raises(WalCorruption, match="corrupt record"):
            list(replay_wal(tmp_path))

    def test_mangled_header_is_corruption(self, tmp_path):
        with _fill(tmp_path, _batches(1)):
            pass
        segment, data = _tail_segment_bytes(tmp_path)
        segment.write_bytes(b"XXXX" + data[4:])
        with pytest.raises(WalCorruption, match="mangled header"):
            list(replay_wal(tmp_path))

    def test_future_version_is_refused(self, tmp_path):
        with _fill(tmp_path, _batches(1)):
            pass
        segment, data = _tail_segment_bytes(tmp_path)
        segment.write_bytes(data[:4] + struct.pack("<HH", 99, 0) + data[8:])
        with pytest.raises(WalError, match="version 99"):
            list(replay_wal(tmp_path))

    def test_empty_segment_file_is_tolerated(self, tmp_path):
        with _fill(tmp_path, _batches(2)):
            pass
        (tmp_path / "wal-00000001.log").write_bytes(b"")  # crash before header
        assert len(list(replay_wal(tmp_path))) == 2

    def test_reopen_never_appends_to_an_old_tail(self, tmp_path):
        with _fill(tmp_path, _batches(2)):
            pass
        wal = WriteAheadLog(tmp_path)
        wal.append(np.ones((5, 3)), 10)
        wal.close()
        assert len(wal_segments(tmp_path)) == 2
        assert [r.seq for r in replay_wal(tmp_path)] == [0, 1, 0]
