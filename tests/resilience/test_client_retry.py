"""Client deadlines and retry policy: retry 429/timeout, nothing else.

A scripted fake server pins the retry matrix exactly (which codes retry,
which return immediately); :class:`FlakyProxy` then proves the
timeout-then-reconnect path against the real asyncio server.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.resilience import FlakyProxy
from repro.serving.client import DeadlineExceeded, ServingClient
from repro.serving.plane import ServingPlane
from repro.serving.server import ServerThread

from _resilience_utils import make_factory


class ScriptedServer:
    """A newline-JSON server replaying a fixed response script.

    Each entry is a response dict, the string ``"stall"`` (read the request
    but never answer), or ``"close"`` (drop the connection).  The script
    position is shared across connections, so reconnect-and-retry sequences
    consume it in order.
    """

    def __init__(self, script):
        self._script = list(script)
        self._index = 0
        self._lock = threading.Lock()
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._halt = threading.Event()
        self.requests = 0
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _next(self):
        with self._lock:
            if self._index >= len(self._script):
                return {"ok": True, "op": "query", "exhausted": True}
            entry = self._script[self._index]
            self._index += 1
            return entry

    def _loop(self):
        while not self._halt.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,), daemon=True).start()

    def _serve(self, conn):
        file = conn.makefile("rwb")
        try:
            while not self._halt.is_set():
                line = file.readline()
                if not line:
                    return
                self.requests += 1
                entry = self._next()
                if entry == "close":
                    return
                if entry == "stall":
                    self._halt.wait(5.0)
                    return
                file.write(json.dumps(entry).encode() + b"\n")
                file.flush()
        except OSError:
            pass
        finally:
            file.close()
            conn.close()

    def close(self):
        self._halt.set()
        self._listener.close()
        self._thread.join(timeout=2.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


SHED = {"ok": False, "code": 429, "error": "overloaded"}
OK = {"ok": True, "op": "query", "centers": []}
BAD = {"ok": False, "code": 400, "error": "bad request"}
BROKEN = {"ok": False, "code": 500, "error": "internal"}


class TestRetryMatrix:
    def test_429_is_retried_until_success(self):
        with ScriptedServer([SHED, SHED, OK]) as server:
            with ServingClient(
                "127.0.0.1", server.port, max_retries=3,
                backoff_base_s=0.001, retry_seed=0,
            ) as client:
                response = client.query(k=3)
                assert response["ok"]
                assert client.retries == 2
            assert server.requests == 3

    def test_429_returned_when_retries_exhausted(self):
        with ScriptedServer([SHED, SHED, SHED]) as server:
            with ServingClient(
                "127.0.0.1", server.port, max_retries=1,
                backoff_base_s=0.001, retry_seed=0,
            ) as client:
                response = client.query(k=3)
                assert response["code"] == 429
                assert client.retries == 1

    @pytest.mark.parametrize("terminal", [BAD, BROKEN])
    def test_client_errors_are_never_retried(self, terminal):
        with ScriptedServer([terminal, OK]) as server:
            with ServingClient(
                "127.0.0.1", server.port, max_retries=5,
                backoff_base_s=0.001, retry_seed=0,
            ) as client:
                response = client.query(k=3)
                assert response["code"] == terminal["code"]
                assert client.retries == 0
            assert server.requests == 1

    def test_zero_retries_is_the_default(self):
        with ScriptedServer([SHED, OK]) as server:
            with ServingClient("127.0.0.1", server.port) as client:
                assert client.query(k=3)["code"] == 429
                assert client.retries == 0


class TestDeadlines:
    def test_stalled_server_raises_deadline_exceeded(self):
        with ScriptedServer(["stall"]) as server:
            with ServingClient(
                "127.0.0.1", server.port, timeout=5.0, deadline_s=0.3
            ) as client:
                started = time.monotonic()
                with pytest.raises(DeadlineExceeded):
                    client.query(k=3)
                assert time.monotonic() - started < 2.0

    def test_timeout_retry_reconnects_then_succeeds(self):
        # First attempt stalls (timeout -> reconnect), second is answered.
        with ScriptedServer(["stall", OK]) as server:
            with ServingClient(
                "127.0.0.1", server.port, timeout=0.2, max_retries=2,
                backoff_base_s=0.001, retry_seed=0,
            ) as client:
                response = client.query(k=3)
                assert response["ok"]
                assert client.retries == 1

    def test_per_call_deadline_overrides_default(self):
        with ScriptedServer(["stall"]) as server:
            with ServingClient(
                "127.0.0.1", server.port, timeout=5.0, deadline_s=30.0
            ) as client:
                with pytest.raises(DeadlineExceeded):
                    client.query(k=3, deadline_s=0.2)

    def test_deadline_bounds_retry_backoff_total(self):
        with ScriptedServer([SHED] * 50) as server:
            with ServingClient(
                "127.0.0.1", server.port, max_retries=50, deadline_s=0.4,
                backoff_base_s=0.2, backoff_cap_s=0.5, retry_seed=1,
            ) as client:
                started = time.monotonic()
                with pytest.raises(DeadlineExceeded):
                    client.query(k=3)
                assert time.monotonic() - started < 2.0

    def test_invalid_max_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            ServingClient("127.0.0.1", 1, max_retries=-1)


class TestAgainstRealServer:
    @pytest.fixture
    def served_plane(self, stream_batches):
        plane = ServingPlane(make_factory(seed=7)())
        for batch in stream_batches[:3]:
            plane.ingest(batch.copy())
        with ServerThread(plane, num_workers=1) as server:
            yield server
        plane.close()

    def test_flaky_proxy_drop_recovers_via_retry(self, served_plane):
        """A severed response surfaces as a timeout; the retry reconnects."""
        with FlakyProxy(
            "127.0.0.1", served_plane.port, seed=0, drop_rate=1.0,
            drop_after_bytes=0,
        ) as proxy:
            with ServingClient(
                "127.0.0.1", proxy.port, timeout=0.3, max_retries=0,
            ) as client:
                with pytest.raises((TimeoutError, ConnectionError)):
                    client.query(k=3)
            assert proxy.dropped >= 1

        # Same fault, but the client is allowed to retry straight to the
        # real server once the flaky path is gone.
        with ServingClient(
            "127.0.0.1", served_plane.port, timeout=2.0, max_retries=2,
            backoff_base_s=0.001, retry_seed=0,
        ) as client:
            assert client.query(k=3)["ok"]

    def test_delayed_proxy_still_within_deadline(self, served_plane):
        with FlakyProxy(
            "127.0.0.1", served_plane.port, seed=0, delay_s=0.05
        ) as proxy:
            with ServingClient(
                "127.0.0.1", proxy.port, timeout=5.0, deadline_s=4.0
            ) as client:
                assert client.ping()["ok"]
                assert client.query(k=3)["ok"]
            assert proxy.connections == 1
