"""Unit tests for query schedules (fixed interval and Poisson)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries.schedule import FixedIntervalSchedule, PoissonSchedule


class TestFixedIntervalSchedule:
    def test_positions(self):
        schedule = FixedIntervalSchedule(100)
        positions = schedule.query_positions(350)
        np.testing.assert_array_equal(positions, [100, 200, 300])

    def test_exact_multiple(self):
        schedule = FixedIntervalSchedule(50)
        positions = schedule.query_positions(200)
        np.testing.assert_array_equal(positions, [50, 100, 150, 200])

    def test_count(self):
        assert FixedIntervalSchedule(100).count(1000) == 10

    def test_interval_longer_than_stream(self):
        assert FixedIntervalSchedule(1000).query_positions(500).size == 0

    def test_empty_stream(self):
        assert FixedIntervalSchedule(10).query_positions(0).size == 0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            FixedIntervalSchedule(0)


class TestPoissonSchedule:
    def test_positions_sorted_unique_and_in_range(self):
        schedule = PoissonSchedule(rate=0.02, seed=0)
        positions = schedule.query_positions(5000)
        assert positions.size > 0
        assert np.all(positions >= 1)
        assert np.all(positions <= 5000)
        assert np.all(np.diff(positions) > 0)

    def test_mean_interval_roughly_matches_rate(self):
        schedule = PoissonSchedule.from_mean_interval(100, seed=1)
        positions = schedule.query_positions(100_000)
        mean_gap = np.mean(np.diff(positions))
        assert mean_gap == pytest.approx(100, rel=0.15)

    def test_higher_rate_means_more_queries(self):
        dense = PoissonSchedule(rate=0.02, seed=2).count(10_000)
        sparse = PoissonSchedule(rate=0.002, seed=2).count(10_000)
        assert dense > sparse

    def test_deterministic_with_seed(self):
        a = PoissonSchedule(rate=0.01, seed=5).query_positions(2000)
        b = PoissonSchedule(rate=0.01, seed=5).query_positions(2000)
        np.testing.assert_array_equal(a, b)

    def test_empty_stream(self):
        assert PoissonSchedule(rate=0.1, seed=0).query_positions(0).size == 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonSchedule(rate=0.0)
        with pytest.raises(ValueError):
            PoissonSchedule.from_mean_interval(0)

    def test_paper_sweep_intervals_construct(self):
        for mean_interval in (50, 100, 200, 400, 800, 1600, 3200):
            schedule = PoissonSchedule.from_mean_interval(mean_interval, seed=0)
            assert schedule.rate == pytest.approx(1.0 / mean_interval)
