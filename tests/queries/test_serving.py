"""Unit tests for the query-serving engine (warm start, drift guard, multi-k)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import StreamingConfig
from repro.core.driver import (
    CachedCoresetTreeClusterer,
    CoresetTreeClusterer,
    RecursiveCachedClusterer,
)
from repro.core.online_cc import OnlineCCClusterer
from repro.coreset.bucket import WeightedPointSet
from repro.kmeans.cost import kmeans_cost
from repro.queries.serving import QueryEngine


def blob_set(seed: int = 0, n: int = 400, d: int = 5, spread: float = 12.0) -> WeightedPointSet:
    """Sample from a FIXED mixture; ``seed`` only varies the sample, not the blobs."""
    centers = np.random.default_rng(1234).normal(scale=spread, size=(4, d))
    rng = np.random.default_rng(seed)
    points = centers[rng.integers(0, 4, n)] + rng.normal(size=(n, d))
    return WeightedPointSet.from_points(points)


class TestQueryEngineBasics:
    def test_first_query_is_cold(self):
        engine = QueryEngine(n_init=2, max_iterations=5)
        solution = engine.solve(blob_set(), 4, np.random.default_rng(0))
        assert not solution.warm_start
        assert engine.cold_queries == 1
        assert engine.warm_queries == 0

    def test_second_query_is_warm_on_static_data(self):
        engine = QueryEngine(n_init=2, max_iterations=5)
        rng = np.random.default_rng(0)
        engine.solve(blob_set(), 4, rng)
        solution = engine.solve(blob_set(seed=1), 4, rng)
        assert solution.warm_start
        assert engine.warm_queries == 1

    def test_warm_query_leaves_rng_untouched(self):
        engine = QueryEngine(n_init=2, max_iterations=5)
        rng = np.random.default_rng(0)
        engine.solve(blob_set(), 4, rng)
        state_before = rng.bit_generator.state
        solution = engine.solve(blob_set(seed=1), 4, rng)
        assert solution.warm_start
        assert rng.bit_generator.state == state_before

    def test_disabled_warm_start_always_cold(self):
        engine = QueryEngine(n_init=2, max_iterations=5, warm_start=False)
        rng = np.random.default_rng(0)
        for seed in range(3):
            solution = engine.solve(blob_set(seed=seed), 4, rng)
            assert not solution.warm_start
        assert engine.cold_queries == 3
        assert engine.warm_queries == 0

    def test_drift_triggers_cold_fallback(self):
        engine = QueryEngine(n_init=2, max_iterations=5, drift_ratio=1.5)
        rng = np.random.default_rng(0)
        engine.solve(blob_set(), 4, rng)
        # A wildly different distribution: previous centers are useless.
        shifted = WeightedPointSet.from_points(
            np.random.default_rng(9).normal(loc=500.0, scale=40.0, size=(400, 5))
        )
        solution = engine.solve(shifted, 4, rng)
        assert not solution.warm_start
        assert solution.drift_fallback
        assert engine.drift_fallbacks == 1

    def test_solution_cost_matches_centers(self):
        engine = QueryEngine(n_init=2, max_iterations=5)
        data = blob_set()
        solution = engine.solve(data, 4, np.random.default_rng(0))
        expected = kmeans_cost(data.points, solution.centers, data.weights)
        assert solution.cost == pytest.approx(expected, rel=1e-9)

    def test_empty_coreset_raises(self):
        engine = QueryEngine()
        with pytest.raises(ValueError):
            engine.solve(WeightedPointSet.empty(3), 2, np.random.default_rng(0))

    def test_tiny_coreset_pads_to_k(self):
        engine = QueryEngine(n_init=2)
        tiny = WeightedPointSet.from_points(np.ones((2, 3)))
        solution = engine.solve(tiny, 5, np.random.default_rng(0))
        assert solution.centers.shape == (5, 3)

    def test_reset_forgets_warm_state(self):
        engine = QueryEngine(n_init=2, max_iterations=5)
        rng = np.random.default_rng(0)
        engine.solve(blob_set(), 4, rng)
        engine.reset()
        solution = engine.solve(blob_set(seed=1), 4, rng)
        assert not solution.warm_start

    def test_scheduled_refresh_reanchors_after_warm_streak(self):
        engine = QueryEngine(n_init=2, max_iterations=5, refresh_interval=3)
        rng = np.random.default_rng(0)
        engine.solve(blob_set(), 4, rng)  # cold
        for seed in (1, 2, 3):  # exactly refresh_interval warm serves
            assert engine.solve(blob_set(seed=seed), 4, rng).warm_start
        # The next query after a full warm streak is a cold re-anchor.
        solution = engine.solve(blob_set(seed=4), 4, rng)
        assert not solution.warm_start
        assert not solution.drift_fallback
        assert engine.refreshes == 1
        assert engine.warm_queries == 3
        # The streak restarts after the re-anchor.
        assert engine.solve(blob_set(seed=5), 4, rng).warm_start

    def test_force_cold_runs_cold_path_and_reanchors(self):
        engine = QueryEngine(n_init=2, max_iterations=5)
        rng = np.random.default_rng(0)
        engine.solve(blob_set(), 4, rng)
        solution = engine.solve(blob_set(seed=1), 4, rng, force_cold=True)
        assert not solution.warm_start
        assert not solution.drift_fallback
        assert engine.cold_queries == 2
        assert engine.refreshes == 0 and engine.drift_fallbacks == 0

    def test_refresh_interval_one_alternates(self):
        engine = QueryEngine(n_init=2, max_iterations=5, refresh_interval=1)
        rng = np.random.default_rng(0)
        engine.solve(blob_set(), 4, rng)  # cold
        assert engine.solve(blob_set(seed=1), 4, rng).warm_start  # streak 1
        assert not engine.solve(blob_set(seed=2), 4, rng).warm_start  # re-anchor
        assert engine.solve(blob_set(seed=3), 4, rng).warm_start

    def test_refresh_disabled_with_none(self):
        engine = QueryEngine(n_init=2, max_iterations=5, refresh_interval=None)
        rng = np.random.default_rng(0)
        engine.solve(blob_set(), 4, rng)
        for seed in range(1, 12):
            assert engine.solve(blob_set(seed=seed), 4, rng).warm_start
        assert engine.refreshes == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QueryEngine(n_init=0)
        with pytest.raises(ValueError):
            QueryEngine(drift_ratio=1.0)
        with pytest.raises(ValueError):
            QueryEngine(refresh_interval=0)


class TestSolveMulti:
    def test_per_k_solutions_and_states(self):
        engine = QueryEngine(n_init=2, max_iterations=5)
        rng = np.random.default_rng(0)
        data = blob_set()
        first = engine.solve_multi(data, (2, 4, 6), rng)
        assert set(first) == {2, 4, 6}
        for k, solution in first.items():
            assert solution.centers.shape == (k, data.points.shape[1])
            assert not solution.warm_start
        second = engine.solve_multi(blob_set(seed=1), (2, 4, 6), rng)
        assert all(solution.warm_start for solution in second.values())

    def test_larger_k_never_costs_more(self):
        engine = QueryEngine(n_init=3, max_iterations=10)
        data = blob_set()
        solutions = engine.solve_multi(data, (2, 8), np.random.default_rng(0))
        assert solutions[8].cost <= solutions[2].cost * 1.0 + 1e-9

    def test_empty_ks_raises(self):
        engine = QueryEngine()
        with pytest.raises(ValueError):
            engine.solve_multi(blob_set(), (), np.random.default_rng(0))


class TestDriverIntegration:
    @staticmethod
    def _stream(seed: int = 0, n: int = 3000, d: int = 6) -> np.ndarray:
        """Sample from a FIXED mixture; ``seed`` only varies the sample."""
        centers = np.random.default_rng(4321).normal(scale=15.0, size=(5, d))
        rng = np.random.default_rng(seed)
        return centers[rng.integers(0, 5, n)] + rng.normal(size=(n, d))

    @pytest.mark.parametrize(
        "factory",
        [CoresetTreeClusterer, CachedCoresetTreeClusterer, RecursiveCachedClusterer],
    )
    def test_query_stats_are_recorded(self, factory):
        clusterer = factory(StreamingConfig(k=5, coreset_size=200, n_init=2, seed=0))
        clusterer.insert_batch(self._stream())
        assert clusterer.last_query_stats is None
        first = clusterer.query()
        assert not first.warm_start
        assert first.stats is not None
        assert first.stats.coreset_points == first.coreset_points
        assert first.stats.assembly_seconds >= 0.0
        assert first.stats.solve_seconds >= 0.0
        clusterer.insert_batch(self._stream(seed=1))
        second = clusterer.query()
        assert second.warm_start
        assert clusterer.query_engine.warm_queries == 1
        assert clusterer.last_query_stats is second.stats

    def test_cc_stats_expose_cache_counters(self):
        clusterer = CachedCoresetTreeClusterer(
            StreamingConfig(k=5, coreset_size=200, n_init=2, seed=0)
        )
        clusterer.insert_batch(self._stream())
        result = clusterer.query()
        stats = clusterer.structure.cache_stats()
        assert stats is not None
        assert result.stats is not None
        assert result.stats.cache_misses == stats.misses
        assert result.stats.cache_hits == stats.hits
        assert stats.lookups == stats.hits + stats.misses

    def test_rcc_cache_stats_aggregate(self):
        clusterer = RecursiveCachedClusterer(
            StreamingConfig(k=5, coreset_size=100, n_init=2, seed=0), nesting_depth=2
        )
        clusterer.insert_batch(self._stream(n=4000))
        for _ in range(3):
            clusterer.query()
            clusterer.insert_batch(self._stream(seed=2, n=500))
        stats = clusterer.structure.cache_stats()
        assert stats is not None
        assert stats.lookups > 0

    def test_ct_has_no_cache_stats(self):
        clusterer = CoresetTreeClusterer(StreamingConfig(k=5, coreset_size=200, seed=0))
        clusterer.insert_batch(self._stream())
        assert clusterer.structure.cache_stats() is None
        result = clusterer.query()
        assert result.stats is not None
        assert result.stats.cache_hits == 0
        assert result.stats.cache_misses == 0

    def test_driver_multi_k_matches_kmeans_shapes(self):
        clusterer = CachedCoresetTreeClusterer(
            StreamingConfig(k=8, coreset_size=200, n_init=2, seed=0)
        )
        stream = self._stream()
        clusterer.insert_batch(stream)
        results = clusterer.query_multi_k((3, 5, 8))
        assert set(results) == {3, 5, 8}
        for k, result in results.items():
            assert result.centers.shape == (k, stream.shape[1])
            cost = kmeans_cost(stream, result.centers)
            assert np.isfinite(cost) and cost > 0

    def test_multi_k_stats_are_amortized_shares(self):
        clusterer = CachedCoresetTreeClusterer(
            StreamingConfig(k=8, coreset_size=200, n_init=2, seed=0)
        )
        clusterer.insert_batch(self._stream())
        results = clusterer.query_multi_k((3, 5, 8))
        assemblies = {result.stats.assembly_seconds for result in results.values()}
        solves = {result.stats.solve_seconds for result in results.values()}
        # Every k carries the same 1/len(ks) share, so summing over the sweep
        # reproduces the sweep's real wall-clock instead of overcounting it.
        assert len(assemblies) == 1 and len(solves) == 1
        assert all(share > 0 for share in assemblies | solves)

    def test_onlinecc_multi_k_does_not_touch_online_state(self):
        clusterer = OnlineCCClusterer(StreamingConfig(k=5, coreset_size=200, n_init=2, seed=0))
        stream = self._stream()
        clusterer.insert_batch(stream)
        clusterer.query()  # establishes the online bounds via a fallback
        phi_now, phi_prev = clusterer.cost_bound, clusterer._phi_prev
        fallbacks = clusterer.fallback_count
        results = clusterer.query_multi_k((3, 5))
        assert set(results) == {3, 5}
        assert clusterer.cost_bound == phi_now
        assert clusterer._phi_prev == phi_prev
        assert clusterer.fallback_count == fallbacks

    def test_warm_start_disabled_via_config(self):
        config = StreamingConfig(k=5, coreset_size=200, n_init=2, seed=0, warm_start=False)
        clusterer = CachedCoresetTreeClusterer(config)
        clusterer.insert_batch(self._stream())
        clusterer.query()
        clusterer.query()
        assert clusterer.query_engine.warm_queries == 0
        assert clusterer.query_engine.cold_queries == 2

    def test_config_rejects_bad_drift_ratio(self):
        with pytest.raises(ValueError):
            StreamingConfig(k=3, warm_start_drift_ratio=0.9)
