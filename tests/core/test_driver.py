"""Unit tests for the stream-clustering driver and the CT/CC/RCC clusterers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import StreamingConfig
from repro.core.driver import (
    CachedCoresetTreeClusterer,
    CoresetTreeClusterer,
    RecursiveCachedClusterer,
)
from repro.kmeans.cost import kmeans_cost


ALL_CLUSTERERS = [CoresetTreeClusterer, CachedCoresetTreeClusterer, RecursiveCachedClusterer]


class TestStreamingConfig:
    def test_default_bucket_size_is_20k(self):
        config = StreamingConfig(k=30)
        assert config.bucket_size == 600

    def test_explicit_bucket_size(self):
        config = StreamingConfig(k=10, coreset_size=250)
        assert config.bucket_size == 250

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"k": 5, "merge_degree": 1},
            {"k": 5, "coreset_size": 0},
            {"k": 5, "n_init": 0},
            {"k": 5, "lloyd_iterations": -1},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            StreamingConfig(**kwargs)

    def test_make_constructor_uses_config(self):
        config = StreamingConfig(k=7, coreset_size=99, coreset_method="uniform", seed=3)
        constructor = config.make_constructor()
        assert constructor.coreset_size == 99
        assert constructor.config.method == "uniform"


class TestDriverBatching:
    def test_points_buffered_until_bucket_full(self, small_config):
        clusterer = CoresetTreeClusterer(small_config)
        for i in range(small_config.bucket_size - 1):
            clusterer.insert(np.array([float(i), 0.0]))
        assert clusterer.structure.num_base_buckets == 0
        clusterer.insert(np.array([0.0, 0.0]))
        assert clusterer.structure.num_base_buckets == 1

    def test_insert_many_equivalent_to_insert_loop(self, small_config, blob_points):
        a = CoresetTreeClusterer(small_config)
        b = CoresetTreeClusterer(small_config)
        subset = blob_points[:170]
        a.insert_many(subset)
        for row in subset:
            b.insert(row)
        assert a.points_seen == b.points_seen == 170
        assert a.structure.num_base_buckets == b.structure.num_base_buckets

    def test_points_seen_counts_everything(self, small_config, blob_points):
        clusterer = CachedCoresetTreeClusterer(small_config)
        clusterer.insert_many(blob_points[:333])
        assert clusterer.points_seen == 333

    def test_dimension_mismatch_raises(self, small_config):
        clusterer = CoresetTreeClusterer(small_config)
        clusterer.insert(np.zeros(3))
        with pytest.raises(ValueError, match="dimension"):
            clusterer.insert(np.zeros(4))
        with pytest.raises(ValueError, match="dimension"):
            clusterer.insert_many(np.zeros((2, 5)))

    def test_insert_many_empty_is_noop(self, small_config):
        clusterer = CoresetTreeClusterer(small_config)
        clusterer.insert_many(np.empty((0, 2)))
        assert clusterer.points_seen == 0

    def test_insert_batch_equivalent_to_insert_loop(self, small_config, blob_points):
        a = CoresetTreeClusterer(small_config)
        b = CoresetTreeClusterer(small_config)
        subset = blob_points[:470]
        a.insert_batch(subset)
        for row in subset:
            b.insert(row)
        assert a.points_seen == b.points_seen == 470
        assert a.structure.num_base_buckets == b.structure.num_base_buckets
        assert a.stored_points() == b.stored_points()
        np.testing.assert_array_equal(a.query().centers, b.query().centers)

    def test_full_buckets_are_zero_copy_slices(self, small_config):
        # The vectorized path must slice aligned full buckets straight out of
        # the incoming array: the level-0 bucket's points share memory with
        # the caller's batch, proving no per-point copies happened.
        m = small_config.bucket_size
        arr = np.random.default_rng(0).normal(size=(m, 2))
        clusterer = CoresetTreeClusterer(small_config)
        clusterer.insert_batch(arr)
        level0 = clusterer.tree.buckets_at_level(0)
        assert len(level0) == 1
        assert np.shares_memory(level0[0].data.points, arr)

    def test_ragged_head_block_is_copied(self, small_config):
        # A bucket completed from a partially-filled buffer cannot alias the
        # input (the buffer is reused), so it must be a copy.
        m = small_config.bucket_size
        clusterer = CoresetTreeClusterer(small_config)
        clusterer.insert(np.zeros(2))
        arr = np.random.default_rng(1).normal(size=(m - 1, 2))
        clusterer.insert_batch(arr)
        level0 = clusterer.tree.buckets_at_level(0)
        assert len(level0) == 1
        assert not np.shares_memory(level0[0].data.points, arr)

    def test_insert_batch_1d_input(self, small_config):
        clusterer = CoresetTreeClusterer(small_config)
        clusterer.insert_batch(np.zeros(3))
        assert clusterer.points_seen == 1
        assert clusterer.dimension == 3

    def test_insert_batch_empty_1d_does_not_poison_dimension(self, small_config):
        # Regression: an empty 1-D array is an empty batch, not a single
        # 0-dimensional point — it must not lock the stream dimension to 0.
        clusterer = CoresetTreeClusterer(small_config)
        clusterer.insert_batch(np.array([]))
        assert clusterer.points_seen == 0
        assert clusterer.dimension is None
        clusterer.insert_batch(np.ones((5, 3)))
        assert clusterer.points_seen == 5
        assert clusterer.dimension == 3


class TestDriverQueries:
    @pytest.mark.parametrize("clusterer_cls", ALL_CLUSTERERS)
    def test_query_before_any_point_raises(self, small_config, clusterer_cls):
        clusterer = clusterer_cls(small_config)
        with pytest.raises(RuntimeError, match="before any point"):
            clusterer.query()

    @pytest.mark.parametrize("clusterer_cls", ALL_CLUSTERERS)
    def test_query_returns_k_centers(self, small_config, blob_points, clusterer_cls):
        clusterer = clusterer_cls(small_config)
        clusterer.insert_many(blob_points[:500])
        result = clusterer.query()
        assert result.centers.shape == (small_config.k, blob_points.shape[1])

    @pytest.mark.parametrize("clusterer_cls", ALL_CLUSTERERS)
    def test_query_includes_partial_bucket(self, small_config, clusterer_cls):
        # Fewer points than one bucket: the query must still work, answering
        # from the partial buffer alone.
        clusterer = clusterer_cls(small_config)
        rng = np.random.default_rng(0)
        clusterer.insert_many(rng.normal(size=(small_config.bucket_size - 5, 2)))
        result = clusterer.query()
        assert result.centers.shape[0] == small_config.k

    @pytest.mark.parametrize("clusterer_cls", ALL_CLUSTERERS)
    def test_clusters_separated_blobs_well(self, small_config, blob_points, blob_centers, clusterer_cls):
        clusterer = clusterer_cls(small_config)
        clusterer.insert_many(blob_points)
        result = clusterer.query()
        cost = kmeans_cost(blob_points, result.centers)
        reference = kmeans_cost(blob_points, blob_centers)
        assert cost <= 3.0 * reference

    def test_interleaved_queries_and_inserts(self, small_config, blob_points):
        clusterer = CachedCoresetTreeClusterer(small_config)
        chunk = 100
        for start in range(0, 1000, chunk):
            clusterer.insert_many(blob_points[start : start + chunk])
            result = clusterer.query()
            assert result.centers.shape[0] == small_config.k

    def test_stored_points_includes_buffer(self, small_config):
        clusterer = CoresetTreeClusterer(small_config)
        rng = np.random.default_rng(0)
        clusterer.insert_many(rng.normal(size=(30, 2)))
        assert clusterer.stored_points() == 30

    def test_cc_marks_cache_usage(self, small_config, blob_points):
        clusterer = CachedCoresetTreeClusterer(small_config)
        clusterer.insert_many(blob_points[:400])
        result = clusterer.query()
        assert result.from_cache

    def test_rcc_nesting_depth_forwarded(self, small_config):
        clusterer = RecursiveCachedClusterer(small_config, nesting_depth=1)
        assert clusterer.recursive_tree.nesting_depth == 1

    def test_reproducible_given_seed(self, blob_points):
        config = StreamingConfig(k=4, coreset_size=50, seed=5, n_init=2, lloyd_iterations=5)
        a = CachedCoresetTreeClusterer(config)
        b = CachedCoresetTreeClusterer(config)
        a.insert_many(blob_points[:600])
        b.insert_many(blob_points[:600])
        np.testing.assert_array_equal(a.query().centers, b.query().centers)
