"""Unit tests for the cached coreset tree (CC, Algorithm 3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cached_tree import CachedCoresetTree
from repro.core.numeral import prefixsum
from repro.coreset.bucket import Bucket, WeightedPointSet
from repro.coreset.construction import make_constructor


def _base_bucket(index: int, num_points: int = 30, dimension: int = 2) -> Bucket:
    rng = np.random.default_rng(index)
    return Bucket(
        data=WeightedPointSet.from_points(rng.normal(size=(num_points, dimension))),
        start=index,
        end=index,
        level=0,
    )


def _make_cc(r: int = 2, m: int = 30) -> CachedCoresetTree:
    constructor = make_constructor(k=3, coreset_size=m, seed=0)
    return CachedCoresetTree(constructor, merge_degree=r)


class TestCachedCoresetTreeQueries:
    def test_query_returns_coreset_of_size_m(self):
        cc = _make_cc(m=30)
        for n in range(1, 9):
            cc.insert_bucket(_base_bucket(n))
        coreset = cc.query_coreset()
        assert 0 < coreset.size <= 30

    def test_query_empty_structure(self):
        cc = _make_cc()
        coreset = cc.query_coreset()
        assert coreset.size == 0

    def test_query_bucket_spans_everything(self):
        cc = _make_cc()
        for n in range(1, 14):
            cc.insert_bucket(_base_bucket(n))
            bucket = cc.query_coreset_bucket()
            assert bucket.start == 1
            assert bucket.end == n

    @pytest.mark.parametrize("r", [2, 3])
    def test_cache_keys_follow_prefixsum(self, r):
        cc = _make_cc(r=r)
        for n in range(1, 40):
            cc.insert_bucket(_base_bucket(n))
            cc.query_coreset()
            expected = prefixsum(n, r) | {n}
            assert cc.cache.keys() <= expected
            assert n in cc.cache.keys()

    @pytest.mark.parametrize("r", [2, 3])
    def test_no_fallback_when_querying_every_bucket(self, r):
        """Lemma 4: with a query after every bucket, major(N) is always cached."""
        cc = _make_cc(r=r)
        for n in range(1, 60):
            cc.insert_bucket(_base_bucket(n))
            cc.query_coreset()
        assert cc.fallback_count == 0

    def test_fallback_used_when_queries_are_sparse(self):
        cc = _make_cc(r=2)
        # Insert many buckets, querying only once at a point where the needed
        # prefix was never cached.
        for n in range(1, 12):
            cc.insert_bucket(_base_bucket(n))
        cc.query_coreset()
        assert cc.fallback_count >= 1

    def test_repeated_query_same_n_served_from_cache(self):
        cc = _make_cc()
        for n in range(1, 6):
            cc.insert_bucket(_base_bucket(n))
        first = cc.query_coreset_bucket()
        before = cc.cached_answer_count
        second = cc.query_coreset_bucket()
        assert second is first
        assert cc.cached_answer_count == before + 1

    def test_level_bound_lemma5(self):
        """Lemma 5: the returned coreset level is at most ceil(2 log_r N) - 1."""
        for r in (2, 3):
            cc = _make_cc(r=r)
            for n in range(1, 65):
                cc.insert_bucket(_base_bucket(n))
                bucket = cc.query_coreset_bucket()
                if n == 1:
                    continue
                bound = math.ceil(2 * math.log(n, r))
                assert bucket.level <= max(bound, 1), f"r={r}, N={n}, level={bucket.level}"

    def test_memory_within_constant_factor_of_tree(self):
        cc = _make_cc(r=2, m=30)
        for n in range(1, 40):
            cc.insert_bucket(_base_bucket(n, num_points=30))
            cc.query_coreset()
        tree_points = cc.tree.stored_points()
        assert cc.stored_points() <= 3 * tree_points + 30

    def test_max_level_accounts_for_cache(self):
        cc = _make_cc()
        for n in range(1, 20):
            cc.insert_bucket(_base_bucket(n))
            cc.query_coreset()
        assert cc.max_level() >= cc.tree.max_level()


class TestCachedCoresetTreeUpdates:
    def test_update_identical_to_ct(self):
        """CC-Update is exactly CT-Update: same tree shape as a plain CT."""
        from repro.core.coreset_tree import CoresetTree

        constructor_a = make_constructor(k=3, coreset_size=30, seed=0)
        constructor_b = make_constructor(k=3, coreset_size=30, seed=0)
        cc = CachedCoresetTree(constructor_a, merge_degree=3)
        ct = CoresetTree(constructor_b, merge_degree=3)
        for n in range(1, 30):
            cc.insert_bucket(_base_bucket(n))
            ct.insert_bucket(_base_bucket(n))
            assert [len(level) for level in cc.tree.levels] == [
                len(level) for level in ct.levels
            ]

    def test_num_base_buckets(self):
        cc = _make_cc()
        for n in range(1, 6):
            cc.insert_bucket(_base_bucket(n))
        assert cc.num_base_buckets == 5

    def test_merge_degree_property(self):
        assert _make_cc(r=4).merge_degree == 4
