"""Unit tests for the OnlineCC hybrid clusterer (Algorithm 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import StreamingConfig
from repro.core.online_cc import OnlineCCClusterer
from repro.kmeans.cost import kmeans_cost


@pytest.fixture()
def config() -> StreamingConfig:
    return StreamingConfig(k=4, coreset_size=50, n_init=2, lloyd_iterations=5, seed=2)


class TestOnlineCCConstruction:
    def test_invalid_threshold_raises(self, config):
        with pytest.raises(ValueError, match="switch_threshold"):
            OnlineCCClusterer(config, switch_threshold=1.0)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.2, 1.5])
    def test_invalid_epsilon_raises(self, config, epsilon):
        with pytest.raises(ValueError, match="epsilon"):
            OnlineCCClusterer(config, coreset_epsilon=epsilon)

    def test_query_before_points_raises(self, config):
        clusterer = OnlineCCClusterer(config)
        with pytest.raises(RuntimeError, match="before any point"):
            clusterer.query()


class TestOnlineCCBehaviour:
    def test_first_query_falls_back_to_cc(self, config, blob_points):
        clusterer = OnlineCCClusterer(config)
        clusterer.insert_many(blob_points[:200])
        result = clusterer.query()
        assert clusterer.fallback_count == 1
        assert not result.from_cache
        assert result.coreset_points > 0

    def test_subsequent_queries_use_fast_path_on_stationary_data(self, config, blob_points):
        # Warm up on most of the stream first so that the per-query growth of
        # the cost bound (about 100 new points per 1600 seen) stays well below
        # the fallback threshold.
        clusterer = OnlineCCClusterer(config, switch_threshold=2.0)
        clusterer.insert_many(blob_points[:1600])
        clusterer.query()  # initial fallback
        fast_before = clusterer.fast_answer_count
        for start in range(1600, 2000, 100):
            clusterer.insert_many(blob_points[start : start + 100])
            result = clusterer.query()
            assert result.centers.shape == (config.k, blob_points.shape[1])
        assert clusterer.fast_answer_count > fast_before
        assert clusterer.fallback_count <= 2

    def test_fast_path_answers_have_zero_coreset_points(self, config, blob_points):
        clusterer = OnlineCCClusterer(config)
        clusterer.insert_many(blob_points[:400])
        clusterer.query()
        clusterer.insert_many(blob_points[400:500])
        result = clusterer.query()
        if result.from_cache:
            assert result.coreset_points == 0

    def test_cost_bound_tracks_true_cost(self, config, blob_points):
        """Lemma 10 (empirical form): phi_now tracks the true cost of the online centers.

        The exact upper-bound guarantee assumes a perfect (k, eps)-coreset at
        each fallback; with a sampled coreset of modest size the bound can be
        off by the coreset's sampling error, so we check it within a factor of
        two rather than exactly.
        """
        clusterer = OnlineCCClusterer(config)
        seen = []
        for index, point in enumerate(blob_points[:1200]):
            clusterer.insert(point)
            seen.append(point)
            if (index + 1) % 200 == 0:
                result = clusterer.query()
                true_cost = kmeans_cost(np.vstack(seen), result.centers)
                assert clusterer.cost_bound >= 0.5 * true_cost

    def test_cost_bound_grows_monotonically_between_fallbacks(self, config, blob_points):
        """Between fallbacks phi_now only accumulates (it never decreases)."""
        clusterer = OnlineCCClusterer(config)
        clusterer.insert_many(blob_points[:600])
        clusterer.query()  # fallback establishes phi_prev / phi_now
        previous_bound = clusterer.cost_bound
        fallbacks = clusterer.fallback_count
        for start in range(600, 1200, 100):
            clusterer.insert_many(blob_points[start : start + 100])
            if clusterer.fallback_count == fallbacks:
                assert clusterer.cost_bound >= previous_bound
            previous_bound = clusterer.cost_bound
            fallbacks = clusterer.fallback_count

    def test_drift_triggers_fallback(self, config):
        """A sudden distribution shift inflates the bound and forces a CC fallback."""
        rng = np.random.default_rng(0)
        clusterer = OnlineCCClusterer(config, switch_threshold=1.2)
        # Phase 1: tight clusters near the origin.
        phase1 = rng.normal(scale=0.5, size=(600, 3))
        clusterer.insert_many(phase1)
        clusterer.query()
        fallbacks_before = clusterer.fallback_count
        # Phase 2: clusters move very far away; the old centers become awful.
        phase2 = rng.normal(loc=500.0, scale=0.5, size=(600, 3))
        clusterer.insert_many(phase2)
        clusterer.query()
        assert clusterer.fallback_count > fallbacks_before

    def test_higher_threshold_means_fewer_fallbacks(self, blob_points):
        config = StreamingConfig(k=4, coreset_size=50, n_init=2, lloyd_iterations=5, seed=2)
        strict = OnlineCCClusterer(config, switch_threshold=1.05)
        loose = OnlineCCClusterer(config, switch_threshold=6.0)
        for clusterer in (strict, loose):
            for start in range(0, 2000, 100):
                clusterer.insert_many(blob_points[start : start + 100])
                clusterer.query()
        assert loose.fallback_count <= strict.fallback_count

    def test_accuracy_matches_blobs(self, config, blob_points, blob_centers):
        clusterer = OnlineCCClusterer(config)
        for start in range(0, blob_points.shape[0], 200):
            clusterer.insert_many(blob_points[start : start + 200])
            clusterer.query()
        final = clusterer.query()
        cost = kmeans_cost(blob_points, final.centers)
        reference = kmeans_cost(blob_points, blob_centers)
        assert cost <= 3.0 * reference

    def test_stored_points_accounting(self, config, blob_points):
        clusterer = OnlineCCClusterer(config)
        clusterer.insert_many(blob_points[:75])
        # 75 buffered points (no full bucket yet) + k online centers.
        assert clusterer.stored_points() == 75 + config.k

    def test_dimension_mismatch_raises(self, config):
        clusterer = OnlineCCClusterer(config)
        clusterer.insert(np.zeros(3))
        with pytest.raises(ValueError, match="dimension"):
            clusterer.insert(np.zeros(5))

    def test_points_seen(self, config, blob_points):
        clusterer = OnlineCCClusterer(config)
        clusterer.insert_many(blob_points[:123])
        assert clusterer.points_seen == 123
