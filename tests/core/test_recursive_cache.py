"""Unit tests for the recursive coreset cache (RCC, Algorithms 4-6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recursive_cache import RecursiveCachedTree, merge_degree_for_order
from repro.coreset.bucket import Bucket, WeightedPointSet
from repro.coreset.construction import make_constructor


def _base_bucket(index: int, num_points: int = 20, dimension: int = 2) -> Bucket:
    rng = np.random.default_rng(index)
    return Bucket(
        data=WeightedPointSet.from_points(rng.normal(size=(num_points, dimension))),
        start=index,
        end=index,
        level=0,
    )


def _make_rcc(depth: int = 2, m: int = 20) -> RecursiveCachedTree:
    constructor = make_constructor(k=3, coreset_size=m, seed=0)
    return RecursiveCachedTree(constructor, nesting_depth=depth)


class TestMergeDegreeForOrder:
    def test_values(self):
        assert merge_degree_for_order(0) == 2
        assert merge_degree_for_order(1) == 4
        assert merge_degree_for_order(2) == 16
        assert merge_degree_for_order(3) == 256

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            merge_degree_for_order(-1)


class TestRecursiveCachedTree:
    def test_empty_query(self):
        rcc = _make_rcc()
        assert rcc.query_coreset_bucket() is None
        assert rcc.query_coreset().size == 0

    def test_query_spans_everything(self):
        rcc = _make_rcc(depth=1)
        for n in range(1, 25):
            rcc.insert_bucket(_base_bucket(n))
            bucket = rcc.query_coreset_bucket()
            assert bucket is not None
            assert bucket.start == 1
            assert bucket.end == n

    def test_query_size_bounded_by_m(self):
        rcc = _make_rcc(depth=1, m=20)
        for n in range(1, 20):
            rcc.insert_bucket(_base_bucket(n, num_points=20))
        coreset = rcc.query_coreset()
        assert 0 < coreset.size <= 20

    @pytest.mark.parametrize("depth", [0, 1, 2])
    def test_total_weight_roughly_preserved(self, depth):
        rcc = _make_rcc(depth=depth, m=40)
        total = 0
        for n in range(1, 21):
            bucket = _base_bucket(n, num_points=40)
            total += bucket.size
            rcc.insert_bucket(bucket)
        coreset = rcc.query_coreset()
        assert coreset.total_weight == pytest.approx(total, rel=0.45)

    def test_num_base_buckets(self):
        rcc = _make_rcc()
        for n in range(1, 8):
            rcc.insert_bucket(_base_bucket(n))
        assert rcc.num_base_buckets == 7

    def test_insert_wrong_index_raises(self):
        rcc = _make_rcc()
        rcc.insert_bucket(_base_bucket(1))
        with pytest.raises(ValueError, match="expected base bucket"):
            rcc.insert_bucket(_base_bucket(3))

    def test_insert_non_base_level_raises(self):
        rcc = _make_rcc()
        bad = Bucket(
            data=WeightedPointSet.from_points(np.zeros((2, 2))), start=1, end=1, level=2
        )
        with pytest.raises(ValueError, match="base bucket"):
            rcc.insert_bucket(bad)

    def test_invalid_depth_raises(self):
        constructor = make_constructor(k=3, coreset_size=10, seed=0)
        with pytest.raises(ValueError):
            RecursiveCachedTree(constructor, nesting_depth=-1)

    def test_level_stays_small_with_high_merge_degree(self):
        """With a large outer merge degree, queried coresets stay at O(1) level."""
        rcc = _make_rcc(depth=2, m=20)  # outer merge degree 16
        max_level = 0
        for n in range(1, 40):
            rcc.insert_bucket(_base_bucket(n))
            bucket = rcc.query_coreset_bucket()
            assert bucket is not None
            max_level = max(max_level, bucket.level)
        # The level must stay far below the linear-in-N growth that naive
        # repeated merging would produce (39 buckets -> level 39).
        assert max_level <= 8

    def test_deeper_nesting_uses_more_memory(self):
        shallow = _make_rcc(depth=0, m=20)
        deep = _make_rcc(depth=2, m=20)
        for n in range(1, 30):
            shallow.insert_bucket(_base_bucket(n))
            deep.insert_bucket(_base_bucket(n))
            shallow.query_coreset()
            deep.query_coreset()
        assert deep.stored_points() >= shallow.stored_points()

    def test_merge_degree_property(self):
        assert _make_rcc(depth=2).merge_degree == 16

    def test_query_after_every_bucket_is_consistent(self):
        """Query results remain valid across a long run with caching in effect."""
        rcc = _make_rcc(depth=1, m=30)
        for n in range(1, 50):
            rcc.insert_bucket(_base_bucket(n, num_points=30))
            bucket = rcc.query_coreset_bucket()
            assert bucket is not None
            assert bucket.data.size > 0
            assert bucket.end == n

    def test_max_level_reported(self):
        rcc = _make_rcc(depth=1)
        for n in range(1, 18):
            rcc.insert_bucket(_base_bucket(n))
        rcc.query_coreset()
        assert rcc.max_level() >= 1
