"""Registry-driven contract suite: every registered algorithm, same promises.

Parameterized over ``default_registry().names()`` so a newly registered
algorithm is covered automatically — no per-algorithm test edits.  The four
contracts:

1. **Batch equivalence** — ``insert_batch`` leaves the algorithm in exactly
   the state a per-point ``insert`` loop produces (bit-identical query
   answers).
2. **Checkpoint continuity** — snapshot → restore → continue ingesting is
   bit-identical to a process that never stopped.
3. **Multi-k amortization** — ``query_multi_k`` answers every ``k`` with
   correctly-shaped centers and per-k stats whose amortized time shares sum
   to (at most) the sweep's wall-clock; algorithms tied to a single ``k``
   may raise :class:`NotImplementedError` instead.
4. **Serving stats** — ``collect_serving_stats`` is total: engine-backed
   algorithms populate warm/cold counters, baselines yield zeros, nothing
   raises.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.harness import collect_serving_stats, make_algorithm
from repro.core.base import StreamingConfig
from repro.core.registry import default_registry

ALL_NAMES = default_registry().names()
ENGINE_BACKED = ("ct", "cc", "rcc", "window", "decay", "soft")


def small_config(seed: int = 3) -> StreamingConfig:
    return StreamingConfig(
        k=3, coreset_size=40, merge_degree=2, n_init=2, lloyd_iterations=4, seed=seed
    )


def stream(n: int = 450, d: int = 4, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=8.0, size=(3, d))
    labels = rng.integers(0, 3, size=n)
    return centers[labels] + rng.normal(size=(n, d))


@pytest.mark.parametrize("name", ALL_NAMES)
class TestRegistryContracts:
    def test_batch_ingest_matches_per_point_bitwise(self, name):
        points = stream()
        batched = make_algorithm(name, small_config())
        batched.insert_batch(points)
        looped = make_algorithm(name, small_config())
        for row in points:
            looped.insert(row)
        assert batched.points_seen == looped.points_seen == points.shape[0]
        assert batched.stored_points() == looped.stored_points()
        np.testing.assert_array_equal(
            batched.query().centers, looped.query().centers
        )

    def test_snapshot_restore_ingest_bit_identical(self, name, tmp_path):
        points = stream()
        head, tail = points[:300], points[300:]
        live = make_algorithm(name, small_config())
        live.insert_batch(head)
        live.snapshot(tmp_path / "ckpt")
        from repro.checkpoint import load_checkpoint

        restored = load_checkpoint(tmp_path / "ckpt")
        live.insert_batch(tail)
        restored.insert_batch(tail)
        np.testing.assert_array_equal(
            live.query().centers, restored.query().centers
        )

    def test_query_multi_k_amortizes_or_declines(self, name):
        points = stream()
        algorithm = make_algorithm(name, small_config())
        algorithm.insert_batch(points)
        ks = (2, 3, 4)
        start = time.perf_counter()
        try:
            sweep = algorithm.query_multi_k(ks)
        except NotImplementedError:
            # Algorithms whose state is tied to one k (the baselines) are
            # allowed to decline batched sweeps — but never with a crash.
            return
        elapsed = time.perf_counter() - start
        assert set(sweep) == set(ks)
        for k, result in sweep.items():
            assert result.centers.shape[0] == k
        stats = [result.stats for result in sweep.values() if result.stats is not None]
        if stats:
            # Per-k stats carry amortized shares of the sweep's one assembly
            # and one solve section; the shares are equal and sum to the
            # internally timed section, which the outer wall-clock bounds.
            shares = {round(s.assembly_seconds, 12) for s in stats}
            assert len(shares) == 1
            total = sum(s.total_seconds for s in stats)
            assert total <= elapsed + 1e-6

    def test_collect_serving_stats_is_total(self, name):
        points = stream()
        algorithm = make_algorithm(name, small_config())
        algorithm.insert_batch(points)
        for _ in range(3):
            algorithm.query()
        serving = collect_serving_stats(algorithm)
        assert serving.warm_queries >= 0 and serving.cold_queries >= 0
        if name in ENGINE_BACKED:
            # Engine-backed algorithms must account for every query served —
            # the window/decay regression this redesign fixed for good.
            assert serving.warm_queries + serving.cold_queries == 3
            assert serving.cold_queries >= 1
        elif name == "onlinecc":
            # OnlineCC answers steady-state queries from its sequential fast
            # path; only the anchoring/fallback queries reach the engine.
            assert 1 <= serving.warm_queries + serving.cold_queries <= 3
        structure = getattr(algorithm, "structure", None)
        if structure is not None:
            cache = structure.cache_stats()
            assert cache is None or cache.hits + cache.misses >= 0
