"""Unit tests for the coreset cache (prefixsum retention and eviction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import CoresetCache
from repro.core.numeral import major, prefixsum
from repro.coreset.bucket import Bucket, WeightedPointSet


def _prefix_bucket(end: int, size: int = 5, level: int = 1) -> Bucket:
    return Bucket(
        data=WeightedPointSet.from_points(np.zeros((size, 2))),
        start=1,
        end=end,
        level=level,
    )


class TestCoresetCache:
    def test_store_and_lookup(self):
        cache = CoresetCache(merge_degree=2)
        bucket = _prefix_bucket(4)
        cache.store(bucket)
        assert 4 in cache
        assert cache.lookup(4) is bucket
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = CoresetCache(merge_degree=2)
        assert cache.lookup(3) is None
        assert cache.misses == 1

    def test_store_rejects_non_prefix_span(self):
        cache = CoresetCache(merge_degree=2)
        bad = Bucket(
            data=WeightedPointSet.from_points(np.zeros((2, 2))), start=2, end=5, level=1
        )
        with pytest.raises(ValueError, match="prefix"):
            cache.store(bad)

    def test_eviction_keeps_prefixsum_and_current(self):
        cache = CoresetCache(merge_degree=2)
        for end in range(1, 12):
            cache.store(_prefix_bucket(end))
        n = 11
        dropped = cache.evict_stale(n)
        expected_keys = (prefixsum(n, 2) | {n}) & set(range(1, 12))
        assert cache.keys() == expected_keys
        assert dropped == 11 - len(expected_keys)

    def test_stored_points(self):
        cache = CoresetCache(merge_degree=3)
        cache.store(_prefix_bucket(1, size=4))
        cache.store(_prefix_bucket(3, size=6))
        assert cache.stored_points() == 10

    def test_clear(self):
        cache = CoresetCache(merge_degree=2)
        cache.store(_prefix_bucket(2))
        cache.clear()
        assert len(cache) == 0

    def test_buckets_listing_does_not_affect_stats(self):
        cache = CoresetCache(merge_degree=2)
        cache.store(_prefix_bucket(2))
        _ = cache.buckets()
        assert cache.hits == 0 and cache.misses == 0

    def test_invalid_merge_degree(self):
        with pytest.raises(ValueError):
            CoresetCache(merge_degree=1)

    def test_store_overwrites_same_key(self):
        cache = CoresetCache(merge_degree=2)
        first = _prefix_bucket(5, size=3)
        second = _prefix_bucket(5, size=9)
        cache.store(first)
        cache.store(second)
        assert len(cache) == 1
        assert cache.lookup(5).size == 9


class TestCacheInvariantUnderQueryEveryBucket:
    """Lemma 4: querying after every bucket keeps major(N, r) available."""

    @pytest.mark.parametrize("r", [2, 3, 4])
    def test_major_always_available(self, r):
        cache = CoresetCache(merge_degree=r)
        for n in range(1, 200):
            n1 = major(n, r)
            if n1 > 0:
                assert n1 in cache, f"major({n},{r})={n1} missing from cache"
            # Simulate the query: store the coreset for [1, n], then evict.
            cache.store(_prefix_bucket(n))
            cache.evict_stale(n)

    @pytest.mark.parametrize("r", [2, 3, 5])
    def test_cache_size_stays_logarithmic(self, r):
        cache = CoresetCache(merge_degree=r)
        import math

        for n in range(1, 500):
            cache.store(_prefix_bucket(n))
            cache.evict_stale(n)
            bound = int(math.log(n, r)) + 2
            assert len(cache) <= bound
