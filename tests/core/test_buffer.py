"""Unit tests for the preallocated BucketBuffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer import BucketBuffer


class TestBucketBufferBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BucketBuffer(0)

    def test_lazy_dimension(self):
        buffer = BucketBuffer(4)
        assert buffer.dimension is None
        buffer.append(np.array([1.0, 2.0]))
        assert buffer.dimension == 2
        assert buffer.size == 1

    def test_append_until_full(self):
        buffer = BucketBuffer(3, dimension=2)
        for i in range(3):
            assert not buffer.is_full
            buffer.append(np.array([float(i), 0.0]))
        assert buffer.is_full
        with pytest.raises(ValueError):
            buffer.append(np.zeros(2))

    def test_drain_copies_and_resets(self):
        buffer = BucketBuffer(3, dimension=2)
        buffer.append(np.array([1.0, 2.0]))
        buffer.append(np.array([3.0, 4.0]))
        block = buffer.drain()
        assert buffer.is_empty
        np.testing.assert_array_equal(block, [[1.0, 2.0], [3.0, 4.0]])
        # The drained block must survive buffer reuse.
        buffer.append(np.array([9.0, 9.0]))
        np.testing.assert_array_equal(block, [[1.0, 2.0], [3.0, 4.0]])

    def test_drain_empty_raises(self):
        with pytest.raises(ValueError):
            BucketBuffer(3, dimension=2).drain()

    def test_snapshot_does_not_reset(self):
        buffer = BucketBuffer(3, dimension=2)
        buffer.append(np.array([1.0, 2.0]))
        snap = buffer.snapshot()
        assert buffer.size == 1
        np.testing.assert_array_equal(snap, [[1.0, 2.0]])

    def test_snapshot_empty(self):
        assert BucketBuffer(3, dimension=2).snapshot().shape == (0, 2)

    def test_fill_consumes_up_to_capacity(self):
        buffer = BucketBuffer(4)
        arr = np.arange(12, dtype=float).reshape(6, 2)
        consumed = buffer.fill(arr)
        assert consumed == 4
        assert buffer.is_full
        consumed = buffer.fill(arr, offset=4)
        assert consumed == 0


class TestTakeFullBlocks:
    def test_pure_slicing_when_aligned(self):
        buffer = BucketBuffer(5)
        arr = np.arange(30, dtype=float).reshape(15, 2)
        blocks = buffer.take_full_blocks(arr)
        assert [b.shape[0] for b in blocks] == [5, 5, 5]
        assert buffer.is_empty
        # Aligned blocks are zero-copy views into the input.
        for block in blocks:
            assert np.shares_memory(block, arr)
        np.testing.assert_array_equal(np.vstack(blocks), arr)

    def test_ragged_head_and_tail(self):
        buffer = BucketBuffer(5, dimension=1)
        buffer.append(np.array([100.0]))
        buffer.append(np.array([101.0]))
        arr = np.arange(11, dtype=float).reshape(11, 1)
        blocks = buffer.take_full_blocks(arr)
        # 2 buffered + 11 incoming = 13 points -> 2 full buckets + 3 left over.
        assert [b.shape[0] for b in blocks] == [5, 5]
        assert buffer.size == 3
        combined = np.vstack(blocks + [buffer.snapshot()])
        np.testing.assert_array_equal(
            combined.ravel(), [100.0, 101.0] + list(range(11))
        )
        # The head block was drained from the buffer (a copy), the interior
        # block is a slice of the input.
        assert not np.shares_memory(blocks[0], arr)
        assert np.shares_memory(blocks[1], arr)

    def test_batch_smaller_than_remaining_space(self):
        buffer = BucketBuffer(10, dimension=1)
        buffer.append(np.array([0.0]))
        blocks = buffer.take_full_blocks(np.ones((3, 1)))
        assert blocks == []
        assert buffer.size == 4

    def test_empty_batch(self):
        buffer = BucketBuffer(4, dimension=2)
        assert buffer.take_full_blocks(np.empty((0, 2))) == []

    def test_matches_per_point_appends(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(137, 3))
        batch = BucketBuffer(8)
        batch_blocks = []
        pos = 0
        step_rng = np.random.default_rng(1)
        while pos < arr.shape[0]:
            step = int(step_rng.integers(1, 25))
            batch_blocks.extend(batch.take_full_blocks(arr[pos : pos + step]))
            pos += step
        point = BucketBuffer(8)
        point_blocks = []
        for row in arr:
            point.append(row)
            if point.is_full:
                point_blocks.append(point.drain())
        assert len(batch_blocks) == len(point_blocks)
        for a, b in zip(batch_blocks, point_blocks):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(batch.snapshot(), point.snapshot())
