"""Unit tests for the r-way merging coreset tree (CT)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coreset_tree import CoresetTree
from repro.core.numeral import digits
from repro.coreset.bucket import Bucket, WeightedPointSet
from repro.coreset.construction import make_constructor


def _base_bucket(index: int, num_points: int = 30, dimension: int = 2, seed: int | None = None) -> Bucket:
    rng = np.random.default_rng(index if seed is None else seed)
    return Bucket(
        data=WeightedPointSet.from_points(rng.normal(size=(num_points, dimension))),
        start=index,
        end=index,
        level=0,
    )


def _make_tree(r: int = 2, m: int = 30) -> CoresetTree:
    constructor = make_constructor(k=3, coreset_size=m, seed=0)
    return CoresetTree(constructor, merge_degree=r)


class TestCoresetTreeStructure:
    @pytest.mark.parametrize("r", [2, 3, 4])
    def test_bucket_counts_follow_base_r_digits(self, r):
        """The number of buckets per level equals the base-r digits of N."""
        tree = _make_tree(r=r)
        for n in range(1, 30):
            tree.insert_bucket(_base_bucket(n))
            per_level = {alpha: beta for beta, alpha in digits(n, r)}
            for level in range(tree.max_level() + 1):
                expected = per_level.get(level, 0)
                assert len(tree.buckets_at_level(level)) == expected, (
                    f"N={n}, level={level}"
                )

    def test_level_counts_match_figure1(self):
        """Reproduce Figure 1: a 3-way tree after 1, 4, 6, and 9 base buckets."""
        tree = _make_tree(r=3)
        snapshots = {}
        for n in range(1, 10):
            tree.insert_bucket(_base_bucket(n))
            snapshots[n] = [len(tree.buckets_at_level(j)) for j in range(3)]
        assert snapshots[1] == [1, 0, 0]
        assert snapshots[4] == [1, 1, 0]
        assert snapshots[6] == [0, 2, 0]
        assert snapshots[9] == [0, 0, 1]

    def test_active_buckets_cover_stream_contiguously(self):
        tree = _make_tree(r=3)
        for n in range(1, 25):
            tree.insert_bucket(_base_bucket(n))
            buckets = tree.active_buckets()
            assert buckets[0].start == 1
            assert buckets[-1].end == n
            for previous, current in zip(buckets, buckets[1:]):
                assert current.start == previous.end + 1

    def test_max_level_bounded_by_log(self):
        import math

        tree = _make_tree(r=2)
        for n in range(1, 70):
            tree.insert_bucket(_base_bucket(n))
            bound = math.ceil(math.log2(n)) if n > 1 else 0
            assert tree.max_level() <= bound

    def test_merge_count(self):
        # With r = 2 and N buckets, the number of merges equals N minus the
        # number of ones in N's binary representation.
        tree = _make_tree(r=2)
        total = 40
        for n in range(1, total + 1):
            tree.insert_bucket(_base_bucket(n))
        assert tree.merge_count == total - bin(total).count("1")

    def test_insert_wrong_index_raises(self):
        tree = _make_tree()
        tree.insert_bucket(_base_bucket(1))
        with pytest.raises(ValueError, match="expected base bucket"):
            tree.insert_bucket(_base_bucket(5))

    def test_insert_non_base_level_raises(self):
        tree = _make_tree()
        bad = Bucket(
            data=WeightedPointSet.from_points(np.zeros((2, 2))), start=1, end=1, level=1
        )
        with pytest.raises(ValueError, match="level-0"):
            tree.insert_bucket(bad)

    def test_invalid_merge_degree(self):
        constructor = make_constructor(k=3, coreset_size=10, seed=0)
        with pytest.raises(ValueError):
            CoresetTree(constructor, merge_degree=1)


class TestCoresetTreeQuery:
    def test_query_on_empty_tree(self):
        tree = _make_tree()
        result = tree.query_coreset()
        assert result.size == 0

    def test_query_unions_all_active_buckets(self):
        tree = _make_tree(r=2, m=30)
        for n in range(1, 8):
            tree.insert_bucket(_base_bucket(n))
        coreset = tree.query_coreset()
        expected = sum(b.size for b in tree.active_buckets())
        assert coreset.size == expected

    def test_query_preserves_total_weight_roughly(self):
        tree = _make_tree(r=2, m=40)
        total_points = 0
        for n in range(1, 17):
            bucket = _base_bucket(n, num_points=40)
            total_points += bucket.size
            tree.insert_bucket(bucket)
        coreset = tree.query_coreset()
        assert coreset.total_weight == pytest.approx(total_points, rel=0.3)

    def test_suffix_buckets(self):
        tree = _make_tree(r=2)
        for n in range(1, 11):
            tree.insert_bucket(_base_bucket(n))
        suffix = tree.suffix_buckets(after=8)
        assert all(b.start > 8 for b in suffix)
        covered = sorted((b.start, b.end) for b in suffix)
        assert covered[0][0] == 9
        assert covered[-1][1] == 10

    def test_stored_points_bounded(self):
        # Each level holds fewer than r buckets of at most m points.
        import math

        m, r = 30, 3
        tree = _make_tree(r=r, m=m)
        for n in range(1, 82):
            tree.insert_bucket(_base_bucket(n, num_points=m))
            levels = math.ceil(math.log(max(n, 2), r)) + 1
            assert tree.stored_points() <= m * (r - 1) * (levels + 1)

    def test_levels_property_returns_copies(self):
        tree = _make_tree()
        tree.insert_bucket(_base_bucket(1))
        levels = tree.levels
        levels[0].clear()
        assert len(tree.buckets_at_level(0)) == 1
