"""Unit tests for the algorithm registry and its typed options plumbing."""

from __future__ import annotations

import argparse

import pytest

from repro.core.base import StreamingConfig
from repro.core.registry import (
    AlgorithmRegistry,
    AlgorithmSpec,
    DecayOptions,
    NoOptions,
    OnlineCCOptions,
    RccOptions,
    SoftOptions,
    WindowOptions,
    default_registry,
)


@pytest.fixture()
def config() -> StreamingConfig:
    return StreamingConfig(k=3, coreset_size=40, n_init=2, lloyd_iterations=3, seed=0)


class TestDefaultRegistry:
    def test_registration_order_is_stable(self):
        assert default_registry().names() == (
            "sequential",
            "streamkm++",
            "ct",
            "cc",
            "rcc",
            "onlinecc",
            "window",
            "decay",
            "soft",
        )

    def test_singleton(self):
        assert default_registry() is default_registry()

    def test_lookup_is_case_insensitive_and_alias_aware(self):
        registry = default_registry()
        assert registry.get("CC").name == "cc"
        assert registry.get("streamkmpp").name == "streamkm++"
        assert "RCC" in registry
        assert "dbscan" not in registry

    def test_unknown_name_raises_keyerror_listing_names(self):
        with pytest.raises(KeyError, match="unknown algorithm 'dbscan'"):
            default_registry().get("dbscan")

    def test_shard_structures(self):
        registry = default_registry()
        assert registry.get("ct").shard_structure == "ct"
        assert registry.get("cc").shard_structure == "cc"
        assert registry.get("rcc").shard_structure == "rcc"
        for name in ("sequential", "streamkm++", "onlinecc", "window", "decay", "soft"):
            assert registry.get(name).shard_structure is None


class TestOptionsValidation:
    def test_defaults(self):
        assert RccOptions().nesting_depth == 3
        assert OnlineCCOptions().switch_threshold == 1.2
        assert WindowOptions().window_buckets == 10
        assert DecayOptions() == DecayOptions(decay=0.95, min_weight=1e-3)
        assert SoftOptions().fuzziness == 2.0

    @pytest.mark.parametrize(
        ("options_type", "kwargs"),
        [
            (RccOptions, {"nesting_depth": 0}),
            (OnlineCCOptions, {"switch_threshold": 1.0}),
            (WindowOptions, {"window_buckets": 0}),
            (DecayOptions, {"decay": 0.0}),
            (DecayOptions, {"decay": 1.5}),
            (DecayOptions, {"min_weight": 0.0}),
            (DecayOptions, {"min_weight": 1.0}),
            (SoftOptions, {"fuzziness": 1.0}),
        ],
    )
    def test_out_of_range_values_rejected(self, options_type, kwargs):
        with pytest.raises(ValueError):
            options_type(**kwargs)

    def test_options_for_builds_typed_instance(self):
        options = default_registry().options_for("rcc", nesting_depth=2)
        assert options == RccOptions(nesting_depth=2)

    def test_options_for_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="does not accept option"):
            default_registry().options_for("cc", nesting_depth=2)
        with pytest.raises(TypeError, match="window_buckets"):
            default_registry().options_for("window", fuzziness=2.0)


class TestCreate:
    def test_create_with_defaults(self, config):
        for name in default_registry().names():
            algorithm = default_registry().create(name, config)
            assert algorithm is not None

    def test_create_with_keyword_overrides(self, config):
        rcc = default_registry().create("rcc", config, nesting_depth=1)
        assert rcc.recursive_tree.nesting_depth == 1
        window = default_registry().create("window", config, window_buckets=2)
        assert window.window_buckets == 2
        soft = default_registry().create("soft", config, fuzziness=1.5)
        assert soft.fuzziness == 1.5

    def test_create_with_options_instance(self, config):
        rcc = default_registry().create("rcc", config, options=RccOptions(nesting_depth=2))
        assert rcc.recursive_tree.nesting_depth == 2

    def test_create_rejects_options_and_overrides_together(self, config):
        with pytest.raises(TypeError, match="not both"):
            default_registry().create(
                "rcc", config, options=RccOptions(), nesting_depth=2
            )

    def test_create_rejects_wrong_options_type(self, config):
        with pytest.raises(TypeError, match="expects RccOptions"):
            default_registry().create("rcc", config, options=WindowOptions())

    def test_sharded_create_for_tree_algorithms(self, config):
        engine = default_registry().create("cc", config, shards=2)
        try:
            assert engine.num_shards == 2
        finally:
            engine.close()

    @pytest.mark.parametrize("name", ["sequential", "onlinecc", "window", "decay", "soft"])
    def test_sharded_create_refused_for_unshardable(self, config, name):
        with pytest.raises(ValueError, match="does not support sharded ingestion"):
            default_registry().create(name, config, shards=2)


class TestCliIntegration:
    def test_add_cli_flags_generates_every_option_flag(self):
        parser = argparse.ArgumentParser()
        default_registry().add_cli_flags(parser)
        args = parser.parse_args([])
        for field in (
            "nesting_depth",
            "switch_threshold",
            "window_buckets",
            "decay",
            "min_weight",
            "fuzziness",
        ):
            assert getattr(args, field) is None  # default = use dataclass default

    def test_flag_types(self):
        parser = argparse.ArgumentParser()
        default_registry().add_cli_flags(parser)
        args = parser.parse_args(
            ["--nesting-depth", "2", "--fuzziness", "1.5", "--window-buckets", "7"]
        )
        assert args.nesting_depth == 2 and isinstance(args.nesting_depth, int)
        assert args.fuzziness == 1.5 and isinstance(args.fuzziness, float)
        assert args.window_buckets == 7 and isinstance(args.window_buckets, int)

    def test_cli_overrides_picks_only_explicit_values(self):
        parser = argparse.ArgumentParser()
        default_registry().add_cli_flags(parser)
        args = parser.parse_args(["--window-buckets", "5"])
        assert default_registry().cli_overrides("window", args) == {"window_buckets": 5}
        assert default_registry().cli_overrides("cc", args) == {}
        # Flags belonging to other algorithms are ignored for this one.
        assert default_registry().cli_overrides("soft", args) == {}

    def test_scenarios_doc_flag_table_in_sync(self):
        from pathlib import Path

        doc = Path(__file__).resolve().parents[2] / "docs" / "scenarios.md"
        text = doc.read_text()
        begin, end = "<!-- flag-table:begin -->", "<!-- flag-table:end -->"
        embedded = text.split(begin)[1].split(end)[0].strip()
        assert embedded == default_registry().render_flag_table().strip()

    def test_render_flag_table_lists_all_flags(self):
        table = default_registry().render_flag_table()
        for flag in (
            "--nesting-depth",
            "--switch-threshold",
            "--window-buckets",
            "--decay",
            "--min-weight",
            "--fuzziness",
        ):
            assert flag in table


class TestCustomRegistry:
    def test_register_rejects_duplicate_names(self):
        registry = AlgorithmRegistry()
        spec = AlgorithmSpec(name="x", summary="", factory=lambda c, o: None)
        registry.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(AlgorithmSpec(name="X", summary="", factory=lambda c, o: None))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(
                AlgorithmSpec(name="y", summary="", factory=lambda c, o: None, aliases=("x",))
            )

    def test_third_party_registration_flows_through(self, config):
        registry = AlgorithmRegistry()

        class Dummy:
            def __init__(self, cfg):
                self.k = cfg.k

        registry.register(
            AlgorithmSpec(
                name="dummy",
                summary="test-only",
                factory=lambda cfg, options: Dummy(cfg),
                options_type=NoOptions,
            )
        )
        assert registry.names() == ("dummy",)
        assert registry.create("dummy", config).k == config.k
