"""Unit tests for the base-r numeral decomposition (major/minor/prefixsum)."""

from __future__ import annotations

import pytest

from repro.core.numeral import digits, major, minor, num_nonzero_digits, prefixsum


class TestDigits:
    def test_paper_example(self):
        # 47 = 1*27 + 2*9 + 2*1 in base 3.
        assert digits(47, 3) == [(2, 0), (2, 2), (1, 3)]

    def test_zero(self):
        assert digits(0, 2) == []

    def test_reconstruction(self):
        for n in range(0, 200):
            for r in (2, 3, 5, 10):
                assert sum(beta * r**alpha for beta, alpha in digits(n, r)) == n

    def test_digit_bounds(self):
        for n in range(1, 300):
            for r in (2, 3, 4, 7):
                for beta, _ in digits(n, r):
                    assert 0 < beta < r

    @pytest.mark.parametrize("n,r", [(-1, 2), (5, 1), (5, 0)])
    def test_invalid_inputs(self, n, r):
        with pytest.raises(ValueError):
            digits(n, r)


class TestMinorMajor:
    def test_paper_example(self):
        assert minor(47, 3) == 2
        assert major(47, 3) == 45

    def test_single_term_has_zero_major(self):
        assert major(8, 2) == 0
        assert major(2 * 9, 3) == 0  # 2*3^2 is a single non-zero digit

    def test_zero(self):
        assert minor(0, 2) == 0
        assert major(0, 2) == 0

    def test_major_plus_minor_is_n(self):
        for n in range(0, 500):
            for r in (2, 3, 4):
                assert major(n, r) + minor(n, r) == n

    def test_minor_is_power_times_digit(self):
        # minor is always of the form beta * r^alpha with 0 < beta < r.
        for n in range(1, 300):
            for r in (2, 3, 5):
                m = minor(n, r)
                terms = digits(m, r)
                assert len(terms) == 1


class TestPrefixsum:
    def test_paper_example(self):
        assert prefixsum(47, 3) == {27, 45}

    def test_single_digit_empty(self):
        assert prefixsum(8, 2) == set()
        assert prefixsum(5, 10) == set()

    def test_zero_empty(self):
        assert prefixsum(0, 3) == set()

    def test_contains_major(self):
        for n in range(2, 400):
            for r in (2, 3, 4):
                if major(n, r) != 0:
                    assert major(n, r) in prefixsum(n, r)

    def test_fact2_prefix_subset(self):
        # Fact 2: prefixsum(N + 1, r) is a subset of prefixsum(N, r) + {N}.
        for r in (2, 3, 4, 5):
            for n in range(1, 400):
                assert prefixsum(n + 1, r) <= (prefixsum(n, r) | {n})

    def test_size_bound(self):
        # |prefixsum(n, r)| = (number of non-zero digits) - 1.
        for n in range(1, 300):
            for r in (2, 3):
                assert len(prefixsum(n, r)) == num_nonzero_digits(n, r) - 1


class TestNumNonzeroDigits:
    def test_values(self):
        assert num_nonzero_digits(0, 2) == 0
        assert num_nonzero_digits(7, 2) == 3
        assert num_nonzero_digits(8, 2) == 1
        assert num_nonzero_digits(47, 3) == 3
