"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "cc"
        assert args.dataset == "covtype"
        assert args.k == 30

    def test_figure_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "dbscan"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "covtype" in out
        assert "onlinecc" in out
        assert "fig4" in out

    def test_run_command_small(self, capsys):
        exit_code = main(
            [
                "run",
                "--algorithm",
                "cc",
                "--dataset",
                "power",
                "--k",
                "5",
                "--num-points",
                "1500",
                "--query-interval",
                "500",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Run summary" in out
        assert "cc" in out

    def test_run_command_sharded(self, capsys):
        exit_code = main(
            [
                "run",
                "--algorithm",
                "cc",
                "--dataset",
                "power",
                "--k",
                "4",
                "--num-points",
                "1200",
                "--query-interval",
                "600",
                "--shards",
                "2",
                "--backend",
                "thread",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Run summary" in out
        assert "ccx2[thread]" in out

    def test_run_sharded_rejects_non_tree_algorithms(self):
        with pytest.raises(ValueError):
            main(
                [
                    "run",
                    "--algorithm",
                    "sequential",
                    "--dataset",
                    "power",
                    "--num-points",
                    "500",
                    "--shards",
                    "2",
                ]
            )

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--shards", "2", "--backend", "gpu"])

    def test_run_command_poisson(self, capsys):
        exit_code = main(
            [
                "run",
                "--algorithm",
                "onlinecc",
                "--dataset",
                "power",
                "--k",
                "5",
                "--num-points",
                "1200",
                "--query-interval",
                "400",
                "--poisson",
            ]
        )
        assert exit_code == 0
        assert "onlinecc" in capsys.readouterr().out

    def test_figure_fig4_with_output(self, tmp_path, capsys):
        output = tmp_path / "fig4.json"
        exit_code = main(
            [
                "figure",
                "fig4",
                "--dataset",
                "power",
                "--num-points",
                "1500",
                "--k",
                "5",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        assert output.exists()
        data = json.loads(output.read_text())
        assert "cc" in data
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_figure_fig11(self, capsys):
        exit_code = main(
            ["figure", "fig11", "--dataset", "power", "--num-points", "1200", "--k", "5"]
        )
        assert exit_code == 0
        assert "Figure 11" in capsys.readouterr().out


class TestElasticFlags:
    def test_run_command_with_reshard_at(self, capsys):
        exit_code = main(
            [
                "run",
                "--algorithm",
                "cc",
                "--dataset",
                "power",
                "--k",
                "4",
                "--num-points",
                "1500",
                "--query-interval",
                "500",
                "--shards",
                "2",
                "--backend",
                "thread",
                "--reshard-at",
                "600:4",
                "--auto-recover",
                "--recovery-interval",
                "512",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Reshards:" in out
        assert "2 -> 4 shards" in out

    def test_reshard_at_requires_sharded_run(self, capsys):
        exit_code = main(
            [
                "run",
                "--dataset",
                "power",
                "--num-points",
                "500",
                "--reshard-at",
                "100:2",
            ]
        )
        assert exit_code == 2
        assert "--shards > 1" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", ["600", "0:4", "600:0", "x:y"])
    def test_reshard_at_rejects_malformed_specs(self, spec, capsys):
        exit_code = main(
            [
                "run",
                "--dataset",
                "power",
                "--num-points",
                "500",
                "--shards",
                "2",
                "--reshard-at",
                spec,
            ]
        )
        assert exit_code == 2
        assert "--reshard-at" in capsys.readouterr().err
