"""Tests for the perf-regression gate (tools/check_bench_regression.py)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "tools" / "check_bench_regression.py"


def make_report(scale: float = 1.0, calibration: float = 0.02) -> dict:
    """A synthetic quick-bench report; ``scale`` > 1 means that much slower."""
    return {
        "schema": 1,
        "calibration_seconds": calibration,
        "metrics": {
            "cc_ingest_pts_per_s": {"value": 200_000.0 / scale, "higher_is_better": True},
            "cc_query_median_us": {"value": 400.0 * scale, "higher_is_better": False},
        },
    }


def run_checker(baseline_path, current_path, *extra):
    return subprocess.run(
        [sys.executable, str(CHECKER), "--baseline", str(baseline_path),
         "--current", str(current_path), *extra],
        capture_output=True,
        text=True,
    )


def write(path, report):
    path.write_text(json.dumps(report))
    return path


class TestGate:
    def test_identical_reports_pass(self, tmp_path):
        base = write(tmp_path / "base.json", make_report())
        curr = write(tmp_path / "curr.json", make_report())
        result = run_checker(base, curr)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no benchmark regressions" in result.stdout

    def test_injected_2x_slowdown_fails(self, tmp_path):
        base = write(tmp_path / "base.json", make_report())
        curr = write(tmp_path / "curr.json", make_report(scale=2.0))
        result = run_checker(base, curr)
        assert result.returncode == 1
        assert "FAIL" in result.stdout
        assert "regression detected" in result.stdout

    def test_within_tolerance_passes(self, tmp_path):
        base = write(tmp_path / "base.json", make_report())
        curr = write(tmp_path / "curr.json", make_report(scale=1.2))
        result = run_checker(base, curr)
        assert result.returncode == 0, result.stdout

    def test_improvement_never_fails(self, tmp_path):
        base = write(tmp_path / "base.json", make_report())
        curr = write(tmp_path / "curr.json", make_report(scale=0.3))
        result = run_checker(base, curr)
        assert result.returncode == 0, result.stdout

    def test_machine_speed_cancels(self, tmp_path):
        # Same code on a machine 3x slower across the board (calibration and
        # metrics alike) must NOT trip the gate.
        base = write(tmp_path / "base.json", make_report())
        curr = write(
            tmp_path / "curr.json", make_report(scale=3.0, calibration=0.06)
        )
        result = run_checker(base, curr)
        assert result.returncode == 0, result.stdout

    def test_missing_metric_fails(self, tmp_path):
        base_report = make_report()
        base = write(tmp_path / "base.json", base_report)
        curr_report = make_report()
        del curr_report["metrics"]["cc_query_median_us"]
        curr = write(tmp_path / "curr.json", curr_report)
        result = run_checker(base, curr)
        assert result.returncode == 1
        assert "missing from the current report" in result.stdout

    def test_tolerance_flag(self, tmp_path):
        base = write(tmp_path / "base.json", make_report())
        curr = write(tmp_path / "curr.json", make_report(scale=1.2))
        result = run_checker(base, curr, "--tolerance", "0.10")
        assert result.returncode == 1

    def test_bad_schema_rejected(self, tmp_path):
        report = make_report()
        report["schema"] = 99
        base = write(tmp_path / "base.json", make_report())
        curr = write(tmp_path / "curr.json", report)
        result = run_checker(base, curr)
        assert result.returncode != 0
        assert "schema" in result.stderr

    def test_write_baseline(self, tmp_path):
        curr = write(tmp_path / "curr.json", make_report())
        target = tmp_path / "new" / "baseline.json"
        result = run_checker(tmp_path / "unused.json", curr, "--write-baseline", str(target))
        assert result.returncode == 0
        assert json.loads(target.read_text())["schema"] == 1


def test_committed_baseline_is_valid():
    """The committed baseline parses and carries the headline metrics."""
    baseline = json.loads(
        (REPO_ROOT / "benchmarks" / "baselines" / "bench_baseline.json").read_text()
    )
    assert baseline["schema"] == 1
    assert baseline["calibration_seconds"] > 0
    for key in (
        "cc_ingest_pts_per_s",
        "cc_query_median_us",
        "rcc_ingest_pts_per_s",
        "rcc_query_median_us",
    ):
        assert key in baseline["metrics"]
