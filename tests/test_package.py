"""Package-level tests: public exports, version, and subpackage imports."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.coreset",
            "repro.kmeans",
            "repro.baselines",
            "repro.data",
            "repro.queries",
            "repro.metrics",
            "repro.bench",
            "repro.extensions",
            "repro.io",
            "repro.cli",
        ],
    )
    def test_subpackages_importable(self, module):
        imported = importlib.import_module(module)
        assert imported is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.coreset",
            "repro.kmeans",
            "repro.baselines",
            "repro.data",
            "repro.queries",
            "repro.metrics",
            "repro.bench",
            "repro.extensions",
            "repro.io",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        imported = importlib.import_module(module)
        for name in getattr(imported, "__all__", []):
            assert hasattr(imported, name), f"{module}.__all__ lists missing {name}"

    def test_streaming_clusterers_share_interface(self):
        from repro.core.base import StreamingClusterer

        for cls in (
            repro.CoresetTreeClusterer,
            repro.CachedCoresetTreeClusterer,
            repro.RecursiveCachedClusterer,
            repro.OnlineCCClusterer,
            repro.SequentialKMeans,
            repro.StreamKMpp,
            repro.BirchClusterer,
            repro.CluStreamClusterer,
            repro.StreamLSClusterer,
        ):
            assert issubclass(cls, StreamingClusterer)

    def test_docstrings_on_public_classes(self):
        for name in (
            "CachedCoresetTreeClusterer",
            "RecursiveCachedClusterer",
            "OnlineCCClusterer",
            "StreamingConfig",
            "WeightedPointSet",
            "CoresetConstructor",
        ):
            assert getattr(repro, name).__doc__, f"{name} is missing a docstring"
