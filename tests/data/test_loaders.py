"""Unit tests for the dataset registry (Table 3 stand-ins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loaders import (
    PAPER_SIZES,
    dataset_names,
    load_covtype,
    load_dataset,
    load_drift,
    load_intrusion,
    load_power,
)


class TestRegistry:
    def test_dataset_names(self):
        assert set(dataset_names()) == {"covtype", "power", "intrusion", "drift"}

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("mnist")

    def test_load_dataset_case_insensitive(self):
        info = load_dataset("Covtype", num_points=500)
        assert info.name == "Covtype"

    def test_paper_sizes_match_table3(self):
        assert PAPER_SIZES["covtype"] == (581_012, 54)
        assert PAPER_SIZES["power"] == (2_049_280, 7)
        assert PAPER_SIZES["intrusion"] == (494_021, 34)
        assert PAPER_SIZES["drift"] == (200_000, 68)


class TestLoaders:
    @pytest.mark.parametrize(
        "loader,dimension",
        [
            (load_covtype, 54),
            (load_power, 7),
            (load_intrusion, 34),
            (load_drift, 68),
        ],
    )
    def test_dimensions_match_paper(self, loader, dimension):
        info = loader(num_points=400)
        assert info.dimension == dimension
        assert info.paper_dimension == dimension
        assert info.num_points == 400

    def test_default_sizes_are_reasonable(self):
        info = load_dataset("power")
        assert 5_000 <= info.num_points <= 100_000

    def test_deterministic_by_seed(self):
        a = load_covtype(num_points=300, seed=1)
        b = load_covtype(num_points=300, seed=1)
        np.testing.assert_array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = load_power(num_points=300, seed=1)
        b = load_power(num_points=300, seed=2)
        assert not np.array_equal(a.points, b.points)

    def test_invalid_num_points(self):
        with pytest.raises(ValueError):
            load_covtype(num_points=0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            load_covtype(scale="huge")

    def test_intrusion_has_outliers_and_skew(self):
        info = load_intrusion(num_points=5000)
        norms = np.linalg.norm(info.points, axis=1)
        # Outliers are injected far from the bulk, so the max norm should be
        # several times the median norm.
        assert np.max(norms) > 3.0 * np.median(norms)

    def test_load_dataset_forwards_seed(self):
        a = load_dataset("drift", num_points=300, seed=5)
        b = load_dataset("drift", num_points=300, seed=5)
        np.testing.assert_array_equal(a.points, b.points)

    def test_points_are_finite(self):
        for name in dataset_names():
            info = load_dataset(name, num_points=500)
            assert np.all(np.isfinite(info.points))
