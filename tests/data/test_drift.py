"""Unit tests for the RBF drifting-centers generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.drift import RBFDriftGenerator, RBFDriftSpec


class TestRBFDriftSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimension": 0},
            {"num_centers": 0},
            {"points_per_step": 0},
            {"drift_speed": -1.0},
            {"min_std": 0.0},
            {"min_std": 2.0, "max_std": 1.0},
        ],
    )
    def test_invalid_spec(self, kwargs):
        with pytest.raises(ValueError):
            RBFDriftSpec(**kwargs)

    def test_paper_defaults(self):
        spec = RBFDriftSpec()
        assert spec.dimension == 68
        assert spec.num_centers == 20
        assert spec.points_per_step == 100


class TestRBFDriftGenerator:
    def test_step_shape(self):
        spec = RBFDriftSpec(dimension=5, num_centers=3, points_per_step=10)
        generator = RBFDriftGenerator(spec, seed=0)
        block = generator.step()
        assert block.shape == (30, 5)
        assert generator.steps_emitted == 1

    def test_generate_exact_count(self):
        spec = RBFDriftSpec(dimension=4, num_centers=2, points_per_step=7)
        generator = RBFDriftGenerator(spec, seed=1)
        points = generator.generate(100)
        assert points.shape == (100, 4)

    def test_deterministic_with_seed(self):
        spec = RBFDriftSpec(dimension=3, num_centers=2, points_per_step=5)
        a = RBFDriftGenerator(spec, seed=9).generate(50)
        b = RBFDriftGenerator(spec, seed=9).generate(50)
        np.testing.assert_array_equal(a, b)

    def test_centers_actually_drift(self):
        spec = RBFDriftSpec(dimension=3, num_centers=4, points_per_step=5, drift_speed=0.5)
        generator = RBFDriftGenerator(spec, seed=2)
        before = generator.centers
        for _ in range(20):
            generator.step()
        after = generator.centers
        movement = np.linalg.norm(after - before, axis=1)
        assert np.all(movement > 0.0)

    def test_centers_stay_bounded_with_bounce(self):
        spec = RBFDriftSpec(
            dimension=2,
            num_centers=3,
            points_per_step=2,
            drift_speed=5.0,
            bound=20.0,
            bounce=True,
        )
        generator = RBFDriftGenerator(spec, seed=3)
        for _ in range(200):
            generator.step()
        # Allow a single-step overshoot beyond the reflecting boundary.
        assert np.all(np.abs(generator.centers) <= 20.0 + 5.0)

    def test_distribution_shifts_over_time(self):
        """Early and late windows of the stream should have different means."""
        spec = RBFDriftSpec(dimension=4, num_centers=3, points_per_step=20, drift_speed=0.5)
        generator = RBFDriftGenerator(spec, seed=4)
        points = generator.generate(6000)
        early = points[:1000].mean(axis=0)
        late = points[-1000:].mean(axis=0)
        assert np.linalg.norm(early - late) > 0.5

    def test_invalid_generate_count(self):
        generator = RBFDriftGenerator(RBFDriftSpec(dimension=2, num_centers=1), seed=0)
        with pytest.raises(ValueError):
            generator.generate(0)
