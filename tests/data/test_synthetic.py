"""Unit tests for the Gaussian-mixture generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import GaussianMixtureSpec, add_uniform_outliers, generate_mixture


class TestGaussianMixtureSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimension": 0, "num_clusters": 3},
            {"dimension": 2, "num_clusters": 0},
            {"dimension": 2, "num_clusters": 3, "cluster_weights": (1.0, 2.0)},
            {"dimension": 2, "num_clusters": 2, "cluster_weights": (1.0, -1.0)},
            {"dimension": 2, "num_clusters": 2, "cluster_scale": (1.0, 1.0, 1.0)},
        ],
    )
    def test_invalid_spec(self, kwargs):
        with pytest.raises(ValueError):
            GaussianMixtureSpec(**kwargs)


class TestGenerateMixture:
    def test_shape_and_labels(self):
        spec = GaussianMixtureSpec(dimension=5, num_clusters=3)
        points, labels = generate_mixture(spec, 500, np.random.default_rng(0))
        assert points.shape == (500, 5)
        assert labels.shape == (500,)
        assert set(np.unique(labels)) <= {0, 1, 2}

    def test_deterministic_with_seed(self):
        spec = GaussianMixtureSpec(dimension=3, num_clusters=2)
        a, _ = generate_mixture(spec, 100, np.random.default_rng(5))
        b, _ = generate_mixture(spec, 100, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_weights_control_cluster_sizes(self):
        spec = GaussianMixtureSpec(
            dimension=2, num_clusters=2, cluster_weights=(9.0, 1.0)
        )
        _, labels = generate_mixture(spec, 5000, np.random.default_rng(1))
        fraction = np.mean(labels == 0)
        assert fraction == pytest.approx(0.9, abs=0.03)

    def test_cluster_scale_controls_spread(self):
        tight_spec = GaussianMixtureSpec(dimension=2, num_clusters=1, cluster_scale=0.1)
        wide_spec = GaussianMixtureSpec(dimension=2, num_clusters=1, cluster_scale=5.0)
        tight, _ = generate_mixture(tight_spec, 1000, np.random.default_rng(2))
        wide, _ = generate_mixture(wide_spec, 1000, np.random.default_rng(2))
        assert np.std(tight - tight.mean(axis=0)) < np.std(wide - wide.mean(axis=0))

    def test_correlated_mixes_features(self):
        spec = GaussianMixtureSpec(dimension=4, num_clusters=1, correlated=True)
        points, _ = generate_mixture(spec, 3000, np.random.default_rng(3))
        centred = points - points.mean(axis=0)
        correlation = np.corrcoef(centred, rowvar=False)
        off_diagonal = correlation[~np.eye(4, dtype=bool)]
        assert np.max(np.abs(off_diagonal)) > 0.05

    def test_invalid_num_points(self):
        spec = GaussianMixtureSpec(dimension=2, num_clusters=1)
        with pytest.raises(ValueError):
            generate_mixture(spec, 0, np.random.default_rng(0))

    def test_clusters_are_separated_relative_to_scale(self):
        spec = GaussianMixtureSpec(
            dimension=8, num_clusters=4, center_spread=30.0, cluster_scale=0.5
        )
        points, labels = generate_mixture(spec, 2000, np.random.default_rng(4))
        centroids = np.vstack(
            [points[labels == c].mean(axis=0) for c in range(4) if np.any(labels == c)]
        )
        pairwise = np.linalg.norm(
            centroids[:, None, :] - centroids[None, :, :], axis=-1
        )
        np.fill_diagonal(pairwise, np.inf)
        assert np.min(pairwise) > 5.0


class TestAddUniformOutliers:
    def test_zero_fraction_returns_same_values(self):
        points = np.random.default_rng(0).normal(size=(100, 3))
        result = add_uniform_outliers(points, 0.0, np.random.default_rng(1))
        np.testing.assert_array_equal(result, points)

    def test_fraction_replaced(self):
        points = np.zeros((1000, 2))
        result = add_uniform_outliers(points, 0.1, np.random.default_rng(2), spread=50.0)
        changed = np.any(result != 0.0, axis=1)
        assert np.sum(changed) == 100

    def test_original_not_modified(self):
        points = np.zeros((100, 2))
        add_uniform_outliers(points, 0.5, np.random.default_rng(3))
        np.testing.assert_array_equal(points, 0.0)

    def test_invalid_fraction(self):
        points = np.zeros((10, 2))
        with pytest.raises(ValueError):
            add_uniform_outliers(points, 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            add_uniform_outliers(points, -0.1, np.random.default_rng(0))
