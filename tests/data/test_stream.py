"""Unit tests for the PointStream abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.stream import PointStream, StreamExhausted


class TestPointStream:
    def test_basic_iteration(self):
        data = np.arange(12, dtype=float).reshape(6, 2)
        stream = PointStream(data)
        collected = np.vstack(list(stream))
        np.testing.assert_array_equal(collected, data)
        assert stream.exhausted

    def test_properties(self):
        stream = PointStream(np.zeros((10, 3)))
        assert stream.num_points == 10
        assert stream.dimension == 3
        assert stream.position == 0

    def test_take(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        stream = PointStream(data)
        first = stream.take(3)
        assert first.shape == (3, 2)
        assert stream.position == 3
        rest = stream.take(100)
        assert rest.shape == (7, 2)
        assert stream.exhausted

    def test_take_invalid_count(self):
        stream = PointStream(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            stream.take(0)

    def test_next_point_after_exhaustion_raises(self):
        stream = PointStream(np.zeros((1, 2)))
        stream.next_point()
        with pytest.raises(StreamExhausted):
            stream.next_point()

    def test_stream_exhausted_is_not_stop_iteration(self):
        # PEP 479: a StopIteration leaking out of a generator frame becomes a
        # RuntimeError, so the sentinel must not subclass StopIteration.
        assert not issubclass(StreamExhausted, StopIteration)

        def consume_via_generator():
            stream = PointStream(np.zeros((1, 2)))
            stream.next_point()
            yield stream.next_point()

        with pytest.raises(StreamExhausted):
            next(consume_via_generator())

    def test_iter_segments_blocks_end_at_boundaries(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        stream = PointStream(data)
        blocks = list(stream.iter_segments([3, 7]))
        assert [b.shape[0] for b in blocks] == [3, 4, 3]
        np.testing.assert_array_equal(np.vstack(blocks), data)

    def test_iter_segments_chunk_cap(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        stream = PointStream(data)
        blocks = list(stream.iter_segments([7], chunk_size=3))
        assert [b.shape[0] for b in blocks] == [3, 3, 1, 3]
        np.testing.assert_array_equal(np.vstack(blocks), data)

    def test_iter_segments_ignores_out_of_range_boundaries(self):
        data = np.arange(8, dtype=float).reshape(4, 2)
        stream = PointStream(data)
        blocks = list(stream.iter_segments([0, 2, 99]))
        assert [b.shape[0] for b in blocks] == [2, 2]

    def test_reset(self):
        data = np.arange(6, dtype=float).reshape(3, 2)
        stream = PointStream(data)
        stream.take(3)
        stream.reset()
        assert stream.position == 0
        np.testing.assert_array_equal(stream.next_point(), data[0])

    def test_shuffle_is_permutation(self):
        data = np.arange(100, dtype=float).reshape(50, 2)
        stream = PointStream(data, shuffle=True, seed=3)
        shuffled = np.vstack(list(stream))
        assert not np.array_equal(shuffled, data)
        np.testing.assert_array_equal(
            np.sort(shuffled.ravel()), np.sort(data.ravel())
        )

    def test_shuffle_deterministic(self):
        data = np.arange(40, dtype=float).reshape(20, 2)
        a = np.vstack(list(PointStream(data, shuffle=True, seed=7)))
        b = np.vstack(list(PointStream(data, shuffle=True, seed=7)))
        np.testing.assert_array_equal(a, b)

    def test_iter_chunks(self):
        data = np.arange(14, dtype=float).reshape(7, 2)
        stream = PointStream(data)
        chunks = list(stream.iter_chunks(3))
        assert [c.shape[0] for c in chunks] == [3, 3, 1]
        np.testing.assert_array_equal(np.vstack(chunks), data)

    def test_iter_chunks_invalid(self):
        with pytest.raises(ValueError):
            list(PointStream(np.zeros((3, 2))).iter_chunks(0))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            PointStream(np.zeros(5))
