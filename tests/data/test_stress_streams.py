"""Unit tests for the drift/expiry stress streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loaders import dataset_names
from repro.data.stress import (
    generate_driftburst,
    generate_expiry,
    load_stress_stream,
    stress_stream_names,
)


class TestDriftburst:
    def test_shape_and_determinism(self):
        a = generate_driftburst(1000, seed=3)
        b = generate_driftburst(1000, seed=3)
        assert a.shape == (1000, 8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, generate_driftburst(1000, seed=4))

    def test_segments_occupy_distinct_regions(self):
        points = generate_driftburst(2000, seed=0, num_segments=4)
        segment_means = [points[i * 500 : (i + 1) * 500].mean(axis=0) for i in range(4)]
        # Centers re-draw at every boundary, so consecutive segment means
        # should be well separated relative to within-segment noise.
        gaps = [
            float(np.linalg.norm(segment_means[i + 1] - segment_means[i]))
            for i in range(3)
        ]
        assert min(gaps) > 1.0

    def test_remainder_absorbed_by_last_segment(self):
        assert generate_driftburst(1003, num_segments=4).shape[0] == 1003

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_driftburst(0)
        with pytest.raises(ValueError):
            generate_driftburst(100, num_segments=0)


class TestExpiry:
    def test_poison_prefix_is_offset(self):
        points = generate_expiry(1000, seed=1, poison_fraction=0.3, poison_offset=100.0)
        assert points.shape == (1000, 6)
        prefix, suffix = points[:300], points[300:]
        assert float(prefix.mean()) > 50.0
        assert abs(float(suffix.mean())) < 50.0

    def test_determinism(self):
        np.testing.assert_array_equal(generate_expiry(500, seed=2), generate_expiry(500, seed=2))

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_expiry(0)
        with pytest.raises(ValueError):
            generate_expiry(100, poison_fraction=1.0)


class TestRegistry:
    def test_names(self):
        assert stress_stream_names() == ["driftburst", "expiry"]

    def test_disjoint_from_table3_datasets(self):
        assert not set(stress_stream_names()) & set(dataset_names())

    def test_load_by_name_case_insensitive(self):
        info = load_stress_stream("DriftBurst", num_points=400, seed=5)
        assert info.points.shape == (400, 8)
        assert info.name == "DriftBurst"
        info = load_stress_stream("expiry", num_points=400)
        assert info.points.shape == (400, 6)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown stress stream"):
            load_stress_stream("nope")
