"""Integration tests for the extension clusterers on realistic streams."""

from __future__ import annotations

import pytest

from repro.core.base import StreamingConfig
from repro.core.driver import CachedCoresetTreeClusterer
from repro.data.drift import RBFDriftGenerator, RBFDriftSpec
from repro.data.loaders import load_intrusion, load_power
from repro.extensions.decay import DecayedCoresetClusterer, SlidingWindowClusterer
from repro.extensions.distributed import DistributedCoordinator
from repro.extensions.kmedian import KMedianCachedClusterer, KMedianConfig, kmedian_cost
from repro.kmeans.cost import kmeans_cost


class TestKMedianOnRealisticData:
    def test_kmedian_competitive_with_kmeans_under_kmedian_objective(self):
        """The k-median clusterer stays in the same ballpark as the k-means one
        under the k-median objective on skewed, outlier-bearing data.  (With the
        coordinate-wise-median surrogate and few restarts it does not always win
        outright; the extension benchmark exercises the stronger configuration.)
        """
        info = load_intrusion(num_points=4000, seed=2)
        points = info.points

        kmeans_cc = CachedCoresetTreeClusterer(
            StreamingConfig(k=10, coreset_size=200, n_init=2, lloyd_iterations=8, seed=0)
        )
        kmedian_cc = KMedianCachedClusterer(
            KMedianConfig(k=10, coreset_size=200, n_init=3, max_iterations=12, seed=0)
        )
        kmeans_cc.insert_many(points)
        kmedian_cc.insert_many(points)

        kmeans_centers = kmeans_cc.query().centers
        kmedian_centers = kmedian_cc.query().centers
        assert kmedian_cost(points, kmedian_centers) <= 2.0 * kmedian_cost(
            points, kmeans_centers
        )

    def test_interleaved_queries(self):
        info = load_power(num_points=3000, seed=4)
        clusterer = KMedianCachedClusterer(
            KMedianConfig(k=8, coreset_size=160, n_init=2, max_iterations=8, seed=0)
        )
        for start in range(0, 3000, 600):
            clusterer.insert_many(info.points[start : start + 600])
            result = clusterer.query()
            assert result.centers.shape == (8, info.dimension)


class TestDriftHandlingOnRbfStream:
    def test_window_and_decay_track_drift_better_than_cc(self):
        spec = RBFDriftSpec(
            dimension=8, num_centers=5, points_per_step=50, drift_speed=1.0,
            center_spread=10.0, bound=100.0,
        )
        generator = RBFDriftGenerator(spec, seed=5)
        points = generator.generate(8000)
        recent = points[-2000:]

        config = StreamingConfig(k=5, coreset_size=100, n_init=2, lloyd_iterations=8, seed=0)
        plain = CachedCoresetTreeClusterer(config)
        window = SlidingWindowClusterer(config, window_buckets=8)
        decayed = DecayedCoresetClusterer(config, decay=0.7)

        costs = {}
        for name, clusterer in (("plain", plain), ("window", window), ("decayed", decayed)):
            clusterer.insert_many(points)
            costs[name] = kmeans_cost(recent, clusterer.query().centers)

        # Under sustained drift, forgetting should not hurt and usually helps.
        assert costs["window"] <= 1.5 * costs["plain"]
        assert costs["decayed"] <= 1.5 * costs["plain"]

    def test_window_memory_much_smaller_than_stream(self):
        spec = RBFDriftSpec(dimension=6, num_centers=4, points_per_step=50)
        generator = RBFDriftGenerator(spec, seed=6)
        points = generator.generate(6000)
        clusterer = SlidingWindowClusterer(
            StreamingConfig(k=4, coreset_size=80, n_init=2, lloyd_iterations=5, seed=0),
            window_buckets=5,
        )
        clusterer.insert_many(points)
        assert clusterer.stored_points() <= 6 * 80


class TestDistributedOnRealisticData:
    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_sharded_matches_central_quality(self, num_shards):
        info = load_power(num_points=4000, seed=7)
        config = StreamingConfig(k=8, coreset_size=160, n_init=2, lloyd_iterations=8, seed=0)

        central = CachedCoresetTreeClusterer(config)
        central.insert_many(info.points)
        central_cost = kmeans_cost(info.points, central.query().centers)

        sharded = DistributedCoordinator(config, num_shards=num_shards)
        sharded.insert_many(info.points)
        sharded_cost = kmeans_cost(info.points, sharded.query().centers)

        assert sharded_cost <= 1.75 * central_cost

    def test_query_between_bucket_boundaries(self):
        info = load_power(num_points=2500, seed=8)
        coordinator = DistributedCoordinator(
            StreamingConfig(k=6, coreset_size=150, n_init=2, lloyd_iterations=5, seed=0),
            num_shards=3,
        )
        for start in range(0, 2500, 500):
            coordinator.insert_many(info.points[start : start + 500])
            result = coordinator.query()
            assert result.centers.shape == (6, info.dimension)
            assert result.coreset_points > 0
