"""Throughput acceptance test: vectorized ingestion vs. the seed per-point path.

``_seed_style_ingest`` below is a frozen replica of the pre-vectorization
driver loop (per-point ``np.asarray`` + ``list.append``, one ``np.vstack``
and one ``insert_bucket`` per full bucket).  The vectorized ``insert_batch``
path must beat it by at least 5x at the paper-scale bucket size ``m = 2000``
on a 100k-point covtype-like synthetic stream.

The coreset construction is pinned to ``uniform`` and the merge degree to 8
(CT is the paper's r-way tree; higher r also lowers union traffic) so both
paths share a small, identical merge cost and the measurement isolates the
ingestion pipeline — the thing this comparison is about.  Both paths must
also finish in exactly the same structure state (span-keyed merge
randomness), which is asserted alongside the timing.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.base import StreamingConfig
from repro.core.coreset_tree import CoresetTree
from repro.core.driver import CoresetTreeClusterer
from repro.coreset.bucket import Bucket, WeightedPointSet
from repro.data.loaders import load_covtype

NUM_POINTS = 100_000
BUCKET_SIZE = 2_000
REQUIRED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def covtype_stream() -> np.ndarray:
    return load_covtype(num_points=NUM_POINTS).points


def _seed_style_ingest(points: np.ndarray, config: StreamingConfig) -> CoresetTree:
    """The seed driver's per-point insert path, frozen for comparison."""
    structure = CoresetTree(config.make_constructor(), merge_degree=config.merge_degree)
    buffer: list[np.ndarray] = []
    dimension: int | None = None
    bucket_size = config.bucket_size
    for point in points:
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        if dimension is None:
            dimension = row.shape[0]
        elif row.shape[0] != dimension:
            raise ValueError("dimension mismatch")
        buffer.append(row)
        if len(buffer) >= bucket_size:
            index = structure.num_base_buckets + 1
            data = WeightedPointSet.from_points(np.vstack(buffer))
            structure.insert_bucket(Bucket(data=data, start=index, end=index, level=0))
            buffer = []
    return structure


def _best_of(n: int, func, *args):
    best_time, result = np.inf, None
    for _ in range(n):
        start = time.perf_counter()
        result = func(*args)
        best_time = min(best_time, time.perf_counter() - start)
    return best_time, result


def test_insert_batch_at_least_5x_faster_than_seed_path(covtype_stream):
    config = StreamingConfig(
        k=20, coreset_size=BUCKET_SIZE, coreset_method="uniform", merge_degree=8, seed=0
    )

    def batch_ingest(points):
        clusterer = CoresetTreeClusterer(config)
        clusterer.insert_batch(points)
        return clusterer

    seed_seconds, seed_structure = _best_of(2, _seed_style_ingest, covtype_stream, config)
    batch_seconds, clusterer = _best_of(3, batch_ingest, covtype_stream)

    # Both pipelines end in the identical structure (the speedup is not
    # bought with a different clustering state).
    assert clusterer.tree.num_base_buckets == seed_structure.num_base_buckets
    assert clusterer.tree.stored_points() == seed_structure.stored_points()
    for bucket_a, bucket_b in zip(
        clusterer.tree.active_buckets(), seed_structure.active_buckets()
    ):
        assert bucket_a.span == bucket_b.span
        assert bucket_a.level == bucket_b.level
        np.testing.assert_array_equal(bucket_a.data.points, bucket_b.data.points)

    speedup = seed_seconds / batch_seconds
    throughput = NUM_POINTS / batch_seconds
    print(
        f"\nbatch ingest: {batch_seconds * 1e3:.1f} ms ({throughput:,.0f} pts/s), "
        f"seed-style: {seed_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batch ingestion only {speedup:.1f}x faster than the seed per-point "
        f"path (required {REQUIRED_SPEEDUP}x)"
    )
