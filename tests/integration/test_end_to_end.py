"""Integration tests: full streams, interleaved queries, accuracy vs. batch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import StreamingExperiment, make_algorithm, run_experiment
from repro.core.base import StreamingConfig
from repro.data.loaders import load_dataset
from repro.data.stream import PointStream
from repro.kmeans.batch import weighted_kmeans
from repro.kmeans.cost import kmeans_cost
from repro.metrics.timing import timing_assertions_enabled
from repro.queries.schedule import FixedIntervalSchedule


STREAMING_ALGOS = ("streamkm++", "ct", "cc", "rcc", "onlinecc")


@pytest.fixture(scope="module")
def mixture_stream() -> np.ndarray:
    rng = np.random.default_rng(99)
    centers = rng.normal(scale=20.0, size=(8, 10))
    labels = rng.integers(0, 8, size=4000)
    return centers[labels] + rng.normal(scale=1.0, size=(4000, 10))


@pytest.fixture(scope="module")
def fast_config() -> StreamingConfig:
    return StreamingConfig(k=8, coreset_size=160, n_init=2, lloyd_iterations=8, seed=7)


class TestAccuracyAgainstBatch:
    """The paper's headline accuracy claim: coreset-based streaming matches batch."""

    @pytest.mark.parametrize("algorithm", STREAMING_ALGOS)
    def test_streaming_cost_close_to_batch(self, mixture_stream, fast_config, algorithm):
        clusterer = make_algorithm(algorithm, fast_config)
        clusterer.insert_many(mixture_stream)
        streaming_cost = kmeans_cost(mixture_stream, clusterer.query().centers)

        batch = weighted_kmeans(
            mixture_stream, fast_config.k, n_init=2, rng=np.random.default_rng(7)
        )
        batch_cost = kmeans_cost(mixture_stream, batch.centers)
        assert streaming_cost <= 2.0 * batch_cost

    def test_sequential_is_much_worse_on_skewed_stream(self, fast_config):
        """Reproduces the Figure 4 Intrusion observation qualitatively."""
        info = load_dataset("intrusion", num_points=6000, seed=1)
        points = info.points

        sequential = make_algorithm("sequential", fast_config)
        sequential.insert_many(points)
        seq_cost = kmeans_cost(points, sequential.query().centers)

        cc = make_algorithm("cc", fast_config)
        cc.insert_many(points)
        cc_cost = kmeans_cost(points, cc.query().centers)

        assert seq_cost > 3.0 * cc_cost


class TestInterleavedQueries:
    @pytest.mark.parametrize("algorithm", STREAMING_ALGOS)
    def test_queries_every_chunk_are_consistent(self, mixture_stream, fast_config, algorithm):
        clusterer = make_algorithm(algorithm, fast_config)
        stream = PointStream(mixture_stream)
        previous_cost = None
        for chunk in stream.iter_chunks(500):
            clusterer.insert_many(chunk)
            centers = clusterer.query().centers
            assert centers.shape == (fast_config.k, mixture_stream.shape[1])
            seen = mixture_stream[: stream.position]
            cost = kmeans_cost(seen, centers)
            assert np.isfinite(cost)
            if previous_cost is not None:
                # Costs grow as more points arrive but should never explode
                # relative to the amount of data seen.
                assert cost < 100.0 * previous_cost + 1e6
            previous_cost = cost

    @staticmethod
    def _best_query_seconds(name, points, config, schedule, repeats=3):
        """Best-of-N query time: total query seconds are only tens of ms at
        this stream size, so a single scheduler hiccup can flip a one-shot
        wall-clock comparison; the minimum is the standard noise-robust
        estimator."""
        return min(
            run_experiment(
                StreamingExperiment(algorithm=name, config=config, schedule=schedule),
                points,
            ).timing.query_seconds
            for _ in range(repeats)
        )

    def test_cc_faster_than_ct_at_high_query_rate(self, mixture_stream, fast_config):
        """The paper's central claim: caching cuts query time vs. plain CT.

        Measured with warm-start refinement disabled: the claim is about the
        per-query coreset assembly + from-scratch k-means++ extraction cost
        (Section 4), which warm starts deliberately bypass in steady state
        (that speedup has its own tests and benchmarks).

        Query totals are tens of milliseconds here, so the comparison is
        retried with fresh best-of-3 measurements (up to three attempts):
        a real regression fails every attempt, a scheduler hiccup on the
        loaded 1-core CI box does not.  All attempts are recorded in the
        failure message.
        """
        from dataclasses import replace

        config = replace(fast_config, warm_start=False)
        schedule = FixedIntervalSchedule(160)
        attempts: list[tuple[float, float]] = []
        for _ in range(3):
            ct_seconds = self._best_query_seconds("ct", mixture_stream, config, schedule)
            cc_seconds = self._best_query_seconds("cc", mixture_stream, config, schedule)
            attempts.append((cc_seconds, ct_seconds))
            # CC merges at most r buckets per query; CT merges every active
            # bucket.  Allow slack to stay robust on slow CI.
            if cc_seconds <= ct_seconds * 1.25:
                return
        if not timing_assertions_enabled():
            # Measurements were taken (and a real win returns above); on a
            # contended single core the comparison itself is meaningless, so
            # don't fail on it (see docs/benchmarks.md).
            return
        assert False, f"cc never beat ct*1.25 in {len(attempts)} attempts: {attempts}"

    def test_onlinecc_query_time_is_smallest(self, mixture_stream, fast_config):
        from dataclasses import replace

        config = replace(fast_config, warm_start=False)
        schedule = FixedIntervalSchedule(160)
        skm_seconds = self._best_query_seconds(
            "streamkm++", mixture_stream, config, schedule
        )
        online_seconds = self._best_query_seconds(
            "onlinecc", mixture_stream, config, schedule
        )
        if not timing_assertions_enabled():
            return
        assert online_seconds < skm_seconds


class TestDatasetsEndToEnd:
    @pytest.mark.parametrize("dataset", ["covtype", "power", "intrusion", "drift"])
    def test_cc_runs_on_every_dataset(self, dataset):
        info = load_dataset(dataset, num_points=3000)
        config = StreamingConfig(k=10, coreset_size=200, n_init=2, lloyd_iterations=5, seed=0)
        experiment = StreamingExperiment(
            algorithm="cc", config=config, schedule=FixedIntervalSchedule(500)
        )
        result = run_experiment(experiment, info.points)
        assert result.final_centers.shape == (10, info.dimension)
        assert result.final_cost > 0.0
        assert result.memory.points_stored > 0


class TestShardedQualityRegression:
    """Observation 1 pinned empirically: sharding must not cost accuracy.

    A union of per-shard coresets is a coreset of the union, so the
    4-shard engine's query cost at equal ``m`` must stay within 1.10x of
    the single-structure CC cost.  Individual (seed, dataset) ratios are
    deterministic but wobble with k-means local optima in both directions,
    so the bound is asserted on the geometric-mean ratio across seeds, with
    a loose per-seed cap against catastrophic degradation.
    """

    @pytest.mark.parametrize("dataset", ["covtype", "drift"])
    def test_sharded_cost_within_1_10x_of_single_cc(self, dataset):
        from repro.parallel import ShardedEngine

        info = load_dataset(dataset, num_points=6000, seed=0)
        points = info.points
        ratios = []
        for seed in (0, 1, 2):
            config = StreamingConfig(
                k=10, coreset_size=200, n_init=5, lloyd_iterations=20, seed=seed
            )
            single = make_algorithm("cc", config)
            single.insert_batch(points)
            single_cost = kmeans_cost(points, single.query().centers)

            with ShardedEngine(config, num_shards=4, routing="round_robin") as engine:
                engine.insert_batch(points)
                sharded_cost = kmeans_cost(points, engine.query().centers)

            ratio = sharded_cost / single_cost
            assert ratio <= 1.5, f"seed {seed}: sharded cost degraded {ratio:.2f}x"
            ratios.append(ratio)

        geomean = float(np.exp(np.mean(np.log(ratios))))
        assert geomean <= 1.10, f"sharded/single cost geomean {geomean:.3f} > 1.10"


class TestMemoryRelationships:
    def test_table4_ordering(self, mixture_stream, fast_config):
        """streamkm++ <= CC ≈ OnlineCC <= RCC in stored points (Table 4)."""
        schedule = FixedIntervalSchedule(200)
        stored = {}
        for name in ("streamkm++", "cc", "rcc", "onlinecc"):
            run = run_experiment(
                StreamingExperiment(algorithm=name, config=fast_config, schedule=schedule),
                mixture_stream,
            )
            stored[name] = run.memory.points_stored
        assert stored["streamkm++"] <= stored["cc"]
        assert stored["cc"] <= stored["rcc"]
        # OnlineCC stores the CC structure plus k online centers, minus any
        # cache entries its fast path never materialised — so it sits between
        # the plain tree and CC-plus-centers.
        assert stored["streamkm++"] <= stored["onlinecc"] <= stored["cc"] + fast_config.k
