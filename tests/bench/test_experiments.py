"""Unit tests for the per-figure experiment drivers (reduced-size sweeps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import (
    cost_vs_bucket_size,
    cost_vs_k,
    dataset_table,
    drift_adaptation_curve,
    memory_table,
    poisson_queries,
    rcc_tradeoffs,
    scaling_profile,
    soft_membership_profile,
    threshold_sweep,
    time_vs_bucket_size,
    time_vs_query_interval,
)


@pytest.fixture(scope="module")
def small_stream() -> np.ndarray:
    """A small but structured stream: 6 clusters, 3000 points, 6 dimensions."""
    rng = np.random.default_rng(21)
    centers = rng.normal(scale=15.0, size=(6, 6))
    labels = rng.integers(0, 6, size=3000)
    return centers[labels] + rng.normal(scale=1.0, size=(3000, 6))


FAST_ALGOS = ("streamkm++", "cc", "onlinecc")


class TestCostVsK:
    def test_structure_and_shape(self, small_stream):
        results = cost_vs_k(
            small_stream,
            k_values=(4, 8),
            algorithms=("sequential", "cc"),
            query_interval=500,
            include_batch=True,
            seed=0,
        )
        assert set(results) == {"sequential", "cc", "kmeans++"}
        for series in results.values():
            assert set(series) == {4, 8}
            assert all(cost > 0 for cost in series.values())

    def test_cost_decreases_with_k(self, small_stream):
        results = cost_vs_k(
            small_stream,
            k_values=(2, 8),
            algorithms=("cc",),
            query_interval=500,
            include_batch=False,
            seed=0,
        )
        assert results["cc"][8] < results["cc"][2]

    def test_coreset_algorithms_match_batch(self, small_stream):
        results = cost_vs_k(
            small_stream,
            k_values=(6,),
            algorithms=("cc",),
            query_interval=500,
            include_batch=True,
            seed=0,
        )
        assert results["cc"][6] <= 2.0 * results["kmeans++"][6]


class TestTimeVsQueryInterval:
    def test_structure(self, small_stream):
        results = time_vs_query_interval(
            small_stream,
            intervals=(200, 1000),
            algorithms=FAST_ALGOS,
            k=5,
            seed=0,
        )
        assert set(results) == set(FAST_ALGOS)
        for series in results.values():
            assert set(series) == {200, 1000}

    def test_tree_algorithms_speed_up_with_rarer_queries(self, small_stream):
        results = time_vs_query_interval(
            small_stream,
            intervals=(100, 1500),
            algorithms=("streamkm++",),
            k=5,
            seed=0,
        )
        assert results["streamkm++"][1500] < results["streamkm++"][100]


class TestBucketSizeSweeps:
    def test_cost_sweep_structure(self, small_stream):
        results = cost_vs_bucket_size(
            small_stream,
            bucket_multipliers=(20, 40),
            algorithms=("cc",),
            k=5,
            query_interval=500,
            seed=0,
        )
        assert set(results["cc"]) == {20, 40}

    def test_time_sweep_metrics_present(self, small_stream):
        results = time_vs_bucket_size(
            small_stream,
            bucket_multipliers=(20,),
            algorithms=("cc", "onlinecc"),
            k=5,
            query_interval=500,
            seed=0,
        )
        entry = results["cc"][20]
        assert {"update_us", "query_us", "total_us"} <= set(entry)
        assert entry["total_us"] == pytest.approx(
            entry["update_us"] + entry["query_us"], rel=1e-6
        )


class TestPoissonQueries:
    def test_structure_and_query_counts(self, small_stream):
        results = poisson_queries(
            small_stream,
            mean_intervals=(200, 1000),
            algorithms=("cc", "onlinecc"),
            k=5,
            seed=0,
        )
        for series in results.values():
            assert set(series) == {200, 1000}
            assert series[200]["num_queries"] >= series[1000]["num_queries"]


class TestThresholdSweep:
    def test_structure(self, small_stream):
        results = threshold_sweep(
            small_stream, thresholds=(1.2, 4.8), k=5, query_interval=300, seed=0
        )
        assert set(results) == {1.2, 4.8}
        for entry in results.values():
            assert entry["total_seconds"] == pytest.approx(
                entry["update_seconds"] + entry["query_seconds"], rel=1e-6
            )

    def test_looser_threshold_is_not_slower(self, small_stream):
        results = threshold_sweep(
            small_stream, thresholds=(1.2, 6.0), k=5, query_interval=200, seed=0
        )
        assert results[6.0]["query_seconds"] <= results[1.2]["query_seconds"] * 1.5


class TestTables:
    def test_dataset_table_matches_table3(self):
        rows = dataset_table()
        assert {row["dataset"] for row in rows} == {"Covtype", "Power", "Intrusion", "Drift"}
        by_name = {row["dataset"]: row for row in rows}
        assert by_name["Covtype"]["paper_num_points"] == 581_012
        assert by_name["Power"]["dimension"] == 7

    def test_memory_table_structure(self, small_stream):
        rows = memory_table(
            {"synthetic": small_stream},
            algorithms=("streamkm++", "cc"),
            k=5,
            query_interval=500,
            seed=0,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["dataset"] == "synthetic"
        assert row["cc_points"] >= row["streamkm++_points"]
        assert row["cc_mb"] > 0

    def test_rcc_tradeoffs(self, small_stream):
        rows = rcc_tradeoffs(
            small_stream, nesting_depths=(0, 1), k=5, bucket_size=100, seed=0
        )
        assert len(rows) == 2
        assert rows[0]["outer_merge_degree"] == 2.0
        assert rows[1]["outer_merge_degree"] == 4.0
        assert all(row["stored_points"] > 0 for row in rows)


class TestScalingProfile:
    def test_structure_and_baseline(self, small_stream):
        profile = scaling_profile(
            small_stream,
            shard_counts=(1, 2),
            backends=("serial", "thread"),
            k=4,
            coreset_size=100,
            seed=0,
        )
        assert set(profile) == {"serial", "thread"}
        for backend in profile:
            assert set(profile[backend]) == {1, 2}
            for cell in profile[backend].values():
                assert cell["seconds"] > 0
                assert cell["points_per_second"] > 0
                assert cell["speedup_vs_baseline"] > 0
        # The 1-shard serial cell IS the baseline.
        assert profile["serial"][1]["speedup_vs_baseline"] == pytest.approx(1.0)


class TestDriftAdaptationCurve:
    def test_structure(self, small_stream):
        curves = drift_adaptation_curve(
            small_stream,
            algorithms=("cc", "window"),
            k=4,
            query_interval=1000,
            trailing_points=800,
            algorithm_options={"window": {"window_buckets": 4}},
        )
        assert set(curves) == {"cc", "window"}
        for curve in curves.values():
            assert sorted(curve) == [1000, 2000, 3000]
            assert all(cost > 0 for cost in curve.values())

    def test_window_adapts_after_regime_shift(self):
        from repro.data.stress import generate_driftburst

        points = generate_driftburst(4000, seed=0, num_segments=2)
        curves = drift_adaptation_curve(
            points,
            algorithms=("cc", "window"),
            k=5,
            query_interval=1000,
            trailing_points=800,
            algorithm_options={"window": {"window_buckets": 4}},
        )
        # After the shift at 2000 the window forgets the old regime while the
        # full-history clusterer keeps straddling both.
        final = max(curves["window"])
        assert curves["window"][final] < curves["cc"][final]


class TestSoftMembershipProfile:
    def test_structure_and_monotone_blur(self, small_stream):
        profile = soft_membership_profile(
            small_stream[:1500], fuzziness_values=(1.2, 3.0), k=4
        )
        assert set(profile) == {1.2, 3.0}
        for row in profile.values():
            assert set(row) == {
                "mean_entropy",
                "mean_max_membership",
                "soft_cost",
                "hard_cost",
                "iterations",
            }
        # Larger exponents blur the partition: entropy up, peak membership down.
        assert profile[3.0]["mean_entropy"] > profile[1.2]["mean_entropy"]
        assert profile[3.0]["mean_max_membership"] < profile[1.2]["mean_max_membership"]
