"""Unit tests for the experiment harness and algorithm registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sequential import SequentialKMeans
from repro.baselines.streamkmpp import StreamKMpp
from repro.bench.harness import (
    ALGORITHM_NAMES,
    StreamingExperiment,
    make_algorithm,
    run_experiment,
)
from repro.core.base import StreamingConfig
from repro.core.driver import (
    CachedCoresetTreeClusterer,
    CoresetTreeClusterer,
    RecursiveCachedClusterer,
)
from repro.core.online_cc import OnlineCCClusterer
from repro.queries.schedule import FixedIntervalSchedule, PoissonSchedule


@pytest.fixture()
def config() -> StreamingConfig:
    return StreamingConfig(k=4, coreset_size=50, n_init=2, lloyd_iterations=5, seed=0)


class TestMakeAlgorithm:
    @pytest.mark.parametrize(
        "name,expected_type",
        [
            ("sequential", SequentialKMeans),
            ("streamkm++", StreamKMpp),
            ("streamkmpp", StreamKMpp),
            ("ct", CoresetTreeClusterer),
            ("cc", CachedCoresetTreeClusterer),
            ("rcc", RecursiveCachedClusterer),
            ("onlinecc", OnlineCCClusterer),
        ],
    )
    def test_registry_dispatch(self, config, name, expected_type):
        algorithm = make_algorithm(name, config)
        assert isinstance(algorithm, expected_type)

    def test_case_insensitive(self, config):
        assert isinstance(make_algorithm("CC", config), CachedCoresetTreeClusterer)

    def test_unknown_name_raises(self, config):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_algorithm("dbscan", config)

    def test_all_registry_names_constructible(self, config):
        for name in ALGORITHM_NAMES:
            assert make_algorithm(name, config) is not None

    def test_parameters_forwarded(self, config):
        rcc = make_algorithm("rcc", config, nesting_depth=1)
        assert rcc.recursive_tree.nesting_depth == 1
        online = make_algorithm("onlinecc", config, switch_threshold=3.0)
        assert online.switch_threshold == 3.0


class TestRunExperiment:
    def test_basic_run(self, config, blob_points):
        experiment = StreamingExperiment(
            algorithm="cc", config=config, schedule=FixedIntervalSchedule(500)
        )
        result = run_experiment(experiment, blob_points)
        assert result.algorithm == "cc"
        assert result.final_centers.shape == (4, 4)
        assert result.final_cost > 0.0
        assert result.num_queries == blob_points.shape[0] // 500
        assert result.timing.num_updates == blob_points.shape[0]
        assert result.timing.num_queries == result.num_queries
        assert result.memory.points_stored > 0
        assert result.memory.dimension == 4

    def test_query_fires_even_if_schedule_empty(self, config, blob_points):
        experiment = StreamingExperiment(
            algorithm="sequential",
            config=config,
            schedule=FixedIntervalSchedule(10_000_000),
        )
        result = run_experiment(experiment, blob_points[:300])
        assert result.num_queries == 1
        assert result.final_centers.shape[0] == 4

    def test_track_query_costs(self, config, blob_points):
        experiment = StreamingExperiment(
            algorithm="cc",
            config=config,
            schedule=FixedIntervalSchedule(500),
            track_query_costs=True,
        )
        result = run_experiment(experiment, blob_points[:1500])
        assert len(result.query_costs) == 3
        assert all(cost > 0.0 for cost in result.query_costs)

    def test_poisson_schedule_runs(self, config, blob_points):
        experiment = StreamingExperiment(
            algorithm="onlinecc",
            config=config,
            schedule=PoissonSchedule.from_mean_interval(400, seed=1),
        )
        result = run_experiment(experiment, blob_points[:1200])
        assert result.num_queries >= 1

    def test_invalid_points_raise(self, config):
        experiment = StreamingExperiment(algorithm="cc", config=config)
        with pytest.raises(ValueError):
            run_experiment(experiment, np.empty((0, 3)))
        with pytest.raises(ValueError):
            run_experiment(experiment, np.zeros(5))

    def test_timing_is_positive(self, config, blob_points):
        experiment = StreamingExperiment(
            algorithm="streamkm++", config=config, schedule=FixedIntervalSchedule(200)
        )
        result = run_experiment(experiment, blob_points[:600])
        assert result.timing.update_seconds > 0.0
        assert result.timing.query_seconds > 0.0


class TestIngestModes:
    def test_batch_mode_records_batches(self, config, blob_points):
        experiment = StreamingExperiment(
            algorithm="cc", config=config, schedule=FixedIntervalSchedule(500)
        )
        result = run_experiment(experiment, blob_points)
        # One batch per inter-query segment (2000 points / 500 interval).
        assert result.timing.num_batches == 4
        assert result.timing.num_updates == blob_points.shape[0]
        assert result.timing.update_time_per_batch() > 0.0

    def test_point_mode_matches_seed_accounting(self, config, blob_points):
        experiment = StreamingExperiment(
            algorithm="cc",
            config=config,
            schedule=FixedIntervalSchedule(500),
            ingest_mode="point",
        )
        result = run_experiment(experiment, blob_points[:1000])
        assert result.timing.num_batches == 0
        assert result.timing.num_updates == 1000

    @pytest.mark.parametrize("algorithm", ["ct", "cc", "rcc", "sequential", "onlinecc"])
    def test_modes_produce_identical_centers(self, config, blob_points, algorithm):
        results = {}
        for mode in ("batch", "point"):
            experiment = StreamingExperiment(
                algorithm=algorithm,
                config=config,
                schedule=FixedIntervalSchedule(400),
                ingest_mode=mode,
            )
            results[mode] = run_experiment(experiment, blob_points[:1200])
        np.testing.assert_allclose(
            results["batch"].final_centers, results["point"].final_centers
        )
        assert results["batch"].num_queries == results["point"].num_queries
        assert (
            results["batch"].memory.points_stored
            == results["point"].memory.points_stored
        )

    def test_chunk_size_caps_batches(self, config, blob_points):
        experiment = StreamingExperiment(
            algorithm="ct",
            config=config,
            schedule=FixedIntervalSchedule(500),
            chunk_size=100,
        )
        result = run_experiment(experiment, blob_points)
        assert result.timing.num_batches == 20
        assert result.timing.num_updates == blob_points.shape[0]

    def test_invalid_ingest_mode_raises(self, config, blob_points):
        experiment = StreamingExperiment(
            algorithm="ct", config=config, ingest_mode="stream"
        )
        with pytest.raises(ValueError, match="ingest_mode"):
            run_experiment(experiment, blob_points[:100])
