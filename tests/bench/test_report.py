"""Unit tests for report-table formatting."""

from __future__ import annotations

from repro.bench.report import format_nested_series, format_series_table, format_table


class TestFormatTable:
    def test_basic_render(self):
        rows = [
            {"dataset": "Covtype", "cost": 1.234567, "points": 1000},
            {"dataset": "Power", "cost": 2.5, "points": 2000},
        ]
        text = format_table(rows, title="Results")
        assert "Results" in text
        assert "Covtype" in text
        assert "Power" in text
        assert "dataset" in text
        # Header separator present.
        assert "---" in text

    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_scientific_notation_for_large_values(self):
        text = format_table([{"value": 1.5e9}])
        assert "e+" in text

    def test_missing_cell_rendered_blank(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text.count("\n") == 3


class TestFormatSeriesTable:
    def test_one_row_per_x(self):
        series = {"cc": {10: 1.0, 20: 2.0}, "rcc": {10: 1.5, 20: 2.5}}
        text = format_series_table(series, x_label="k", title="Figure 4")
        lines = text.splitlines()
        assert lines[0] == "Figure 4"
        assert "k" in lines[1] and "cc" in lines[1] and "rcc" in lines[1]
        assert len(lines) == 5  # title + header + separator + 2 data rows

    def test_empty_series(self):
        assert "(no series)" in format_series_table({}, x_label="k")

    def test_union_of_x_values(self):
        series = {"a": {1: 1.0}, "b": {2: 2.0}}
        text = format_series_table(series, x_label="x")
        assert len(text.splitlines()) == 4


class TestFormatNestedSeries:
    def test_metric_extraction(self):
        series = {
            "cc": {50: {"update_us": 1.0, "query_us": 5.0}},
            "onlinecc": {50: {"update_us": 2.0, "query_us": 0.5}},
        }
        text = format_nested_series(series, x_label="interval", metric="query_us")
        assert "5.0" in text
        assert "0.5" in text
        assert "update_us" not in text
