"""Unit tests for the Sequential k-means streaming baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sequential import SequentialKMeans
from repro.kmeans.cost import kmeans_cost


class TestSequentialKMeans:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SequentialKMeans(0)

    def test_query_before_points_raises(self):
        clusterer = SequentialKMeans(3)
        with pytest.raises(RuntimeError, match="before any point"):
            clusterer.query()

    def test_centers_none_before_points(self):
        assert SequentialKMeans(3).centers is None

    def test_query_is_constant_size(self, blob_points):
        clusterer = SequentialKMeans(4)
        clusterer.insert_many(blob_points)
        result = clusterer.query()
        assert result.centers.shape == (4, blob_points.shape[1])
        assert result.from_cache
        assert result.coreset_points == 0

    def test_stored_points_is_k(self, blob_points):
        clusterer = SequentialKMeans(7)
        clusterer.insert_many(blob_points[:50])
        assert clusterer.stored_points() == 7

    def test_points_seen(self, blob_points):
        clusterer = SequentialKMeans(4)
        clusterer.insert_many(blob_points[:321])
        assert clusterer.points_seen == 321

    def test_insert_batch_rejects_dimension_mismatch(self, blob_points):
        # Regression: without validation the (k, d) - (d',) broadcast would
        # silently corrupt the centers instead of raising.
        clusterer = SequentialKMeans(4)
        clusterer.insert_batch(blob_points[:50])
        with pytest.raises(ValueError, match="dimension"):
            clusterer.insert_batch(np.zeros((5, blob_points.shape[1] + 1)))
        assert clusterer.points_seen == 50

    def test_reasonable_on_easy_blobs(self, blob_points, blob_centers):
        clusterer = SequentialKMeans(4)
        clusterer.insert_many(blob_points)
        cost = kmeans_cost(blob_points, clusterer.query().centers)
        reference = kmeans_cost(blob_points, blob_centers)
        # Sequential k-means has no guarantee but should not be absurd on
        # well-separated blobs when the first k points hit distinct clusters.
        assert cost < 100.0 * reference

    def test_worse_than_coreset_algorithms_on_skewed_data(self):
        """The qualitative Figure 4 relationship: Sequential trails CC badly."""
        from repro.core.base import StreamingConfig
        from repro.core.driver import CachedCoresetTreeClusterer

        rng = np.random.default_rng(3)
        # Highly imbalanced clusters: the first k points all come from one
        # giant cluster, which is the failure mode of first-k initialisation.
        big = rng.normal(loc=0.0, scale=1.0, size=(3000, 6))
        small_clusters = [
            rng.normal(loc=50.0 * (i + 1), scale=1.0, size=(30, 6)) for i in range(5)
        ]
        points = np.vstack([big, *small_clusters])

        sequential = SequentialKMeans(6)
        sequential.insert_many(points)
        seq_cost = kmeans_cost(points, sequential.query().centers)

        cc = CachedCoresetTreeClusterer(
            StreamingConfig(k=6, coreset_size=120, n_init=3, lloyd_iterations=10, seed=0)
        )
        cc.insert_many(points)
        cc_cost = kmeans_cost(points, cc.query().centers)

        assert seq_cost > 2.0 * cc_cost
