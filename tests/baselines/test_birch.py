"""Unit tests for the BIRCH-style CF-layer clusterer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.birch import BirchClusterer, ClusteringFeature
from repro.kmeans.cost import kmeans_cost


class TestClusteringFeature:
    def test_single_point(self):
        cf = ClusteringFeature(np.array([1.0, 2.0]))
        np.testing.assert_allclose(cf.centroid, [1.0, 2.0])
        assert cf.radius == pytest.approx(0.0)
        assert cf.count == 1.0

    def test_absorb_updates_centroid(self):
        cf = ClusteringFeature(np.array([0.0, 0.0]))
        cf.absorb(np.array([2.0, 0.0]))
        np.testing.assert_allclose(cf.centroid, [1.0, 0.0])
        assert cf.radius == pytest.approx(1.0)
        assert cf.count == 2.0

    def test_merge(self):
        a = ClusteringFeature(np.array([0.0]))
        b = ClusteringFeature(np.array([4.0]))
        a.merge(b)
        assert a.count == 2.0
        np.testing.assert_allclose(a.centroid, [2.0])

    def test_radius_never_negative(self):
        cf = ClusteringFeature(np.array([1e8, 1e8]))
        cf.absorb(np.array([1e8, 1e8]))
        assert cf.radius >= 0.0


class TestBirchClusterer:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BirchClusterer(k=0)
        with pytest.raises(ValueError):
            BirchClusterer(k=3, threshold=0.0)
        with pytest.raises(ValueError):
            BirchClusterer(k=5, max_features=3)

    def test_query_before_points_raises(self):
        with pytest.raises(RuntimeError):
            BirchClusterer(k=2).query()

    def test_nearby_points_share_a_feature(self):
        clusterer = BirchClusterer(k=2, threshold=1.0)
        clusterer.insert(np.array([0.0, 0.0]))
        clusterer.insert(np.array([0.1, 0.1]))
        assert clusterer.num_features == 1

    def test_distant_points_open_new_features(self):
        clusterer = BirchClusterer(k=2, threshold=1.0)
        clusterer.insert(np.array([0.0, 0.0]))
        clusterer.insert(np.array([100.0, 100.0]))
        assert clusterer.num_features == 2

    def test_capacity_bound_enforced(self, rng):
        clusterer = BirchClusterer(k=3, threshold=0.01, max_features=20)
        points = rng.uniform(-100, 100, size=(500, 3))
        for point in points:
            clusterer.insert(point)
        assert clusterer.num_features <= 20
        assert clusterer.stored_points() <= 20

    def test_compaction_increases_threshold(self, rng):
        clusterer = BirchClusterer(k=3, threshold=0.01, max_features=10)
        initial_threshold = clusterer.threshold
        for point in rng.uniform(-50, 50, size=(200, 2)):
            clusterer.insert(point)
        assert clusterer.threshold > initial_threshold

    def test_clusters_blobs(self, blob_points, blob_centers):
        clusterer = BirchClusterer(k=4, threshold=3.0, max_features=100, seed=0)
        for point in blob_points:
            clusterer.insert(point)
        result = clusterer.query()
        assert result.centers.shape == (4, 4)
        cost = kmeans_cost(blob_points, result.centers)
        reference = kmeans_cost(blob_points, blob_centers)
        assert cost <= 5.0 * reference

    def test_points_seen(self, blob_points):
        clusterer = BirchClusterer(k=4)
        for point in blob_points[:55]:
            clusterer.insert(point)
        assert clusterer.points_seen == 55
