"""Unit tests for the streamkm++ baseline wrapper."""

from __future__ import annotations


from repro.baselines.streamkmpp import StreamKMpp, streamkmpp_config
from repro.core.base import StreamingConfig
from repro.kmeans.cost import kmeans_cost


class TestStreamKMppConfig:
    def test_merge_degree_forced_to_two(self):
        config = StreamingConfig(k=5, merge_degree=8)
        pinned = streamkmpp_config(config)
        assert pinned.merge_degree == 2
        assert pinned.k == 5

    def test_other_fields_preserved(self):
        config = StreamingConfig(k=5, coreset_size=77, seed=9, n_init=4)
        pinned = streamkmpp_config(config)
        assert pinned.coreset_size == 77
        assert pinned.seed == 9
        assert pinned.n_init == 4


class TestStreamKMpp:
    def test_is_binary_coreset_tree(self, small_config):
        clusterer = StreamKMpp(small_config)
        assert clusterer.tree.merge_degree == 2

    def test_overrides_other_merge_degree(self):
        config = StreamingConfig(k=4, coreset_size=50, merge_degree=5, seed=1)
        clusterer = StreamKMpp(config)
        assert clusterer.tree.merge_degree == 2

    def test_end_to_end_quality(self, small_config, blob_points, blob_centers):
        clusterer = StreamKMpp(small_config)
        clusterer.insert_many(blob_points)
        result = clusterer.query()
        cost = kmeans_cost(blob_points, result.centers)
        reference = kmeans_cost(blob_points, blob_centers)
        assert cost <= 3.0 * reference

    def test_query_center_count(self, small_config, blob_points):
        clusterer = StreamKMpp(small_config)
        clusterer.insert_many(blob_points[:700])
        assert clusterer.query().centers.shape[0] == small_config.k
