"""Unit tests for the CluStream microcluster clusterer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.clustream import CluStreamClusterer, MicroCluster
from repro.kmeans.cost import kmeans_cost


class TestMicroCluster:
    def test_single_point(self):
        mc = MicroCluster(np.array([1.0, 1.0]), timestamp=5)
        np.testing.assert_allclose(mc.centroid, [1.0, 1.0])
        assert mc.rms_radius == pytest.approx(0.0)
        assert mc.mean_timestamp == pytest.approx(5.0)

    def test_absorb(self):
        mc = MicroCluster(np.array([0.0]), timestamp=1)
        mc.absorb(np.array([2.0]), timestamp=3)
        np.testing.assert_allclose(mc.centroid, [1.0])
        assert mc.mean_timestamp == pytest.approx(2.0)
        assert mc.last_update == 3

    def test_merge(self):
        a = MicroCluster(np.array([0.0]), timestamp=1)
        b = MicroCluster(np.array([4.0]), timestamp=9)
        a.merge(b)
        assert a.count == 2.0
        np.testing.assert_allclose(a.centroid, [2.0])
        assert a.last_update == 9


class TestCluStreamClusterer:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CluStreamClusterer(k=0)
        with pytest.raises(ValueError):
            CluStreamClusterer(k=10, num_microclusters=5)

    def test_default_microcluster_budget(self):
        assert CluStreamClusterer(k=7).num_microclusters == 70

    def test_query_before_points_raises(self):
        with pytest.raises(RuntimeError):
            CluStreamClusterer(k=2).query()

    def test_budget_enforced(self, rng):
        clusterer = CluStreamClusterer(k=3, num_microclusters=15, seed=0)
        for point in rng.uniform(-100, 100, size=(400, 3)):
            clusterer.insert(point)
        assert clusterer.num_active_microclusters <= 15
        assert clusterer.stored_points() <= 15

    def test_nearby_points_absorbed(self):
        clusterer = CluStreamClusterer(k=2, num_microclusters=10)
        clusterer.insert(np.array([0.0, 0.0]))
        clusterer.insert(np.array([10.0, 0.0]))
        # Third point is close to the first microcluster (within the singleton
        # boundary, which is the distance to the nearest other centroid).
        clusterer.insert(np.array([0.5, 0.0]))
        assert clusterer.num_active_microclusters == 2

    def test_clusters_blobs(self, blob_points, blob_centers):
        clusterer = CluStreamClusterer(k=4, num_microclusters=40, seed=0)
        for point in blob_points:
            clusterer.insert(point)
        result = clusterer.query()
        cost = kmeans_cost(blob_points, result.centers)
        reference = kmeans_cost(blob_points, blob_centers)
        assert cost <= 5.0 * reference

    def test_points_seen(self, blob_points):
        clusterer = CluStreamClusterer(k=3)
        for point in blob_points[:42]:
            clusterer.insert(point)
        assert clusterer.points_seen == 42

    def test_stale_cluster_deleted_under_drift(self):
        clusterer = CluStreamClusterer(
            k=2, num_microclusters=4, recency_horizon=50, seed=0
        )
        rng = np.random.default_rng(0)
        # Old regime.
        for point in rng.normal(loc=0.0, size=(100, 2)):
            clusterer.insert(point)
        # New regime far away, long after: old microclusters become stale and
        # must eventually be evicted rather than merged forever.
        for offset in (100.0, 200.0, 300.0, 400.0, 500.0):
            for point in rng.normal(loc=offset, size=(60, 2)):
                clusterer.insert(point)
        assert clusterer.num_active_microclusters <= 4
