"""Unit tests for the STREAMLS-style divide-and-conquer clusterer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.streamls import StreamLSClusterer
from repro.kmeans.cost import kmeans_cost


class TestStreamLSClusterer:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StreamLSClusterer(k=0)
        with pytest.raises(ValueError):
            StreamLSClusterer(k=3, fanout=1)
        with pytest.raises(ValueError):
            StreamLSClusterer(k=3, chunk_size=0)

    def test_default_chunk_size(self):
        assert StreamLSClusterer(k=5).chunk_size == 200

    def test_query_before_points_raises(self):
        with pytest.raises(RuntimeError):
            StreamLSClusterer(k=2).query()

    def test_query_from_partial_chunk(self, rng):
        clusterer = StreamLSClusterer(k=3, chunk_size=100, seed=0)
        for point in rng.normal(size=(30, 2)):
            clusterer.insert(point)
        result = clusterer.query()
        assert result.centers.shape == (3, 2)

    def test_representatives_bounded(self, rng):
        clusterer = StreamLSClusterer(k=3, chunk_size=50, fanout=4, seed=0)
        for point in rng.normal(size=(2000, 2)):
            clusterer.insert(point)
        # Stored points: buffer (< chunk) plus at most fanout*k per level and
        # only logarithmically many levels.
        assert clusterer.stored_points() < 50 + 4 * 3 * 10

    def test_promotion_to_higher_levels(self, rng):
        clusterer = StreamLSClusterer(k=2, chunk_size=20, fanout=2, seed=0)
        for point in rng.normal(size=(400, 2)):
            clusterer.insert(point)
        # After 20 chunks with fanout 2, several levels of promotion must have
        # occurred, so the representative count stays small.
        assert clusterer.stored_points() < 400

    def test_clusters_blobs(self, blob_points, blob_centers):
        clusterer = StreamLSClusterer(k=4, chunk_size=200, seed=0)
        for point in blob_points:
            clusterer.insert(point)
        result = clusterer.query()
        cost = kmeans_cost(blob_points, result.centers)
        reference = kmeans_cost(blob_points, blob_centers)
        assert cost <= 4.0 * reference

    def test_points_seen(self, blob_points):
        clusterer = StreamLSClusterer(k=3)
        for point in blob_points[:77]:
            clusterer.insert(point)
        assert clusterer.points_seen == 77

    def test_rejects_dimension_mismatch(self, blob_points):
        # Regression: mismatched blocks used to enter the level structure and
        # only blow up much later inside query()'s vstack.
        clusterer = StreamLSClusterer(k=3, chunk_size=10)
        clusterer.insert_batch(blob_points[:25])
        with pytest.raises(ValueError, match="dimension"):
            clusterer.insert_batch(np.zeros((5, blob_points.shape[1] + 1)))
        with pytest.raises(ValueError, match="dimension"):
            clusterer.insert(np.zeros(blob_points.shape[1] + 1))
        assert clusterer.query().centers.shape == (3, blob_points.shape[1])
