"""Unit tests for weighted Lloyd's iterations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kmeans.cost import kmeans_cost
from repro.kmeans.lloyd import LloydResult, lloyd_iterations


class TestLloydIterations:
    def test_cost_never_worse_than_initial(self, blob_points):
        initial = blob_points[:4].copy()
        before = kmeans_cost(blob_points, initial)
        result = lloyd_iterations(blob_points, initial, max_iterations=10)
        assert result.cost <= before + 1e-9

    def test_recovers_separated_blobs(self, blob_points, blob_centers):
        # Start from a perturbed version of the truth; Lloyd should converge
        # right back to (approximately) the blob means.
        initial = blob_centers + 2.0
        result = lloyd_iterations(blob_points, initial, max_iterations=20)
        for true_center in blob_centers:
            nearest = np.min(np.linalg.norm(result.centers - true_center, axis=1))
            assert nearest < 0.5

    def test_converged_flag_on_fixed_point(self):
        points = np.array([[0.0], [1.0], [10.0], [11.0]])
        centers = np.array([[0.5], [10.5]])
        result = lloyd_iterations(points, centers, max_iterations=5)
        assert result.converged
        np.testing.assert_allclose(result.centers, centers)

    def test_zero_iterations(self, blob_points):
        initial = blob_points[:3]
        result = lloyd_iterations(blob_points, initial, max_iterations=0)
        assert result.iterations == 0
        np.testing.assert_array_equal(result.centers, initial)

    def test_does_not_modify_input_centers(self, blob_points):
        initial = blob_points[:4].copy()
        snapshot = initial.copy()
        lloyd_iterations(blob_points, initial, max_iterations=3)
        np.testing.assert_array_equal(initial, snapshot)

    def test_empty_cluster_reseeded(self):
        # Second center is far away from every point and would become empty.
        points = np.vstack([np.zeros((20, 2)), np.ones((20, 2))])
        centers = np.array([[0.5, 0.5], [1000.0, 1000.0]])
        result = lloyd_iterations(points, centers, max_iterations=10)
        assert result.centers.shape == (2, 2)
        # After reseeding, both clusters should land within the data's range.
        assert np.all(result.centers <= 1.5) and np.all(result.centers >= -0.5)
        assert result.cost < kmeans_cost(points, centers)

    def test_weighted_pull(self):
        # A heavily-weighted point drags the centroid toward itself.
        points = np.array([[0.0], [10.0]])
        weights = np.array([1.0, 99.0])
        result = lloyd_iterations(points, np.array([[5.0]]), weights=weights)
        assert result.centers[0, 0] == pytest.approx(9.9)

    def test_empty_points(self):
        result = lloyd_iterations(np.empty((0, 2)), np.zeros((2, 2)))
        assert isinstance(result, LloydResult)
        assert result.iterations == 0
        assert result.cost == 0.0

    def test_wrong_weight_shape_raises(self, blob_points):
        with pytest.raises(ValueError, match="weights"):
            lloyd_iterations(blob_points, blob_points[:2], weights=np.ones(3))

    def test_non_2d_inputs_raise(self):
        with pytest.raises(ValueError, match="2-D"):
            lloyd_iterations(np.zeros(5), np.zeros((2, 1)))
