"""Unit tests for the fuzzy c-means primitives in ``repro.kmeans.soft``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kmeans.soft import soft_assignments, soft_cost, soft_lloyd


def _blobs(seed: int = 0, n: int = 300, d: int = 3):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=8.0, size=(3, d))
    labels = rng.integers(0, 3, size=n)
    return centers[labels] + rng.normal(scale=0.5, size=(n, d)), centers


class TestSoftAssignments:
    def test_rows_sum_to_one(self):
        points, centers = _blobs()
        u = soft_assignments(points, centers, fuzziness=2.0)
        assert u.shape == (300, 3)
        np.testing.assert_allclose(u.sum(axis=1), 1.0, atol=1e-9)

    def test_invalid_fuzziness(self):
        points, centers = _blobs()
        with pytest.raises(ValueError, match="fuzziness must exceed 1.0"):
            soft_assignments(points, centers, fuzziness=1.0)

    def test_point_on_center_gets_full_membership(self):
        centers = np.array([[0.0, 0.0], [10.0, 0.0]])
        u = soft_assignments(np.array([[0.0, 0.0]]), centers)
        np.testing.assert_allclose(u, [[1.0, 0.0]])

    def test_point_on_two_coincident_centers_splits_evenly(self):
        centers = np.array([[0.0, 0.0], [0.0, 0.0], [10.0, 0.0]])
        u = soft_assignments(np.array([[0.0, 0.0]]), centers)
        np.testing.assert_allclose(u, [[0.5, 0.5, 0.0]])

    def test_single_point_input_reshaped(self):
        _, centers = _blobs()
        u = soft_assignments(np.zeros(3), centers)
        assert u.shape == (1, 3)

    def test_low_fuzziness_approaches_hard_assignment(self):
        points, centers = _blobs()
        u = soft_assignments(points, centers, fuzziness=1.01)
        assert float(u.max(axis=1).min()) > 0.999


class TestSoftLloyd:
    def test_deterministic_given_seed_centers(self):
        points, centers = _blobs()
        a = soft_lloyd(points, 3, initial_centers=centers)
        b = soft_lloyd(points, 3, initial_centers=centers)
        np.testing.assert_array_equal(a.centers, b.centers)
        np.testing.assert_array_equal(a.memberships, b.memberships)
        assert a.cost == b.cost and a.iterations == b.iterations

    def test_descent_does_not_increase_cost(self):
        points, centers = _blobs()
        seeded = centers + np.random.default_rng(1).normal(scale=2.0, size=centers.shape)
        u0 = soft_assignments(points, seeded)
        start = soft_cost(points, seeded, u0)
        solution = soft_lloyd(points, 3, initial_centers=seeded, max_iterations=10)
        assert solution.cost <= start + 1e-9

    def test_recovers_well_separated_blobs(self):
        points, true_centers = _blobs(n=600)
        solution = soft_lloyd(points, 3, initial_centers=true_centers, max_iterations=20)
        # Each true center should have a fitted center within the noise scale.
        dists = np.linalg.norm(
            solution.centers[:, None, :] - true_centers[None, :, :], axis=2
        )
        assert float(dists.min(axis=0).max()) < 1.0

    def test_weights_shift_centers(self):
        points = np.array([[0.0], [0.0], [10.0]])
        heavy_right = soft_lloyd(
            points, 1, weights=np.array([1.0, 1.0, 100.0]), initial_centers=np.array([[5.0]])
        )
        heavy_left = soft_lloyd(
            points, 1, weights=np.array([100.0, 100.0, 1.0]), initial_centers=np.array([[5.0]])
        )
        assert heavy_right.centers[0, 0] > heavy_left.centers[0, 0]

    def test_validation(self):
        points, _ = _blobs()
        with pytest.raises(ValueError, match="fuzziness"):
            soft_lloyd(points, 3, fuzziness=1.0)
        with pytest.raises(ValueError, match="k must be positive"):
            soft_lloyd(points, 0)
        with pytest.raises(ValueError, match="empty point set"):
            soft_lloyd(np.empty((0, 3)), 3)
        with pytest.raises(ValueError, match="initial_centers must have 3 rows"):
            soft_lloyd(points, 3, initial_centers=np.zeros((2, 3)))

    def test_seeding_without_initial_centers_uses_rng(self):
        points, _ = _blobs()
        a = soft_lloyd(points, 3, rng=np.random.default_rng(5))
        b = soft_lloyd(points, 3, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.centers, b.centers)
