"""Unit tests for the batch k-means estimator (k-means++ + Lloyd + restarts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kmeans.batch import BatchKMeans, KMeansConfig, weighted_kmeans
from repro.kmeans.cost import kmeans_cost


class TestKMeansConfig:
    def test_defaults(self):
        config = KMeansConfig(k=5)
        assert config.n_init == 5
        assert config.max_iterations == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"k": -2},
            {"k": 3, "n_init": 0},
            {"k": 3, "max_iterations": -1},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            KMeansConfig(**kwargs)


class TestWeightedKmeans:
    def test_shape_and_quality_on_blobs(self, blob_points, blob_centers):
        result = weighted_kmeans(blob_points, 4, rng=np.random.default_rng(0))
        assert result.centers.shape == (4, 4)
        reference = kmeans_cost(blob_points, blob_centers)
        assert result.cost <= 1.5 * reference

    def test_cost_matches_reported_centers(self, blob_points):
        result = weighted_kmeans(blob_points, 4, rng=np.random.default_rng(1))
        assert result.cost == pytest.approx(kmeans_cost(blob_points, result.centers))

    def test_more_restarts_never_hurt_much(self, blob_points):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        single = weighted_kmeans(blob_points, 4, n_init=1, rng=rng_a)
        many = weighted_kmeans(blob_points, 4, n_init=5, rng=rng_b)
        assert many.cost <= single.cost * 1.0 + 1e-9

    def test_fewer_points_than_k(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = weighted_kmeans(points, 5, rng=np.random.default_rng(0))
        assert result.centers.shape == (5, 2)
        assert result.cost == pytest.approx(0.0)

    def test_exactly_k_points(self):
        points = np.arange(8, dtype=float).reshape(4, 2)
        result = weighted_kmeans(points, 4, rng=np.random.default_rng(0))
        assert result.centers.shape == (4, 2)
        assert result.cost == pytest.approx(0.0)

    def test_weights_respected(self):
        # Nearly all weight on two locations: centers must land there.
        points = np.array([[0.0], [100.0], [50.0]])
        weights = np.array([1000.0, 1000.0, 0.001])
        result = weighted_kmeans(points, 2, weights=weights, rng=np.random.default_rng(0))
        found = np.sort(result.centers.ravel())
        assert found[0] == pytest.approx(0.0, abs=1.0)
        assert found[1] == pytest.approx(100.0, abs=1.0)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError, match="empty"):
            weighted_kmeans(np.empty((0, 2)), 3)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            weighted_kmeans(np.zeros(5), 2)


class TestBatchKMeans:
    def test_fit_predict_roundtrip(self, blob_points):
        model = BatchKMeans(KMeansConfig(k=4), seed=0)
        model.fit(blob_points)
        assert model.centers_ is not None
        labels = model.predict(blob_points)
        assert labels.shape == (blob_points.shape[0],)
        assert set(np.unique(labels)) <= set(range(4))

    def test_cost_method(self, blob_points):
        model = BatchKMeans(KMeansConfig(k=4), seed=0).fit(blob_points)
        assert model.cost(blob_points) == pytest.approx(
            kmeans_cost(blob_points, model.centers_)
        )

    def test_predict_before_fit_raises(self, blob_points):
        model = BatchKMeans(KMeansConfig(k=4))
        with pytest.raises(RuntimeError, match="before fit"):
            model.predict(blob_points)

    def test_cost_before_fit_raises(self, blob_points):
        model = BatchKMeans(KMeansConfig(k=4))
        with pytest.raises(RuntimeError, match="before fit"):
            model.cost(blob_points)

    def test_same_seed_reproducible(self, blob_points):
        a = BatchKMeans(KMeansConfig(k=4), seed=11).fit(blob_points)
        b = BatchKMeans(KMeansConfig(k=4), seed=11).fit(blob_points)
        np.testing.assert_array_equal(a.centers_, b.centers_)
