"""Unit tests for k-means cost and assignment utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kmeans.cost import (
    assign_points,
    cluster_sizes,
    kmeans_cost,
    pairwise_squared_distances,
    per_cluster_cost,
)


class TestPairwiseSquaredDistances:
    def test_simple_distances(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        centers = np.array([[0.0, 0.0]])
        dist = pairwise_squared_distances(points, centers)
        assert dist.shape == (2, 1)
        assert dist[0, 0] == pytest.approx(0.0)
        assert dist[1, 0] == pytest.approx(25.0)

    def test_multiple_centers(self):
        points = np.array([[1.0, 0.0]])
        centers = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 1.0]])
        dist = pairwise_squared_distances(points, centers)
        np.testing.assert_allclose(dist, [[1.0, 1.0, 1.0]])

    def test_never_negative(self):
        generator = np.random.default_rng(0)
        points = generator.normal(size=(100, 8)) * 1e6
        dist = pairwise_squared_distances(points, points[:5])
        assert np.all(dist >= 0.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            pairwise_squared_distances(np.zeros((3, 2)), np.zeros((2, 3)))

    def test_one_dimensional_point_is_promoted(self):
        dist = pairwise_squared_distances(np.array([1.0, 2.0]), np.array([[0.0, 0.0]]))
        assert dist.shape == (1, 1)
        assert dist[0, 0] == pytest.approx(5.0)

    def test_three_dimensional_input_rejected(self):
        with pytest.raises(ValueError):
            pairwise_squared_distances(np.zeros((2, 2, 2)), np.zeros((1, 2)))


class TestAssignPoints:
    def test_assigns_to_nearest(self):
        points = np.array([[0.0], [10.0], [4.9]])
        centers = np.array([[0.0], [10.0]])
        labels, sq = assign_points(points, centers)
        np.testing.assert_array_equal(labels, [0, 1, 0])
        assert sq[2] == pytest.approx(4.9**2)

    def test_single_center(self):
        points = np.arange(10, dtype=float).reshape(-1, 1)
        labels, _ = assign_points(points, np.array([[0.0]]))
        assert np.all(labels == 0)


class TestKmeansCost:
    def test_zero_cost_when_points_equal_centers(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert kmeans_cost(points, points) == pytest.approx(0.0)

    def test_unweighted_cost(self):
        points = np.array([[0.0], [2.0]])
        centers = np.array([[1.0]])
        assert kmeans_cost(points, centers) == pytest.approx(2.0)

    def test_weighted_cost(self):
        points = np.array([[0.0], [2.0]])
        centers = np.array([[1.0]])
        weights = np.array([3.0, 1.0])
        assert kmeans_cost(points, centers, weights) == pytest.approx(4.0)

    def test_empty_points_cost_is_zero(self):
        assert kmeans_cost(np.empty((0, 3)), np.zeros((2, 3))) == 0.0

    def test_wrong_weight_shape_raises(self):
        with pytest.raises(ValueError, match="weights"):
            kmeans_cost(np.zeros((3, 2)), np.zeros((1, 2)), weights=np.ones(2))

    def test_cost_decreases_with_better_centers(self, blob_points, blob_centers):
        good = kmeans_cost(blob_points, blob_centers)
        bad = kmeans_cost(blob_points, np.zeros((4, 4)))
        assert good < bad


class TestPerClusterCost:
    def test_sums_to_total_cost(self, blob_points, blob_centers):
        per_cluster = per_cluster_cost(blob_points, blob_centers)
        total = kmeans_cost(blob_points, blob_centers)
        assert per_cluster.shape == (4,)
        assert per_cluster.sum() == pytest.approx(total)

    def test_empty_cluster_has_zero_cost(self):
        points = np.array([[0.0], [0.1]])
        centers = np.array([[0.0], [100.0]])
        per_cluster = per_cluster_cost(points, centers)
        assert per_cluster[1] == pytest.approx(0.0)

    def test_weighted(self):
        points = np.array([[1.0], [-1.0]])
        centers = np.array([[0.0]])
        per_cluster = per_cluster_cost(points, centers, weights=np.array([2.0, 3.0]))
        assert per_cluster[0] == pytest.approx(5.0)

    def test_empty_points(self):
        out = per_cluster_cost(np.empty((0, 2)), np.zeros((3, 2)))
        np.testing.assert_array_equal(out, np.zeros(3))


class TestClusterSizes:
    def test_unweighted_sizes(self):
        points = np.array([[0.0], [0.1], [10.0]])
        centers = np.array([[0.0], [10.0]])
        sizes = cluster_sizes(points, centers)
        np.testing.assert_allclose(sizes, [2.0, 1.0])

    def test_weighted_sizes_sum_to_total_weight(self, blob_points, blob_centers):
        weights = np.linspace(0.5, 2.0, blob_points.shape[0])
        sizes = cluster_sizes(blob_points, blob_centers, weights)
        assert sizes.sum() == pytest.approx(weights.sum())

    def test_empty_points(self):
        sizes = cluster_sizes(np.empty((0, 2)), np.zeros((2, 2)))
        np.testing.assert_array_equal(sizes, np.zeros(2))
