"""Unit tests for the MacQueen sequential k-means state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kmeans.sequential import SequentialKMeansState


class TestSequentialKMeansState:
    def test_initialisation_phase_uses_first_k_points(self):
        state = SequentialKMeansState(k=3, dimension=2)
        first = [np.array([0.0, 0.0]), np.array([5.0, 5.0]), np.array([10.0, 0.0])]
        for point in first:
            assert state.update(point) == 0.0
        assert state.is_initialized
        np.testing.assert_allclose(state.centers, np.vstack(first))

    def test_not_initialized_before_k_points(self):
        state = SequentialKMeansState(k=5, dimension=2)
        state.update(np.zeros(2))
        assert not state.is_initialized

    def test_centroid_update_rule(self):
        state = SequentialKMeansState(k=1, dimension=1)
        state.update(np.array([0.0]))
        # Weight is now 1, the next point moves the center to the midpoint.
        sq = state.update(np.array([2.0]))
        assert sq == pytest.approx(4.0)
        assert state.centers[0, 0] == pytest.approx(1.0)
        assert state.weights[0] == pytest.approx(2.0)
        # Third point: new centroid is (1*2 + 5)/3.
        state.update(np.array([5.0]))
        assert state.centers[0, 0] == pytest.approx((2.0 + 5.0) / 3.0)

    def test_update_returns_squared_distance_to_nearest(self):
        state = SequentialKMeansState(k=2, dimension=1)
        state.update(np.array([0.0]))
        state.update(np.array([10.0]))
        sq = state.update(np.array([9.0]))
        assert sq == pytest.approx(1.0)

    def test_nearest_center_moves(self):
        state = SequentialKMeansState(k=2, dimension=1)
        state.update(np.array([0.0]))
        state.update(np.array([10.0]))
        state.update(np.array([8.0]))
        # Center 0 untouched, center 1 moved toward 8.
        assert state.centers[0, 0] == pytest.approx(0.0)
        assert state.centers[1, 0] == pytest.approx(9.0)

    def test_set_centers_overrides_state(self):
        state = SequentialKMeansState(k=2, dimension=2)
        new_centers = np.array([[1.0, 1.0], [2.0, 2.0]])
        state.set_centers(new_centers)
        assert state.is_initialized
        np.testing.assert_allclose(state.centers, new_centers)
        # Weights reset to at least 1 so the update rule stays well-defined.
        assert np.all(state.weights >= 1.0)

    def test_set_centers_with_weights(self):
        state = SequentialKMeansState(k=2, dimension=1)
        state.set_centers(np.array([[0.0], [1.0]]), weights=np.array([5.0, 3.0]))
        np.testing.assert_allclose(state.weights, [5.0, 3.0])

    def test_set_centers_wrong_shape_raises(self):
        state = SequentialKMeansState(k=2, dimension=2)
        with pytest.raises(ValueError, match="shape"):
            state.set_centers(np.zeros((3, 2)))

    def test_wrong_dimension_point_raises(self):
        state = SequentialKMeansState(k=2, dimension=3)
        with pytest.raises(ValueError, match="dimension"):
            state.update(np.zeros(2))

    @pytest.mark.parametrize("k,d", [(0, 2), (2, 0), (-1, 3)])
    def test_invalid_construction(self, k, d):
        with pytest.raises(ValueError):
            SequentialKMeansState(k=k, dimension=d)

    def test_tracks_blob_centers_roughly(self, blob_points, blob_centers):
        state = SequentialKMeansState(k=4, dimension=4)
        # Feed one point from each blob first so initialisation is spread out.
        for center in blob_centers:
            state.update(center)
        for point in blob_points:
            state.update(point)
        for true_center in blob_centers:
            nearest = np.min(np.linalg.norm(state.centers - true_center, axis=1))
            assert nearest < 2.0
