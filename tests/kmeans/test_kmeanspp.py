"""Unit tests for weighted k-means++ seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kmeans.cost import kmeans_cost
from repro.kmeans.kmeanspp import kmeanspp_seeding


class TestKmeansppSeeding:
    def test_returns_k_centers(self, blob_points):
        rng = np.random.default_rng(0)
        centers = kmeanspp_seeding(blob_points, 4, rng=rng)
        assert centers.shape == (4, blob_points.shape[1])

    def test_centers_are_input_points(self, blob_points):
        rng = np.random.default_rng(1)
        centers = kmeanspp_seeding(blob_points, 5, rng=rng)
        for center in centers:
            distances = np.linalg.norm(blob_points - center, axis=1)
            assert np.min(distances) == pytest.approx(0.0, abs=1e-12)

    def test_k_at_least_n_returns_all_points(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        centers = kmeanspp_seeding(points, 5, rng=np.random.default_rng(0))
        assert centers.shape == (3, 2)
        np.testing.assert_allclose(np.sort(centers, axis=0), np.sort(points, axis=0))

    def test_seeding_finds_separated_clusters(self, blob_points, blob_centers):
        # With well-separated blobs, D^2 sampling should pick one point from
        # each blob almost always; cost should be near the true clustering cost.
        rng = np.random.default_rng(2)
        centers = kmeanspp_seeding(blob_points, 4, rng=rng)
        cost = kmeans_cost(blob_points, centers)
        reference = kmeans_cost(blob_points, blob_centers)
        assert cost < 5.0 * reference

    def test_deterministic_given_seed(self, blob_points):
        a = kmeanspp_seeding(blob_points, 3, rng=np.random.default_rng(9))
        b = kmeanspp_seeding(blob_points, 3, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_weights_bias_selection(self):
        # Two groups; one has overwhelming weight, so the first chosen center
        # almost surely comes from it.
        points = np.vstack([np.zeros((5, 2)), np.full((5, 2), 100.0)])
        weights = np.array([1e6] * 5 + [1e-6] * 5)
        hits = 0
        for seed in range(20):
            centers = kmeanspp_seeding(
                points, 1, weights=weights, rng=np.random.default_rng(seed)
            )
            if np.allclose(centers[0], 0.0):
                hits += 1
        assert hits == 20

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 3))
        centers = kmeanspp_seeding(points, 2, rng=np.random.default_rng(0))
        assert centers.shape == (2, 3)
        np.testing.assert_array_equal(centers, np.zeros((2, 3)))

    def test_invalid_k_raises(self, blob_points):
        with pytest.raises(ValueError, match="k must be positive"):
            kmeanspp_seeding(blob_points, 0)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError, match="empty"):
            kmeanspp_seeding(np.empty((0, 2)), 3)

    def test_negative_weights_raise(self, blob_points):
        weights = np.ones(blob_points.shape[0])
        weights[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            kmeanspp_seeding(blob_points, 2, weights=weights)

    def test_all_zero_weights_raise(self):
        points = np.ones((4, 2))
        with pytest.raises(ValueError, match="positive"):
            kmeanspp_seeding(points, 2, weights=np.zeros(4))

    def test_wrong_weight_shape_raises(self, blob_points):
        with pytest.raises(ValueError, match="shape"):
            kmeanspp_seeding(blob_points, 2, weights=np.ones(3))

    def test_one_dimensional_points_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            kmeanspp_seeding(np.array([1.0, 2.0, 3.0]), 2)
