"""Network monitoring: frequent clustering queries over an intrusion-style stream.

The paper's motivating scenario is an application (network monitoring, sensor
analysis) that needs cluster centers in near real time.  This example streams
the Intrusion-like dataset through four algorithms — Sequential k-means,
streamkm++, CC, and OnlineCC — issuing a clustering query every 100 points,
and reports for each the total update time, total query time, and the final
clustering cost.  It shows the two headline results:

* OnlineCC and CC answer queries far faster than streamkm++;
* Sequential k-means is fast but its clustering cost is much worse on this
  skewed data.

Run with:  python examples/network_monitoring.py
"""

from __future__ import annotations

from repro.bench.harness import StreamingExperiment, run_experiment
from repro.bench.report import format_table
from repro.core.base import StreamingConfig
from repro.data.loaders import load_intrusion
from repro.queries.schedule import FixedIntervalSchedule


def main() -> None:
    dataset = load_intrusion(num_points=10_000, seed=3)
    points = dataset.points
    k = 20
    query_interval = 100

    print(
        f"Dataset: {dataset.name} stand-in, {dataset.num_points} points, "
        f"{dataset.dimension} dimensions"
    )
    print(f"k = {k}, one clustering query every {query_interval} points\n")

    config = StreamingConfig(k=k, seed=0)
    schedule = FixedIntervalSchedule(query_interval)

    rows = []
    for algorithm in ("sequential", "streamkm++", "cc", "onlinecc"):
        experiment = StreamingExperiment(
            algorithm=algorithm, config=config, schedule=schedule
        )
        result = run_experiment(experiment, points)
        rows.append(
            {
                "algorithm": algorithm,
                "update_s": result.timing.update_seconds,
                "query_s": result.timing.query_seconds,
                "total_s": result.timing.total_seconds,
                "queries": result.num_queries,
                "final_cost": result.final_cost,
                "stored_points": result.memory.points_stored,
            }
        )

    print(format_table(rows, title="Frequent-query comparison (Intrusion-like stream)"))

    by_name = {row["algorithm"]: row for row in rows}
    speedup = by_name["streamkm++"]["query_s"] / max(by_name["onlinecc"]["query_s"], 1e-9)
    cost_gap = by_name["sequential"]["final_cost"] / by_name["cc"]["final_cost"]
    print(f"\nOnlineCC query-time speed-up over streamkm++: {speedup:.1f}x")
    print(f"Sequential k-means cost vs. CC cost:          {cost_gap:.1f}x worse")


if __name__ == "__main__":
    main()
