"""Network monitoring: frequent clustering queries over an intrusion-style stream.

The paper's motivating scenario is an application (network monitoring, sensor
analysis) that needs cluster centers in near real time.  This example streams
the Intrusion-like dataset through four algorithms — Sequential k-means,
streamkm++, CC, and OnlineCC — issuing a clustering query every 100 points,
and reports for each the total update time, total query time, median
per-query latency, warm-served query count, and the final clustering cost.
It shows three headline results:

* with warm-start serving (the library default) every coreset algorithm
  answers queries in sub-millisecond steady state;
* under the paper's from-scratch query model, OnlineCC and CC answer queries
  far faster than streamkm++ (the paper's original claim);
* Sequential k-means is fast but its clustering cost is much worse on this
  skewed data.

Run with:  python examples/network_monitoring.py
"""

from __future__ import annotations

from _example_utils import scaled

from repro.bench.harness import StreamingExperiment, run_experiment
from repro.bench.report import format_table, latency_summary
from repro.core.base import StreamingConfig
from repro.data.loaders import load_intrusion
from repro.queries.schedule import FixedIntervalSchedule


def main() -> None:
    """Compare the algorithms under a frequent-query monitoring workload."""
    dataset = load_intrusion(num_points=scaled(10_000), seed=3)
    points = dataset.points
    k = 20
    query_interval = 100

    print(
        f"Dataset: {dataset.name} stand-in, {dataset.num_points} points, "
        f"{dataset.dimension} dimensions"
    )
    print(f"k = {k}, one clustering query every {query_interval} points\n")

    config = StreamingConfig(k=k, seed=0)
    schedule = FixedIntervalSchedule(query_interval)

    rows = []
    for algorithm in ("sequential", "streamkm++", "cc", "onlinecc"):
        experiment = StreamingExperiment(
            algorithm=algorithm, config=config, schedule=schedule
        )
        result = run_experiment(experiment, points)
        rows.append(
            {
                "algorithm": algorithm,
                "update_s": result.timing.update_seconds,
                "query_s": result.timing.query_seconds,
                "total_s": result.timing.total_seconds,
                "queries": result.num_queries,
                "median_query_us": latency_summary(result.query_latencies)["median_us"],
                "warm": result.serving.warm_queries,
                "cache_hits": result.serving.cache_hits,
                "final_cost": result.final_cost,
                "stored_points": result.memory.points_stored,
            }
        )

    print(format_table(rows, title="Frequent-query comparison (Intrusion-like stream)"))

    by_name = {row["algorithm"]: row for row in rows}
    cost_gap = by_name["sequential"]["final_cost"] / by_name["cc"]["final_cost"]
    print(f"\nSequential k-means cost vs. CC cost: {cost_gap:.1f}x worse")

    # The paper's timing claim is about the from-scratch query model, so
    # re-measure streamkm++ vs OnlineCC with warm-start serving disabled.
    from dataclasses import replace

    cold_config = replace(config, warm_start=False)
    cold_query_s = {}
    for algorithm in ("streamkm++", "onlinecc"):
        result = run_experiment(
            StreamingExperiment(algorithm=algorithm, config=cold_config, schedule=schedule),
            points,
        )
        cold_query_s[algorithm] = result.timing.query_seconds
    speedup = cold_query_s["streamkm++"] / max(cold_query_s["onlinecc"], 1e-9)
    print(
        f"Paper's from-scratch query model: OnlineCC answers queries "
        f"{speedup:.1f}x faster than streamkm++"
    )


if __name__ == "__main__":
    main()
