"""Concept drift: tracking moving cluster centers with OnlineCC.

The paper's Drift dataset models cluster centers that move over time (an RBF
generator in the style of MOA).  This example streams a drifting dataset
through OnlineCC and shows how the algorithm reacts: most queries are served
in O(1) from the online centers, but when the drift makes the maintained
centers stale (the cost bound exceeds alpha times the cost at the last
fallback) the algorithm falls back to the provably-accurate CC path and
re-centers itself.

The example prints, for each window of the stream, the clustering cost of the
returned centers on that window and whether the window triggered a fallback.

Run with:  python examples/drift_monitoring.py
"""

from __future__ import annotations

from _example_utils import scaled

from repro import OnlineCCClusterer, StreamingConfig, kmeans_cost
from repro.data.drift import RBFDriftGenerator, RBFDriftSpec


def main() -> None:
    """Stream a drifting RBF mixture through OnlineCC and report fallbacks."""
    spec = RBFDriftSpec(
        dimension=16,
        num_centers=8,
        points_per_step=100,
        drift_speed=0.4,
        center_spread=15.0,
    )
    generator = RBFDriftGenerator(spec, seed=11)
    k = 8

    clusterer = OnlineCCClusterer(
        StreamingConfig(k=k, seed=0), switch_threshold=1.5
    )

    num_windows = 30
    window_points = scaled(1_000, minimum=300)
    print(
        f"Drifting stream: {spec.num_centers} centers, dimension {spec.dimension}, "
        f"drift speed {spec.drift_speed} per step"
    )
    print(f"{num_windows} windows of {window_points} points each; k = {k}\n")
    print(f"{'window':>6} | {'window cost':>12} | {'fallbacks so far':>16} | {'fast answers':>12}")
    print("-" * 56)

    for window in range(1, num_windows + 1):
        block = generator.generate(window_points)
        clusterer.insert_many(block)
        result = clusterer.query()
        window_cost = kmeans_cost(block, result.centers)
        print(
            f"{window:>6} | {window_cost:>12.1f} | {clusterer.fallback_count:>16} | "
            f"{clusterer.fast_answer_count:>12}"
        )

    total_queries = clusterer.fallback_count + clusterer.fast_answer_count
    print("\n--- summary ---")
    print(f"queries answered      : {total_queries}")
    print(f"fallbacks to CC       : {clusterer.fallback_count}")
    print(f"O(1) fast-path answers: {clusterer.fast_answer_count}")
    print(
        "The fallbacks are the points at which drift made the online centers "
        "stale enough that OnlineCC re-derived them from the coreset cache."
    )


if __name__ == "__main__":
    main()
