"""Side-by-side comparison of every clustering algorithm in the library.

Streams the Covtype-like dataset through all streaming algorithms (the
paper's line-up plus the related-work baselines BIRCH, CluStream, and
STREAMLS) under a Poisson query schedule, then prints a single comparison
table: accuracy (k-means cost over the full stream), update time, query time,
and memory.  This is the "which algorithm should I use?" view a downstream
user would want before adopting the library.

Run with:  python examples/algorithm_comparison.py
"""

from __future__ import annotations

import time

import numpy as np
from _example_utils import scaled

from repro import (
    BirchClusterer,
    CluStreamClusterer,
    StreamLSClusterer,
    kmeans_cost,
)
from repro.bench.harness import StreamingExperiment, run_experiment
from repro.bench.report import format_table
from repro.core.base import StreamingConfig
from repro.data.loaders import load_covtype
from repro.queries.schedule import PoissonSchedule


def run_registry_algorithms(points: np.ndarray, k: int) -> list[dict[str, object]]:
    """Run the paper's algorithms through the shared experiment harness."""
    config = StreamingConfig(k=k, seed=0)
    schedule = PoissonSchedule.from_mean_interval(200, seed=1)
    rows = []
    for algorithm in ("sequential", "streamkm++", "ct", "cc", "rcc", "onlinecc"):
        result = run_experiment(
            StreamingExperiment(algorithm=algorithm, config=config, schedule=schedule),
            points,
        )
        rows.append(
            {
                "algorithm": algorithm,
                "final_cost": result.final_cost,
                "update_s": result.timing.update_seconds,
                "query_s": result.timing.query_seconds,
                "stored_points": result.memory.points_stored,
            }
        )
    return rows


def run_related_work_baselines(points: np.ndarray, k: int) -> list[dict[str, object]]:
    """Run the related-work baselines, which live outside the harness registry."""
    data_scale = float(np.std(points))
    baselines = {
        "birch": BirchClusterer(k=k, threshold=data_scale, max_features=40 * k, seed=0),
        "clustream": CluStreamClusterer(k=k, num_microclusters=20 * k, seed=0),
        "streamls": StreamLSClusterer(k=k, seed=0),
    }
    rows = []
    for name, clusterer in baselines.items():
        start = time.perf_counter()
        for point in points:
            clusterer.insert(point)
        update_seconds = time.perf_counter() - start

        start = time.perf_counter()
        result = clusterer.query()
        query_seconds = time.perf_counter() - start

        rows.append(
            {
                "algorithm": name,
                "final_cost": kmeans_cost(points, result.centers),
                "update_s": update_seconds,
                "query_s": query_seconds,
                "stored_points": clusterer.stored_points(),
            }
        )
    return rows


def main() -> None:
    """Run every algorithm on the same stream and print the comparison table."""
    dataset = load_covtype(num_points=scaled(8_000), seed=5)
    points = dataset.points
    k = 15

    print(
        f"Dataset: {dataset.name} stand-in, {dataset.num_points} points, "
        f"{dataset.dimension} dimensions; k = {k}\n"
    )

    rows = run_registry_algorithms(points, k)
    rows.extend(run_related_work_baselines(points, k))
    rows.sort(key=lambda row: row["final_cost"])

    print(format_table(rows, title="All algorithms, sorted by clustering cost"))
    print(
        "\nNotes: the paper's algorithms (streamkm++/ct/cc/rcc/onlinecc) answer many "
        "queries over the stream (Poisson, mean gap 200 points); the related-work "
        "baselines (birch/clustream/streamls) are queried once at the end, so their "
        "query_s column is a single query's latency."
    )


if __name__ == "__main__":
    main()
