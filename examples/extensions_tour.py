"""Tour of the extensions: k-median, time decay, sliding windows, sharding.

The paper's conclusion lists three follow-up directions — streaming k-median,
time-decaying weights for concept drift, and clustering over distributed
streams.  All three are implemented in :mod:`repro.extensions`; this example
exercises each one on a small stream and prints what it is good for.

Run with:  python examples/extensions_tour.py
"""

from __future__ import annotations

import numpy as np
from _example_utils import scaled

from repro.core.base import StreamingConfig
from repro.core.driver import CachedCoresetTreeClusterer
from repro.extensions.decay import DecayedCoresetClusterer, SlidingWindowClusterer
from repro.extensions.distributed import DistributedCoordinator
from repro.extensions.kmedian import KMedianCachedClusterer, KMedianConfig, kmedian_cost
from repro.kmeans.cost import kmeans_cost


def kmedian_demo() -> None:
    """Streaming k-median: robust to the outliers that inflate k-means."""
    rng = np.random.default_rng(0)
    n = scaled(5_000)
    clean = rng.normal(scale=1.0, size=(n, 6)) + rng.normal(
        scale=20.0, size=(5, 6)
    )[rng.integers(0, 5, n)]
    outliers = rng.uniform(-500, 500, size=(50, 6))
    points = np.vstack([clean, outliers])
    rng.shuffle(points, axis=0)

    kmeans_cc = CachedCoresetTreeClusterer(StreamingConfig(k=5, seed=0))
    kmedian_cc = KMedianCachedClusterer(KMedianConfig(k=5, seed=0))
    for clusterer in (kmeans_cc, kmedian_cc):
        clusterer.insert_many(points)

    kmeans_centers = kmeans_cc.query().centers
    kmedian_centers = kmedian_cc.query().centers
    print("== streaming k-median ==")
    print(f"k-median objective  | kmeans-CC centers : {kmedian_cost(points, kmeans_centers):12.1f}")
    print(f"k-median objective  | kmedian-CC centers: {kmedian_cost(points, kmedian_centers):12.1f}")
    print()


def drift_demo() -> None:
    """Decay and sliding windows: follow the data when its distribution shifts."""
    rng = np.random.default_rng(1)
    half = scaled(5_000)
    old = rng.normal(loc=0.0, size=(half, 4))
    new = rng.normal(loc=80.0, size=(half, 4))
    points = np.vstack([old, new])
    recent = points[-half // 2 :]

    config = StreamingConfig(k=4, seed=0)
    plain = CachedCoresetTreeClusterer(config)
    decayed = DecayedCoresetClusterer(config, decay=0.7)
    window = SlidingWindowClusterer(config, window_buckets=8)

    print("== concept drift (abrupt shift halfway through the stream) ==")
    print(f"{'variant':<28} {'cost on recent data':>20} {'stored points':>14}")
    for name, clusterer in (("cc (no forgetting)", plain), ("decayed", decayed), ("sliding window", window)):
        clusterer.insert_many(points)
        centers = clusterer.query().centers
        print(
            f"{name:<28} {kmeans_cost(recent, centers):>20.1f} {clusterer.stored_points():>14}"
        )
    print()


def distributed_demo() -> None:
    """Sharded streams: per-shard CC structures, one merged answer."""
    rng = np.random.default_rng(2)
    n = scaled(12_000)
    centers = rng.normal(scale=30.0, size=(6, 8))
    points = centers[rng.integers(0, 6, n)] + rng.normal(size=(n, 8))

    coordinator = DistributedCoordinator(StreamingConfig(k=6, seed=0), num_shards=4)
    coordinator.insert_many(points)
    result = coordinator.query()

    print("== distributed streams (4 shards, round-robin routing) ==")
    print(f"points per shard          : {coordinator.shard_loads()}")
    print(f"global clustering cost    : {kmeans_cost(points, result.centers):.1f}")
    print(f"coreset points merged     : {result.coreset_points}")
    print(f"total stored across shards: {coordinator.stored_points()}")

    # The same shards on a real multi-core backend: bit-identical answers
    # (routing, queues, and merge randomness are all deterministic).
    with DistributedCoordinator(
        StreamingConfig(k=6, seed=0), num_shards=4, backend="thread"
    ) as parallel:
        parallel.insert_many(points)
        parallel_result = parallel.query()
    match = bool(np.array_equal(result.centers, parallel_result.centers))
    print(f"thread backend matches serial simulation bitwise: {match}")


def main() -> None:
    """Run the k-median, drift, and distributed demos back to back."""
    kmedian_demo()
    drift_demo()
    distributed_demo()


if __name__ == "__main__":
    main()
