"""Quickstart: stream points into CC and query cluster centers on the fly.

This example generates a simple Gaussian-mixture stream, feeds it to the
CachedCoresetTree (CC) clusterer, queries the cluster centers every 1,000
points, and compares the final answer to a batch k-means++ run on the full
data — demonstrating the library's central claim that the streaming answer
matches the batch answer while using a small memory footprint.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np
from _example_utils import scaled

from repro import (
    CachedCoresetTreeClusterer,
    StreamingConfig,
    kmeans_cost,
    weighted_kmeans,
)


def make_stream(num_points: int | None = None, num_clusters: int = 10, dimension: int = 8,
                seed: int = 0) -> np.ndarray:
    """A simple shuffled Gaussian-mixture stream."""
    if num_points is None:
        num_points = scaled(20_000)
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=25.0, size=(num_clusters, dimension))
    labels = rng.integers(0, num_clusters, size=num_points)
    points = centers[labels] + rng.normal(scale=1.0, size=(num_points, dimension))
    rng.shuffle(points, axis=0)
    return points


def main() -> None:
    """Stream the mixture into CC, query as it flows, compare against batch."""
    points = make_stream()
    k = 10

    config = StreamingConfig(k=k, seed=42)
    clusterer = CachedCoresetTreeClusterer(config)

    print(f"Streaming {points.shape[0]} points ({points.shape[1]}-dimensional), k={k}")
    print(f"Base bucket size m = {config.bucket_size} points\n")

    query_every = 1_000
    for start in range(0, points.shape[0], query_every):
        chunk = points[start : start + query_every]
        clusterer.insert_many(chunk)
        result = clusterer.query()
        seen = points[: start + chunk.shape[0]]
        cost = kmeans_cost(seen, result.centers)
        print(
            f"after {clusterer.points_seen:>6} points: "
            f"k-means cost = {cost:12.1f}, "
            f"stored points = {clusterer.stored_points():>5}"
        )

    # Compare the final streaming answer against batch k-means++ on all data.
    streaming_cost = kmeans_cost(points, clusterer.query().centers)
    batch = weighted_kmeans(points, k, rng=np.random.default_rng(42))
    batch_cost = kmeans_cost(points, batch.centers)

    print("\n--- final comparison ---")
    print(f"streaming CC cost : {streaming_cost:12.1f}")
    print(f"batch k-means++   : {batch_cost:12.1f}")
    print(f"ratio             : {streaming_cost / batch_cost:12.3f}")
    print(
        f"memory            : {clusterer.stored_points()} stored points "
        f"vs {points.shape[0]} in the stream "
        f"({clusterer.stored_points() / points.shape[0]:.1%})"
    )


if __name__ == "__main__":
    main()
