"""Shared helpers for the runnable examples.

The examples default to stream sizes that make their output interesting
(tens of thousands of points).  CI smoke-runs them with the environment
variable ``REPRO_EXAMPLE_SCALE=small``, which shrinks every stream by ~10x
so the whole tour finishes in seconds while still exercising the same code
paths (multiple base buckets, merges, cache activity).
"""

from __future__ import annotations

import os

__all__ = ["scale_factor", "scaled"]


def scale_factor() -> float:
    """The stream-size multiplier selected via ``REPRO_EXAMPLE_SCALE``."""
    if os.environ.get("REPRO_EXAMPLE_SCALE", "").lower() == "small":
        return 0.1
    return 1.0


def scaled(num_points: int, minimum: int = 500) -> int:
    """Scale a stream size by :func:`scale_factor`, with a usable floor."""
    return max(minimum, int(num_points * scale_factor()))
