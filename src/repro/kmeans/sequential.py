"""Sequential (MacQueen / online Lloyd's) k-means.

MacQueen's 1967 algorithm maintains ``k`` centers and, for each arriving
point, moves the nearest center toward the point by the centroid-update rule

    c' = (w * c + p) / (w + 1)

where ``w`` is the number of points currently assigned to ``c``.  It is very
fast (O(kd) per point, O(1) per query) but has no approximation guarantee; the
paper uses it both as a baseline (via the Spark MLlib implementation, modified
to run sequentially with first-k initialisation) and as the fast path of the
OnlineCC algorithm.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SequentialKMeansState"]


class SequentialKMeansState:
    """Incrementally-maintained centers under the MacQueen update rule.

    The state is deliberately minimal so that it can be embedded both in the
    standalone :class:`repro.baselines.sequential.SequentialKMeans` baseline
    and in :class:`repro.core.online_cc.OnlineCC`.

    Parameters
    ----------
    k:
        Number of centers to maintain.
    dimension:
        Dimensionality of the input points.
    """

    def __init__(self, k: int, dimension: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self.k = k
        self.dimension = dimension
        self._centers = np.zeros((k, dimension), dtype=np.float64)
        self._weights = np.zeros(k, dtype=np.float64)
        self._initialized = 0

    @property
    def centers(self) -> np.ndarray:
        """Current centers (only the initialised rows are meaningful)."""
        return self._centers

    @property
    def weights(self) -> np.ndarray:
        """Number of points (weight) absorbed by each center."""
        return self._weights

    @property
    def is_initialized(self) -> bool:
        """True once all ``k`` centers have been seeded."""
        return self._initialized >= self.k

    def set_centers(self, centers: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Replace the maintained centers (used when OnlineCC falls back to CC)."""
        ctr = np.asarray(centers, dtype=np.float64)
        if ctr.shape != (self.k, self.dimension):
            raise ValueError(
                f"centers must have shape ({self.k}, {self.dimension}), got {ctr.shape}"
            )
        self._centers = ctr.copy()
        if weights is None:
            self._weights = np.ones(self.k, dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (self.k,):
                raise ValueError(f"weights must have shape ({self.k},), got {w.shape}")
            self._weights = np.maximum(w.copy(), 1.0)
        self._initialized = self.k

    def state_dict(self) -> dict:
        """Checkpoint state: centers, per-center weights, and the seed cursor."""
        return {
            "k": self.k,
            "dimension": self.dimension,
            "centers": self._centers,
            "center_weights": self._weights,
            "initialized": self._initialized,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SequentialKMeansState":
        """Rebuild from :meth:`state_dict` output."""
        obj = cls(int(state["k"]), int(state["dimension"]))
        obj._centers = np.asarray(state["centers"], dtype=np.float64).copy()
        obj._weights = np.asarray(state["center_weights"], dtype=np.float64).copy()
        obj._initialized = int(state["initialized"])
        return obj

    def update(self, point: np.ndarray) -> float:
        """Absorb one point and return its squared distance to the center it joined.

        During the initialisation phase (first ``k`` distinct arrivals) the
        point simply becomes a new center, mirroring the paper's choice of
        seeding with the first ``k`` points of the stream; the returned
        distance is then 0.
        """
        p = np.asarray(point, dtype=np.float64).reshape(-1)
        if p.shape[0] != self.dimension:
            raise ValueError(
                f"point has dimension {p.shape[0]}, expected {self.dimension}"
            )
        if self._initialized < self.k:
            idx = self._initialized
            self._centers[idx] = p
            self._weights[idx] = 1.0
            self._initialized += 1
            return 0.0

        diffs = self._centers - p[None, :]
        sq = np.einsum("ij,ij->i", diffs, diffs)
        nearest = int(np.argmin(sq))
        w = self._weights[nearest]
        self._centers[nearest] = (w * self._centers[nearest] + p) / (w + 1.0)
        self._weights[nearest] = w + 1.0
        return float(sq[nearest])

    def update_many(self, points: np.ndarray, initial: float = 0.0) -> float:
        """Absorb a pre-validated ``(n, d)`` batch of points.

        Returns ``initial`` plus each point's squared distance, added in
        per-point order — the same float associativity as a caller doing
        ``acc += update(row)`` in a loop, so batch and per-point ingestion
        accumulate bit-identical cost bounds.

        MacQueen's rule is inherently sequential (each update moves the
        center later points are compared against), so the loop remains — but
        batch callers skip the per-point coercion and validation of
        :meth:`update`, which dominates its cost for small ``k``.
        """
        total = initial
        start = 0
        n = points.shape[0]
        # Seed any remaining uninitialised centers straight from the batch
        # (each contributes distance 0, leaving the accumulator unchanged).
        if self._initialized < self.k:
            take = min(self.k - self._initialized, n)
            self._centers[self._initialized : self._initialized + take] = points[:take]
            self._weights[self._initialized : self._initialized + take] = 1.0
            self._initialized += take
            start = take
        centers, weights = self._centers, self._weights
        for i in range(start, n):
            p = points[i]
            diffs = centers - p
            sq = np.einsum("ij,ij->i", diffs, diffs)
            nearest = int(np.argmin(sq))
            w = weights[nearest]
            centers[nearest] = (w * centers[nearest] + p) / (w + 1.0)
            weights[nearest] = w + 1.0
            total += float(sq[nearest])
        return total
