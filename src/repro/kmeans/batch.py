"""Batch k-means estimator: k-means++ seeding + Lloyd refinement + restarts.

This is the "k-means++" accuracy baseline of the paper's Figure 4 — a batch
algorithm that sees the whole dataset at once, which streaming algorithms
cannot beat.  It is also the routine the streaming algorithms call to extract
``k`` centers from a (weighted) coreset at query time.

Following Section 5.2 of the paper, a query runs up to ``n_init`` independent
k-means++ seedings, refines each with up to 20 Lloyd iterations, and keeps the
best (lowest-cost) solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.dtypes import coerce_storage
from ..kernels.workspace import Workspace
from .cost import kmeans_cost
from .kmeanspp import kmeanspp_seeding
from .lloyd import lloyd_iterations

__all__ = ["KMeansConfig", "KMeansResult", "weighted_kmeans", "BatchKMeans"]


@dataclass(frozen=True)
class KMeansConfig:
    """Configuration for the batch k-means solver.

    Attributes
    ----------
    k:
        Number of clusters.
    n_init:
        Number of independent k-means++ restarts (paper uses 5).
    max_iterations:
        Lloyd iterations per restart (paper uses 20).
    tolerance:
        Convergence tolerance on total squared center movement.
    """

    k: int
    n_init: int = 5
    max_iterations: int = 20
    tolerance: float = 1e-7

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.n_init <= 0:
            raise ValueError(f"n_init must be positive, got {self.n_init}")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")


@dataclass(frozen=True)
class KMeansResult:
    """Best clustering found by :func:`weighted_kmeans`."""

    centers: np.ndarray
    cost: float
    iterations: int
    restarts: int


def weighted_kmeans(
    points: np.ndarray,
    k: int,
    weights: np.ndarray | None = None,
    n_init: int = 5,
    max_iterations: int = 20,
    tolerance: float = 1e-7,
    rng: np.random.Generator | None = None,
    points_sq: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> KMeansResult:
    """Cluster a weighted point set with k-means++ + Lloyd, keeping the best run.

    If the input contains fewer than ``k`` points the returned center set is
    the points themselves padded by repetition so that exactly ``k`` rows are
    always returned; downstream cost computations are unaffected by duplicate
    centers.

    The squared point norms are computed once and shared across all
    ``n_init`` seedings and every Lloyd iteration (pass ``points_sq`` to
    share them across *calls* as well, as the multi-k query path does), and
    ``workspace`` lets repeated queries reuse all assignment/seeding scratch.
    Float32 point sets stay float32 through every BLAS product.
    """
    pts = coerce_storage(points)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {pts.shape}")
    if rng is None:
        rng = np.random.default_rng()
    n = pts.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty point set")

    if n <= k:
        centers = np.vstack([pts, np.repeat(pts[-1:], k - n, axis=0)]) if n < k else pts.copy()
        return KMeansResult(
            centers=centers,
            cost=kmeans_cost(pts, centers, weights),
            iterations=0,
            restarts=0,
        )

    pts_sq = (
        np.einsum("ij,ij->i", pts, pts)
        if points_sq is None
        else np.asarray(points_sq)
    )

    best: KMeansResult | None = None
    for restart in range(n_init):
        seeds = kmeanspp_seeding(
            pts, k, weights=weights, rng=rng, points_sq=pts_sq, workspace=workspace
        )
        refined = lloyd_iterations(
            pts,
            seeds,
            weights=weights,
            max_iterations=max_iterations,
            tolerance=tolerance,
            points_sq=pts_sq,
            workspace=workspace,
        )
        candidate = KMeansResult(
            centers=refined.centers,
            cost=refined.cost,
            iterations=refined.iterations,
            restarts=restart + 1,
        )
        if best is None or candidate.cost < best.cost:
            best = candidate
    assert best is not None
    return best


@dataclass
class BatchKMeans:
    """Object-style wrapper around :func:`weighted_kmeans`.

    Provides a scikit-learn-flavoured ``fit`` / ``predict`` interface so that
    examples and benchmarks can treat the batch baseline uniformly with the
    streaming algorithms.
    """

    config: KMeansConfig
    seed: int | None = None
    centers_: np.ndarray | None = field(default=None, init=False)
    cost_: float | None = field(default=None, init=False)

    def fit(self, points: np.ndarray, weights: np.ndarray | None = None) -> "BatchKMeans":
        """Cluster ``points`` and store the resulting centers on the estimator."""
        rng = np.random.default_rng(self.seed)
        result = weighted_kmeans(
            points,
            self.config.k,
            weights=weights,
            n_init=self.config.n_init,
            max_iterations=self.config.max_iterations,
            tolerance=self.config.tolerance,
            rng=rng,
        )
        self.centers_ = result.centers
        self.cost_ = result.cost
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Return the index of the nearest fitted center for each point."""
        if self.centers_ is None:
            raise RuntimeError("BatchKMeans.predict called before fit")
        from .cost import assign_points

        labels, _ = assign_points(points, self.centers_)
        return labels

    def cost(self, points: np.ndarray, weights: np.ndarray | None = None) -> float:
        """k-means cost of ``points`` against the fitted centers."""
        if self.centers_ is None:
            raise RuntimeError("BatchKMeans.cost called before fit")
        return kmeans_cost(points, self.centers_, weights)
