"""k-means cost (within-cluster sum of squares) and assignment utilities.

The paper measures clustering accuracy as the *k-means cost*, also called the
within-cluster sum of squares (SSQ):

    phi_C(P) = sum_{x in P} w(x) * min_{c in C} ||x - c||^2

All functions here operate on dense numpy arrays and accept optional
per-point weights, because coresets are weighted point sets.

Numeric work is delegated to the fused chunked kernels in
:mod:`repro.kernels`: points may be stored in float32 or float64 (the BLAS
products run in the storage dtype), while squared distances, costs, and
cluster weights are always accumulated in float64.  Hot callers pass a
:class:`~repro.kernels.Workspace` so repeated calls reuse their scratch.
"""

from __future__ import annotations

import numpy as np

from ..kernels.distance import assign_chunked
from ..kernels.dtypes import coerce_storage
from ..kernels.scatter import weighted_bincount, weighted_label_sums
from ..kernels.workspace import Workspace

__all__ = [
    "squared_norms",
    "pairwise_squared_distances",
    "assign_points",
    "weighted_cluster_sums",
    "kmeans_cost",
    "per_cluster_cost",
    "cluster_sizes",
]


def _as_2d(points: np.ndarray) -> np.ndarray:
    """Return ``points`` as a 2-D float array of shape (n, d).

    float32 inputs keep their dtype (the opt-in low-bandwidth path);
    everything else is coerced to float64.
    """
    arr = coerce_storage(points)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"points must be 1-D or 2-D, got shape {arr.shape}")
    return arr


def squared_norms(points: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Row-wise squared Euclidean norms ``||x||^2``, shape ``(n,)``, float64.

    The query-serving pipeline computes these once per coreset and reuses
    them across every k-means++ restart, Lloyd iteration, and multi-k sweep
    (each of which otherwise pays one ``O(nd)`` pass per call).  Float32
    points are accumulated in float64 (the dtype policy's honest-accumulator
    rule); ``out`` optionally receives the result without allocating.
    """
    pts = _as_2d(points)
    return np.einsum("ij,ij->i", pts, pts, dtype=np.float64, out=out)


def pairwise_squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every point and every center.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, k)`` where entry ``(i, j)`` is
        ``||points[i] - centers[j]||^2``.  Values are clipped at zero to
        guard against tiny negative values from floating-point cancellation.

    Notes
    -----
    This *materialises* the full ``(n, k)`` matrix, which is exactly what
    the update path avoids; use :func:`assign_points` when only the nearest
    center matters.
    """
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    if pts.shape[1] != ctr.shape[1]:
        raise ValueError(
            f"dimension mismatch: points have d={pts.shape[1]}, "
            f"centers have d={ctr.shape[1]}"
        )
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, computed via BLAS.
    p_sq = np.einsum("ij,ij->i", pts, pts, dtype=np.float64)
    c_sq = np.einsum("ij,ij->i", ctr, ctr, dtype=np.float64)
    cross = pts @ ctr.T
    dist = p_sq[:, None] - 2.0 * cross + c_sq[None, :]
    np.maximum(dist, 0.0, out=dist)
    return dist


def assign_points(
    points: np.ndarray,
    centers: np.ndarray,
    points_sq: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest center via the chunked fused kernel.

    The nearest center of ``x`` minimizes ``||c||^2 - 2 x.c`` (the ``||x||^2``
    term is constant per point), so the argmin needs only the cross-product
    GEMM plus the center norms; the per-point ``||x||^2`` is added back to
    recover true squared distances.  Work is tiled so the scratch block stays
    bounded (see :func:`repro.kernels.assign_chunked`).

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``; coerced to the points' storage dtype.
    points_sq:
        Optional precomputed :func:`squared_norms` of ``points``; pass it when
        calling repeatedly on the same points (Lloyd iterations, restarts).
    workspace:
        Optional scratch pool.  **The returned arrays are views into it** —
        callers that hold results across another workspace-backed call must
        copy them (the library's internal callers are ordered so they never
        need to).

    Returns
    -------
    (labels, sq_distances):
        ``labels`` has shape ``(n,)`` with the index of the nearest center,
        ``sq_distances`` has shape ``(n,)`` float64 with the squared distance.
    """
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    if pts.shape[1] != ctr.shape[1]:
        raise ValueError(
            f"dimension mismatch: points have d={pts.shape[1]}, "
            f"centers have d={ctr.shape[1]}"
        )
    if ctr.dtype != pts.dtype:
        ctr = ctr.astype(pts.dtype)
    # points_sq may arrive in the storage dtype (the internal pipeline keeps
    # per-point norms native); the kernel's returned distances are float64
    # either way.
    p_sq = squared_norms(pts) if points_sq is None else np.asarray(points_sq)
    return assign_chunked(pts, ctr, p_sq, workspace=workspace)


def weighted_cluster_sums(
    points: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    k: int,
    workspace: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted per-cluster coordinate sums and total weights in one pass.

    The scatter is a flat ``np.bincount`` over ``label * d + column`` indices,
    which is substantially faster than ``np.add.at`` (the latter falls back to
    a per-element ufunc inner loop).  This is the center-update step of
    Lloyd's algorithm.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    labels:
        Cluster index per point, shape ``(n,)``, values in ``[0, k)``.
    weights:
        Non-negative per-point weights, shape ``(n,)``.
    k:
        Number of clusters.
    workspace:
        Optional scratch pool for the ``(n, d)`` intermediates.

    Returns
    -------
    (sums, cluster_weight):
        ``sums`` has shape ``(k, d)`` holding ``sum_i w_i x_i`` per cluster;
        ``cluster_weight`` has shape ``(k,)`` holding ``sum_i w_i``.
    """
    pts = _as_2d(points)
    return weighted_label_sums(pts, labels, weights, k, workspace=workspace)


def kmeans_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
    points_sq: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> float:
    """Weighted k-means cost of ``points`` against ``centers`` (float64).

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``.
    weights:
        Optional array of shape ``(n,)``; defaults to all ones.
    points_sq:
        Optional precomputed :func:`squared_norms` of ``points``.
    workspace:
        Optional scratch pool shared with the caller's other kernel calls.
    """
    pts = _as_2d(points)
    if pts.shape[0] == 0:
        return 0.0
    _, sq = assign_points(pts, centers, points_sq=points_sq, workspace=workspace)
    if weights is None:
        return float(np.sum(sq))
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (pts.shape[0],):
        raise ValueError(
            f"weights must have shape ({pts.shape[0]},), got {w.shape}"
        )
    return float(np.dot(w, sq))


def per_cluster_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted cost contributed by each cluster, as an array of shape (k,)."""
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    k = ctr.shape[0]
    if pts.shape[0] == 0:
        return np.zeros(k, dtype=np.float64)
    labels, sq = assign_points(pts, ctr)
    if weights is None:
        contributions = sq
    else:
        contributions = sq * np.asarray(weights, dtype=np.float64)
    return weighted_bincount(labels, contributions, k)


def cluster_sizes(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Total weight assigned to each cluster, as an array of shape (k,)."""
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    k = ctr.shape[0]
    if pts.shape[0] == 0:
        return np.zeros(k, dtype=np.float64)
    labels, _ = assign_points(pts, ctr)
    if weights is None:
        w = np.ones(pts.shape[0], dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
    return weighted_bincount(labels, w, k)
