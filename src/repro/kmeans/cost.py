"""k-means cost (within-cluster sum of squares) and assignment utilities.

The paper measures clustering accuracy as the *k-means cost*, also called the
within-cluster sum of squares (SSQ):

    phi_C(P) = sum_{x in P} w(x) * min_{c in C} ||x - c||^2

All functions here operate on dense numpy arrays and accept optional
per-point weights, because coresets are weighted point sets.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairwise_squared_distances",
    "assign_points",
    "kmeans_cost",
    "per_cluster_cost",
    "cluster_sizes",
]


def _as_2d(points: np.ndarray) -> np.ndarray:
    """Return ``points`` as a 2-D float64 array of shape (n, d)."""
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"points must be 1-D or 2-D, got shape {arr.shape}")
    return arr


def pairwise_squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every point and every center.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, k)`` where entry ``(i, j)`` is
        ``||points[i] - centers[j]||^2``.  Values are clipped at zero to
        guard against tiny negative values from floating-point cancellation.
    """
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    if pts.shape[1] != ctr.shape[1]:
        raise ValueError(
            f"dimension mismatch: points have d={pts.shape[1]}, "
            f"centers have d={ctr.shape[1]}"
        )
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, computed via BLAS.
    p_sq = np.einsum("ij,ij->i", pts, pts)
    c_sq = np.einsum("ij,ij->i", ctr, ctr)
    cross = pts @ ctr.T
    dist = p_sq[:, None] - 2.0 * cross + c_sq[None, :]
    np.maximum(dist, 0.0, out=dist)
    return dist


def assign_points(points: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest center.

    Returns
    -------
    (labels, sq_distances):
        ``labels`` has shape ``(n,)`` with the index of the nearest center,
        ``sq_distances`` has shape ``(n,)`` with the squared distance to it.
    """
    dist = pairwise_squared_distances(points, centers)
    labels = np.argmin(dist, axis=1)
    sq = dist[np.arange(dist.shape[0]), labels]
    return labels, sq


def kmeans_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """Weighted k-means cost of ``points`` against ``centers``.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``.
    weights:
        Optional array of shape ``(n,)``; defaults to all ones.
    """
    pts = _as_2d(points)
    if pts.shape[0] == 0:
        return 0.0
    _, sq = assign_points(pts, centers)
    if weights is None:
        return float(np.sum(sq))
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (pts.shape[0],):
        raise ValueError(
            f"weights must have shape ({pts.shape[0]},), got {w.shape}"
        )
    return float(np.dot(w, sq))


def per_cluster_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted cost contributed by each cluster, as an array of shape (k,)."""
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    k = ctr.shape[0]
    out = np.zeros(k, dtype=np.float64)
    if pts.shape[0] == 0:
        return out
    labels, sq = assign_points(pts, ctr)
    if weights is None:
        contributions = sq
    else:
        contributions = sq * np.asarray(weights, dtype=np.float64)
    np.add.at(out, labels, contributions)
    return out


def cluster_sizes(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Total weight assigned to each cluster, as an array of shape (k,)."""
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    k = ctr.shape[0]
    out = np.zeros(k, dtype=np.float64)
    if pts.shape[0] == 0:
        return out
    labels, _ = assign_points(pts, ctr)
    if weights is None:
        w = np.ones(pts.shape[0], dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
    np.add.at(out, labels, w)
    return out
