"""k-means cost (within-cluster sum of squares) and assignment utilities.

The paper measures clustering accuracy as the *k-means cost*, also called the
within-cluster sum of squares (SSQ):

    phi_C(P) = sum_{x in P} w(x) * min_{c in C} ||x - c||^2

All functions here operate on dense numpy arrays and accept optional
per-point weights, because coresets are weighted point sets.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "squared_norms",
    "pairwise_squared_distances",
    "assign_points",
    "weighted_cluster_sums",
    "kmeans_cost",
    "per_cluster_cost",
    "cluster_sizes",
]


def _as_2d(points: np.ndarray) -> np.ndarray:
    """Return ``points`` as a 2-D float64 array of shape (n, d)."""
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"points must be 1-D or 2-D, got shape {arr.shape}")
    return arr


def squared_norms(points: np.ndarray) -> np.ndarray:
    """Row-wise squared Euclidean norms ``||x||^2``, shape ``(n,)``.

    The query-serving pipeline computes these once per coreset and reuses
    them across every k-means++ restart, Lloyd iteration, and multi-k sweep
    (each of which otherwise pays one ``O(nd)`` pass per call).
    """
    pts = _as_2d(points)
    return np.einsum("ij,ij->i", pts, pts)


def pairwise_squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every point and every center.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, k)`` where entry ``(i, j)`` is
        ``||points[i] - centers[j]||^2``.  Values are clipped at zero to
        guard against tiny negative values from floating-point cancellation.
    """
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    if pts.shape[1] != ctr.shape[1]:
        raise ValueError(
            f"dimension mismatch: points have d={pts.shape[1]}, "
            f"centers have d={ctr.shape[1]}"
        )
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, computed via BLAS.
    p_sq = np.einsum("ij,ij->i", pts, pts)
    c_sq = np.einsum("ij,ij->i", ctr, ctr)
    cross = pts @ ctr.T
    dist = p_sq[:, None] - 2.0 * cross + c_sq[None, :]
    np.maximum(dist, 0.0, out=dist)
    return dist


def assign_points(
    points: np.ndarray,
    centers: np.ndarray,
    points_sq: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest center in one matrix multiply.

    The nearest center of ``x`` minimizes ``||c||^2 - 2 x.c`` (the ``||x||^2``
    term is constant per point), so the argmin needs only the cross-product
    GEMM plus the center norms; the per-point ``||x||^2`` is added back just
    for the ``n`` winning entries to recover true squared distances.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``.
    points_sq:
        Optional precomputed :func:`squared_norms` of ``points``; pass it when
        calling repeatedly on the same points (Lloyd iterations, restarts).

    Returns
    -------
    (labels, sq_distances):
        ``labels`` has shape ``(n,)`` with the index of the nearest center,
        ``sq_distances`` has shape ``(n,)`` with the squared distance to it.
    """
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    if pts.shape[1] != ctr.shape[1]:
        raise ValueError(
            f"dimension mismatch: points have d={pts.shape[1]}, "
            f"centers have d={ctr.shape[1]}"
        )
    p_sq = squared_norms(pts) if points_sq is None else np.asarray(points_sq, dtype=np.float64)
    c_sq = np.einsum("ij,ij->i", ctr, ctr)
    # Partial distances: ||c||^2 - 2 x.c  (same argmin as the full distance).
    partial = pts @ ctr.T
    partial *= -2.0
    partial += c_sq[None, :]
    labels = np.argmin(partial, axis=1)
    sq = partial[np.arange(partial.shape[0]), labels] + p_sq
    np.maximum(sq, 0.0, out=sq)
    return labels, sq


def weighted_cluster_sums(
    points: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted per-cluster coordinate sums and total weights in one pass.

    The scatter is a flat ``np.bincount`` over ``label * d + column`` indices,
    which is substantially faster than ``np.add.at`` (the latter falls back to
    a per-element ufunc inner loop).  This is the center-update step of
    Lloyd's algorithm.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    labels:
        Cluster index per point, shape ``(n,)``, values in ``[0, k)``.
    weights:
        Non-negative per-point weights, shape ``(n,)``.
    k:
        Number of clusters.

    Returns
    -------
    (sums, cluster_weight):
        ``sums`` has shape ``(k, d)`` holding ``sum_i w_i x_i`` per cluster;
        ``cluster_weight`` has shape ``(k,)`` holding ``sum_i w_i``.
    """
    pts = _as_2d(points)
    n, d = pts.shape
    weighted = pts * weights[:, None]
    flat_index = labels[:, None] * d + np.arange(d)[None, :]
    sums = np.bincount(
        flat_index.ravel(), weights=weighted.ravel(), minlength=k * d
    ).reshape(k, d)
    cluster_weight = np.bincount(labels, weights=weights, minlength=k)
    return sums, cluster_weight


def kmeans_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
    points_sq: np.ndarray | None = None,
) -> float:
    """Weighted k-means cost of ``points`` against ``centers``.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    centers:
        Array of shape ``(k, d)``.
    weights:
        Optional array of shape ``(n,)``; defaults to all ones.
    points_sq:
        Optional precomputed :func:`squared_norms` of ``points``.
    """
    pts = _as_2d(points)
    if pts.shape[0] == 0:
        return 0.0
    _, sq = assign_points(pts, centers, points_sq=points_sq)
    if weights is None:
        return float(np.sum(sq))
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (pts.shape[0],):
        raise ValueError(
            f"weights must have shape ({pts.shape[0]},), got {w.shape}"
        )
    return float(np.dot(w, sq))


def per_cluster_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted cost contributed by each cluster, as an array of shape (k,)."""
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    k = ctr.shape[0]
    out = np.zeros(k, dtype=np.float64)
    if pts.shape[0] == 0:
        return out
    labels, sq = assign_points(pts, ctr)
    if weights is None:
        contributions = sq
    else:
        contributions = sq * np.asarray(weights, dtype=np.float64)
    np.add.at(out, labels, contributions)
    return out


def cluster_sizes(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Total weight assigned to each cluster, as an array of shape (k,)."""
    pts = _as_2d(points)
    ctr = _as_2d(centers)
    k = ctr.shape[0]
    out = np.zeros(k, dtype=np.float64)
    if pts.shape[0] == 0:
        return out
    labels, _ = assign_points(pts, ctr)
    if weights is None:
        w = np.ones(pts.shape[0], dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
    np.add.at(out, labels, w)
    return out
