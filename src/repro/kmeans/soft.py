"""Soft (fuzzy c-means) clustering primitives over weighted point sets.

The streaming soft-clustering algorithm serves *fuzzy membership weights*
instead of a hard partition: every point belongs to every center with a
membership in ``[0, 1]``, and each point's memberships sum to exactly 1.  The
update rules are the classic fuzzy c-means iteration (Bezdek), applied to a
weighted coreset:

* memberships: ``u_ij = 1 / sum_l (d_ij / d_lj)^(2 / (f - 1))`` where
  ``d_ij`` is the distance from point ``j`` to center ``i`` and ``f > 1`` is
  the *fuzziness* exponent (``f -> 1`` recovers hard assignment, larger ``f``
  blurs the partition);
* centers: ``c_i = sum_j w_j u_ij^f x_j / sum_j w_j u_ij^f`` — the
  membership-weighted mean, folding in the coreset weights ``w_j``.

All accumulation happens in float64 regardless of the storage dtype, per the
library's honest-accumulator rule.  :func:`soft_lloyd` is deterministic given
its inputs — it consumes no randomness — so it composes with the span-keyed
coreset machinery without perturbing any RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cost import pairwise_squared_distances

__all__ = ["SoftSolution", "soft_assignments", "soft_cost", "soft_lloyd"]


@dataclass(frozen=True)
class SoftSolution:
    """Result of a fuzzy c-means descent over a weighted point set.

    Attributes
    ----------
    centers:
        Array of shape ``(k, d)``: the membership-weighted means.
    memberships:
        Array of shape ``(n, k)``: row ``j`` holds point ``j``'s memberships
        across all ``k`` centers and sums to 1 (within 1e-9).
    cost:
        The fuzzy objective ``sum_j w_j sum_i u_ij^f d2_ij`` at the final
        centers.
    iterations:
        Number of update iterations actually performed.
    """

    centers: np.ndarray
    memberships: np.ndarray
    cost: float
    iterations: int


def soft_assignments(
    points: np.ndarray, centers: np.ndarray, fuzziness: float = 2.0
) -> np.ndarray:
    """Fuzzy membership matrix of ``points`` against ``centers``.

    Returns an ``(n, k)`` float64 array whose rows sum to 1.  A point that
    coincides exactly with one or more centers puts all of its membership on
    those centers (split evenly), the standard singularity rule.
    """
    if fuzziness <= 1.0:
        raise ValueError(f"fuzziness must exceed 1.0, got {fuzziness}")
    pts = np.asarray(points, dtype=np.float64)
    ctr = np.asarray(centers, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts.reshape(1, -1)
    d2 = np.maximum(pairwise_squared_distances(pts, ctr), 0.0)
    # u_ij ∝ d2_ij^(-1/(f-1)).  Dividing each row by its minimum first keeps
    # every reciprocal power in (0, 1] — the raw form overflows to inf (and
    # the row normalisation to NaN) whenever a distance is tiny and the
    # exponent large, e.g. a near-duplicate point under low fuzziness.
    power = 1.0 / (fuzziness - 1.0)
    row_min = d2.min(axis=1, keepdims=True)
    zero_rows = (row_min <= 0.0).ravel()
    ratio = d2 / np.where(row_min > 0.0, row_min, 1.0)
    # Zero rows still hold exact zeros here (their inv is inf); they are
    # replaced by the even-split rule below, so only silence the warnings.
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = ratio**-power
        memberships = inv / inv.sum(axis=1, keepdims=True)
    if zero_rows.any():
        exact = (d2[zero_rows] <= 0.0).astype(np.float64)
        memberships[zero_rows] = exact / exact.sum(axis=1, keepdims=True)
    # One explicit renormalisation bounds the row-sum error at ~1 ulp even for
    # extreme fuzziness exponents.
    memberships /= memberships.sum(axis=1, keepdims=True)
    return memberships


def soft_cost(
    points: np.ndarray,
    centers: np.ndarray,
    memberships: np.ndarray,
    fuzziness: float = 2.0,
    weights: np.ndarray | None = None,
) -> float:
    """The fuzzy c-means objective ``sum_j w_j sum_i u_ij^f d2_ij``."""
    pts = np.asarray(points, dtype=np.float64)
    d2 = np.maximum(pairwise_squared_distances(pts, np.asarray(centers, np.float64)), 0.0)
    um = memberships**fuzziness
    per_point = np.einsum("jk,jk->j", um, d2)
    if weights is not None:
        per_point = per_point * np.asarray(weights, dtype=np.float64)
    return float(per_point.sum())


def soft_lloyd(
    points: np.ndarray,
    k: int,
    weights: np.ndarray | None = None,
    fuzziness: float = 2.0,
    initial_centers: np.ndarray | None = None,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
    rng: np.random.Generator | None = None,
) -> SoftSolution:
    """Fuzzy c-means descent, seeded from ``initial_centers``.

    Parameters
    ----------
    points / weights:
        The weighted point set (coreset) to cluster; weights default to 1.
    k:
        Number of centers.
    fuzziness:
        The exponent ``f > 1``; 2.0 is the conventional default.
    initial_centers:
        Seed centers of shape ``(k, d)``.  When omitted, ``k`` points are
        k-means++-seeded with ``rng`` (the streaming clusterer always passes
        the warm/cold centers its query engine produced, keeping this
        function RNG-free on the serving path).
    max_iterations / tolerance:
        Stop after ``max_iterations`` updates or when the largest center
        displacement falls below ``tolerance`` (relative to the data scale).
    """
    if fuzziness <= 1.0:
        raise ValueError(f"fuzziness must exceed 1.0, got {fuzziness}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts.reshape(1, -1)
    if pts.shape[0] == 0:
        raise ValueError("cannot run soft clustering on an empty point set")
    w = (
        np.ones(pts.shape[0], dtype=np.float64)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    if initial_centers is None:
        from .kmeanspp import kmeanspp_seeding

        centers = kmeanspp_seeding(
            pts, k, weights=w, rng=rng if rng is not None else np.random.default_rng()
        )
    else:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
    if centers.shape[0] != k:
        raise ValueError(f"initial_centers must have {k} rows, got {centers.shape[0]}")

    scale = max(float(np.abs(pts).max(initial=0.0)), 1.0)
    memberships = soft_assignments(pts, centers, fuzziness)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        um = (memberships**fuzziness) * w[:, None]
        denom = um.sum(axis=0)
        new_centers = centers.copy()
        occupied = denom > 0.0
        if occupied.any():
            new_centers[occupied] = (um.T @ pts)[occupied] / denom[occupied, None]
        shift = float(np.abs(new_centers - centers).max(initial=0.0))
        centers = new_centers
        memberships = soft_assignments(pts, centers, fuzziness)
        if shift <= tolerance * scale:
            break
    return SoftSolution(
        centers=centers,
        memberships=memberships,
        cost=soft_cost(pts, centers, memberships, fuzziness, weights=w),
        iterations=iterations,
    )
