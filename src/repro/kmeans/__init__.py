"""Batch and incremental k-means primitives used throughout the library."""

from .batch import BatchKMeans, KMeansConfig, KMeansResult, weighted_kmeans
from .cost import (
    assign_points,
    cluster_sizes,
    kmeans_cost,
    pairwise_squared_distances,
    per_cluster_cost,
    squared_norms,
    weighted_cluster_sums,
)
from .kmeanspp import kmeanspp_seeding
from .lloyd import LloydResult, lloyd_iterations
from .sequential import SequentialKMeansState
from .soft import SoftSolution, soft_assignments, soft_cost, soft_lloyd

__all__ = [
    "BatchKMeans",
    "KMeansConfig",
    "KMeansResult",
    "weighted_kmeans",
    "assign_points",
    "cluster_sizes",
    "kmeans_cost",
    "pairwise_squared_distances",
    "per_cluster_cost",
    "squared_norms",
    "weighted_cluster_sums",
    "kmeanspp_seeding",
    "LloydResult",
    "lloyd_iterations",
    "SequentialKMeansState",
    "SoftSolution",
    "soft_assignments",
    "soft_cost",
    "soft_lloyd",
]
