"""Weighted Lloyd's algorithm (the classical k-means iteration).

The paper's evaluation pipeline runs k-means++ seeding followed by up to 20
Lloyd iterations to refine the centers extracted from a coreset (Section 5.2).
This module provides that refinement step for weighted point sets.

The iteration is fully vectorized: each round costs one tiled GEMM (the point
× center cross product inside :func:`~repro.kmeans.cost.assign_points`) plus
a flat-``bincount`` scatter for the center update
(:func:`~repro.kmeans.cost.weighted_cluster_sums`).  Callers that refine the
same point set repeatedly — k-means++ restarts, warm-started queries, multi-k
sweeps — pass precomputed squared norms so no per-call ``O(nd)`` norm pass is
repeated, and a shared :class:`~repro.kernels.Workspace` so assignment and
scatter scratch is reused across iterations and calls.

Centers are maintained and returned in float64 (they are weighted means —
accumulator territory); the assignment GEMM casts them to the points' storage
dtype per iteration, so float32 point sets still run float32 products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.dtypes import coerce_storage
from ..kernels.workspace import Workspace
from .cost import assign_points, kmeans_cost, squared_norms, weighted_cluster_sums

__all__ = ["LloydResult", "lloyd_iterations"]


@dataclass(frozen=True)
class LloydResult:
    """Outcome of running Lloyd's algorithm.

    Attributes
    ----------
    centers:
        Final cluster centers, shape ``(k, d)``.
    cost:
        Weighted k-means cost of the input against ``centers``.
    iterations:
        Number of iterations actually performed.
    converged:
        True if the assignment stopped changing (or center movement fell
        below tolerance) before the iteration limit.
    """

    centers: np.ndarray
    cost: float
    iterations: int
    converged: bool


def lloyd_iterations(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
    max_iterations: int = 20,
    tolerance: float = 1e-7,
    points_sq: np.ndarray | None = None,
    workspace: Workspace | None = None,
) -> LloydResult:
    """Refine ``centers`` with weighted Lloyd iterations.

    Empty clusters are re-seeded with the point that currently has the
    largest weighted squared distance to its assigned center, which keeps the
    number of clusters constant (a standard remedy, also used by scikit-learn
    and MLlib).

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` (float32 or float64).
    centers:
        Initial centers of shape ``(k, d)``; not modified in place.
    weights:
        Optional non-negative weights of shape ``(n,)``.
    max_iterations:
        Upper bound on the number of assignment/update rounds.
    tolerance:
        Convergence threshold on the total squared movement of centers.
    points_sq:
        Optional precomputed :func:`~repro.kmeans.cost.squared_norms` of
        ``points``, shared across restarts by the query-serving pipeline.
    workspace:
        Optional scratch pool shared with the caller's other kernel calls.
    """
    pts = coerce_storage(points)
    ctr = np.array(centers, dtype=np.float64, copy=True)
    if pts.ndim != 2 or ctr.ndim != 2:
        raise ValueError("points and centers must both be 2-D arrays")
    n = pts.shape[0]
    k = ctr.shape[0]
    if weights is None:
        w = np.ones(n, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError(f"weights must have shape ({n},), got {w.shape}")

    if n == 0 or max_iterations <= 0:
        return LloydResult(
            centers=ctr,
            cost=kmeans_cost(pts, ctr, w if n else None, workspace=workspace),
            iterations=0,
            converged=True,
        )

    p_sq = squared_norms(pts) if points_sq is None else np.asarray(points_sq)

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        labels, sq = assign_points(pts, ctr, points_sq=p_sq, workspace=workspace)

        new_centers, cluster_weight = weighted_cluster_sums(
            pts, labels, w, k, workspace=workspace
        )

        empty = cluster_weight <= 0.0
        occupied = ~empty
        new_centers[occupied] /= cluster_weight[occupied, None]

        if np.any(empty):
            # Re-seed each empty cluster with the currently worst-served point.
            weighted_sq = w * sq
            order = np.argsort(weighted_sq)[::-1]
            cursor = 0
            for idx in np.flatnonzero(empty):
                new_centers[idx] = pts[order[cursor % n]]
                cursor += 1

        movement = float(np.sum((new_centers - ctr) ** 2))
        ctr = new_centers
        if movement <= tolerance:
            converged = True
            break

    return LloydResult(
        centers=ctr,
        cost=kmeans_cost(pts, ctr, w, points_sq=p_sq, workspace=workspace),
        iterations=iterations,
        converged=converged,
    )
