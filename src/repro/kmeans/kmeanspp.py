"""k-means++ seeding (Arthur & Vassilvitskii, SODA 2007), weighted variant.

The paper relies on k-means++ both as the final clustering step on the merged
coreset (Theorem 1) and, internally, as the sampling backbone of coreset
construction.  Coresets are weighted point sets, so the seeding procedure here
supports per-point weights: a point is chosen with probability proportional to
``w(x) * D^2(x, chosen_centers)``.

This loop dominates every coreset merge on the stream's update path, so it is
written against the kernel layer: every round is one fused matvec into a
pooled distance buffer (:func:`repro.kernels.sq_distances_to_center`), the
score CDF is accumulated in place, and with a caller-supplied
:class:`~repro.kernels.Workspace` a steady-state call performs no scratch
allocations at all.  Per-point quantities — distances, norms, scores — are
computed in the points' storage dtype (float32 stays float32); the sampling
CDFs are always *accumulated* in float64 so probabilities stay honest over
long score vectors.
"""

from __future__ import annotations

import numpy as np

from ..kernels.distance import (
    assign_chunked,
    min_sq_update,
    pooled_row_norms,
    sq_distances_to_center,
)
from ..kernels.dtypes import coerce_storage
from ..kernels.workspace import Workspace

__all__ = ["kmeanspp_seeding"]


def _validate_inputs(
    points: np.ndarray,
    k: int,
    weights: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    pts = coerce_storage(points)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        raise ValueError("cannot seed centers from an empty point set")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if weights is None:
        w = np.ones(n, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError(f"weights must have shape ({n},), got {w.shape}")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        if not np.any(w > 0):
            raise ValueError("at least one weight must be positive")
    return pts, w


def kmeanspp_seeding(
    points: np.ndarray,
    k: int,
    weights: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    points_sq: np.ndarray | None = None,
    workspace: Workspace | None = None,
    with_assignment: bool = False,
    with_indices: bool = False,
) -> np.ndarray | tuple[np.ndarray, ...]:
    """Select ``k`` initial centers using weighted D² sampling.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` (float32 or float64; other dtypes are
        coerced to float64).
    k:
        Number of centers to select.  If ``k >= n`` the unique points are
        returned (padded by repeating points if necessary), matching the
        common convention for small inputs.
    weights:
        Optional non-negative weights of shape ``(n,)``.
    rng:
        Source of randomness; defaults to ``np.random.default_rng()``.
    points_sq:
        Optional precomputed squared norms ``||x||^2`` of shape ``(n,)``
        (see :func:`~repro.kmeans.cost.squared_norms`); shared across the
        restarts of one query by the serving pipeline and across the seeding
        and assignment passes of one coreset merge.
    workspace:
        Optional scratch pool (``kpp.*`` buffer names).  A constructor that
        merges fixed-shape buckets reuses every distance, score, and CDF
        buffer across merges.
    with_assignment:
        When True, also return the nearest-center label and squared distance
        of every input point — the seeding loop maintains both incrementally
        anyway, so the caller (sensitivity sampling) skips an entire
        assignment GEMM per merge.  The returned arrays are workspace views;
        consume them before the next pooled seeding call.
    with_indices:
        When True, also return the input-row index of every selected center
        (``centers[i] == points[indices[i]]``).  Sketched constructions need
        this to map centers chosen in the sketched space back to the exact
        rows they correspond to.  The array is a workspace view.

    Returns
    -------
    numpy.ndarray or tuple
        Array of shape ``(min(k, n) <= k, d)`` holding the selected centers,
        in the points' storage dtype.  When the input has fewer distinct
        points than ``k`` the result may contain fewer than ``k`` rows;
        callers that require exactly ``k`` centers should handle that case
        (the library's estimators do).  With ``with_assignment=True`` the
        centers are followed by per-point labels ``(n,)`` and squared
        distances ``(n,)`` (in the storage dtype, clipped at zero); with
        ``with_indices=True`` the selected row indices come last.
    """
    pts, w = _validate_inputs(points, k, weights)
    if rng is None:
        rng = np.random.default_rng()
    n = pts.shape[0]

    if k >= n:
        centers = pts.copy()
        if not (with_assignment or with_indices):
            return centers
        ws = workspace if workspace is not None else Workspace()
        extras: list[np.ndarray] = []
        if with_assignment:
            if points_sq is None:
                points_sq = pooled_row_norms(pts, ws, "kpp.pts_sq")
            labels, sq = assign_chunked(pts, centers, np.asarray(points_sq), workspace=ws)
            extras += [labels, sq]
        if with_indices:
            extras.append(np.arange(n, dtype=np.intp))
        return (centers, *extras)

    ws = workspace if workspace is not None else Workspace()
    centers = np.empty((k, pts.shape[1]), dtype=pts.dtype)

    # Precompute ||x||^2 once: each round then needs only one matrix-vector
    # product against the newly chosen center instead of a full pairwise call.
    # Per-point norms, scores, and weights run in the points' storage dtype —
    # mixing float32 distance buffers with float64 operands would route every
    # round through slow casting ufunc loops — while both sampling CDFs are
    # float64-accumulated regardless (honest-accumulator rule).
    if points_sq is None:
        pts_sq = pooled_row_norms(pts, ws, "kpp.pts_sq")
    else:
        pts_sq = np.asarray(points_sq)
        if pts_sq.dtype != pts.dtype:
            native = ws.buffer("kpp.pts_sq", n, pts.dtype)
            native[:] = pts_sq
            pts_sq = native
    if w.dtype == pts.dtype:
        w_native = w
    else:
        w_native = ws.buffer("kpp.w_native", n, pts.dtype)
        w_native[:] = w
    weight_cdf = w.cumsum(out=ws.buffer("kpp.weight_cdf", n))

    # One uniform per selected center, drawn in a single generator call: the
    # bit stream is identical to per-round ``rng.random()`` draws, without
    # the per-round Python dispatch.
    uniforms = rng.random(out=ws.buffer("kpp.uniforms", k))

    # First center: sampled proportionally to weight (inverse-CDF sampling;
    # equivalent to rng.choice(p=...) but without rebuilding the distribution
    # object on every draw).
    first = _pick_from_cdf(uniforms[0], weight_cdf)
    centers[0] = pts[first]

    # Maintain the squared distance from each point to its nearest center
    # (and, when requested, which center that is — the comparison mask falls
    # out of the same min-update the sampling loop already performs).
    closest_sq = sq_distances_to_center(
        pts, centers[0], pts_sq, out=ws.buffer("kpp.closest", n, pts.dtype)
    )
    dist = ws.buffer("kpp.dist", n, pts.dtype)
    scores = ws.buffer("kpp.scores", n, pts.dtype)
    score_cdf = ws.buffer("kpp.score_cdf", n)
    labels = mask = None
    if with_assignment:
        labels = ws.buffer("kpp.labels", n, np.intp)
        labels.fill(0)
        mask = ws.buffer("kpp.mask", n, np.bool_)
    indices = None
    if with_indices:
        indices = ws.buffer("kpp.indices", k, np.intp)
        indices[0] = first

    for i in range(1, k):
        np.multiply(w_native, closest_sq, out=scores)
        scores.cumsum(out=score_cdf)
        if score_cdf[-1] <= 0.0:
            # All remaining mass sits exactly on already-chosen centers:
            # fall back to weighted uniform sampling.
            idx = _pick_from_cdf(uniforms[i], weight_cdf)
        else:
            idx = _pick_from_cdf(uniforms[i], score_cdf)
        centers[i] = pts[idx]
        if indices is not None:
            indices[i] = idx
        sq_distances_to_center(pts, centers[i], pts_sq, out=dist)
        if with_assignment:
            # Strict `<` keeps the first of tied centers, matching argmin.
            np.less(dist, closest_sq, out=mask)
            labels[mask] = i
        min_sq_update(closest_sq, dist)

    extras = []
    if with_assignment:
        extras += [labels, closest_sq]
    if with_indices:
        extras.append(indices)
    if extras:
        return (centers, *extras)
    return centers


def _pick_from_cdf(u: float, cdf: np.ndarray) -> int:
    """Index of the CDF increment containing ``u * cdf[-1]`` (u uniform in [0,1))."""
    return min(int(cdf.searchsorted(u * cdf[-1], side="right")), cdf.shape[0] - 1)
