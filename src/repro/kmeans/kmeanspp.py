"""k-means++ seeding (Arthur & Vassilvitskii, SODA 2007), weighted variant.

The paper relies on k-means++ both as the final clustering step on the merged
coreset (Theorem 1) and, internally, as the sampling backbone of coreset
construction.  Coresets are weighted point sets, so the seeding procedure here
supports per-point weights: a point is chosen with probability proportional to
``w(x) * D^2(x, chosen_centers)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kmeanspp_seeding"]


def _validate_inputs(
    points: np.ndarray,
    k: int,
    weights: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        raise ValueError("cannot seed centers from an empty point set")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if weights is None:
        w = np.ones(n, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError(f"weights must have shape ({n},), got {w.shape}")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        if not np.any(w > 0):
            raise ValueError("at least one weight must be positive")
    return pts, w


def kmeanspp_seeding(
    points: np.ndarray,
    k: int,
    weights: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    points_sq: np.ndarray | None = None,
) -> np.ndarray:
    """Select ``k`` initial centers using weighted D² sampling.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    k:
        Number of centers to select.  If ``k >= n`` the unique points are
        returned (padded by repeating points if necessary), matching the
        common convention for small inputs.
    weights:
        Optional non-negative weights of shape ``(n,)``.
    rng:
        Source of randomness; defaults to ``np.random.default_rng()``.
    points_sq:
        Optional precomputed squared norms ``||x||^2`` of shape ``(n,)``
        (see :func:`~repro.kmeans.cost.squared_norms`); shared across the
        restarts of one query by the serving pipeline.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(min(k, n) <= k, d)`` holding the selected centers.
        When the input has fewer distinct points than ``k`` the result may
        contain fewer than ``k`` rows; callers that require exactly ``k``
        centers should handle that case (the library's estimators do).
    """
    pts, w = _validate_inputs(points, k, weights)
    if rng is None:
        rng = np.random.default_rng()
    n = pts.shape[0]

    if k >= n:
        return pts.copy()

    centers = np.empty((k, pts.shape[1]), dtype=np.float64)

    # Precompute ||x||^2 once: each round then needs only one matrix-vector
    # product against the newly chosen center instead of a full pairwise call
    # (this loop dominates every coreset merge on the stream's update path).
    if points_sq is None:
        pts_sq = np.einsum("ij,ij->i", pts, pts)
    else:
        pts_sq = np.asarray(points_sq, dtype=np.float64)
    weight_cdf = np.cumsum(w)

    def sq_to_center(center: np.ndarray) -> np.ndarray:
        dist = pts_sq - 2.0 * (pts @ center) + float(center @ center)
        np.maximum(dist, 0.0, out=dist)
        return dist

    # First center: sampled proportionally to weight (inverse-CDF sampling;
    # equivalent to rng.choice(p=...) but without rebuilding the distribution
    # object on every draw).
    first = _inverse_cdf_sample(rng, weight_cdf)
    centers[0] = pts[first]

    # Maintain the squared distance from each point to its nearest center.
    closest_sq = sq_to_center(centers[0])

    for i in range(1, k):
        scores = w * closest_sq
        score_cdf = np.cumsum(scores)
        if score_cdf[-1] <= 0.0:
            # All remaining mass sits exactly on already-chosen centers:
            # fall back to weighted uniform sampling.
            idx = _inverse_cdf_sample(rng, weight_cdf)
        else:
            idx = _inverse_cdf_sample(rng, score_cdf)
        centers[i] = pts[idx]
        np.minimum(closest_sq, sq_to_center(centers[i]), out=closest_sq)

    return centers


def _inverse_cdf_sample(rng: np.random.Generator, cdf: np.ndarray) -> int:
    """Draw one index with probability proportional to the CDF's increments."""
    u = rng.random() * cdf[-1]
    return min(int(np.searchsorted(cdf, u, side="right")), cdf.shape[0] - 1)
