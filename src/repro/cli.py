"""Command-line interface for running streaming clustering experiments.

Usage examples::

    # Run one algorithm over one dataset with a fixed query interval
    python -m repro.cli run --algorithm cc --dataset covtype --k 20 \
        --num-points 10000 --query-interval 200

    # Crash recovery: snapshot every 2000 points; after a crash, rerun with
    # the SAME flags resuming from the newest interval snapshot — the
    # already-ingested prefix is skipped and the remainder of the identical
    # regenerated stream is consumed (all stream flags must match: datasets
    # are not prefix-consistent across --num-points, so drift is refused)
    python -m repro.cli run --algorithm cc --num-points 10000 \
        --checkpoint-to run.ckpt --checkpoint-interval 2000
    python -m repro.cli run --algorithm cc --num-points 10000 \
        --resume-from run.ckpt.steps/ckpt-0000004000

    # Regenerate one of the paper's figures (reduced scale) and export its data
    python -m repro.cli figure fig4 --dataset power --num-points 6000 \
        --output fig4_power.json

    # Serve a live stream over TCP (newline-delimited JSON; Ctrl-C drains):
    # ingest keeps publishing snapshots while reader workers answer queries
    python -m repro.cli serve --dataset covtype --k 20 --port 8765
    python -m repro.cli serve --resume-from run.ckpt   # restore, then serve

    # List the available datasets and algorithms
    python -m repro.cli list

The CLI is a thin wrapper over :mod:`repro.bench`; everything it does is also
available programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .bench.experiments import (
    cost_vs_k,
    drift_adaptation_curve,
    memory_table,
    poisson_queries,
    soft_membership_profile,
    threshold_sweep,
    time_vs_query_interval,
)
from .bench.harness import ALGORITHM_NAMES, StreamingExperiment, run_experiment
from .bench.report import format_nested_series, format_series_table, format_table
from .checkpoint import CheckpointError
from .core.base import StreamingConfig
from .core.registry import default_registry
from .data.loaders import dataset_names, load_dataset
from .data.stress import load_stress_stream, stress_stream_names
from .io.serialization import series_to_json
from .queries.schedule import FixedIntervalSchedule, PoissonSchedule

__all__ = ["main", "build_parser"]

FIGURES = ("fig4", "fig5", "fig8", "fig9", "fig10", "fig11", "table4", "window", "soft")


def _stream_choices() -> list[str]:
    """Table 3 datasets plus the stress streams (drift/expiry scenarios)."""
    return dataset_names() + stress_stream_names()


def _load_stream(name: str, num_points: int, seed: int):
    """Load a Table 3 dataset or a stress stream by name."""
    if name.lower() in stress_stream_names():
        return load_stress_stream(name, num_points=num_points, seed=seed)
    return load_dataset(name, num_points=num_points, seed=seed)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming k-means clustering with fast queries (ICDE 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one algorithm over one dataset")
    run.add_argument("--algorithm", choices=ALGORITHM_NAMES, default="cc")
    run.add_argument("--dataset", choices=_stream_choices(), default="covtype")
    # Per-algorithm option flags (--nesting-depth, --window-buckets,
    # --fuzziness, ...) are generated from the registry's typed options
    # dataclasses; registering a new algorithm adds its flags automatically.
    default_registry().add_cli_flags(run)
    run.add_argument("--k", type=int, default=30)
    run.add_argument("--num-points", type=int, default=10_000)
    run.add_argument("--bucket-size", type=int, default=None)
    run.add_argument("--query-interval", type=int, default=100)
    run.add_argument("--poisson", action="store_true", help="use a Poisson query schedule")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--dtype",
        choices=("float64", "float32"),
        default="float64",
        help=(
            "point storage dtype: float32 halves buffer/bucket/slab memory "
            "bandwidth (costs and weights stay float64); float64 is the "
            "bit-compatible default"
        ),
    )
    run.add_argument(
        "--sketch-dim",
        type=int,
        default=None,
        help=(
            "opt-in Johnson-Lindenstrauss sketching: project points to this "
            "many dimensions at ingest and run merge/query inner loops in "
            "the sketched space (reported centers and costs stay exact via "
            "top-2 re-ranking); off by default"
        ),
    )
    run.add_argument(
        "--sketch-kind",
        choices=("gaussian", "countsketch"),
        default="gaussian",
        help="JL transform used with --sketch-dim: dense gaussian or sparse countsketch",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run ct/cc/rcc on the parallel sharded engine with this many shards",
    )
    run.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="serial",
        help="executor backend for the sharded engine (with --shards > 1)",
    )
    run.add_argument(
        "--routing",
        choices=("round_robin", "hash", "random"),
        default="round_robin",
        help="shard routing policy (with --shards > 1)",
    )
    run.add_argument(
        "--reshard-at",
        action="append",
        default=None,
        metavar="POINTS:SHARDS",
        help=(
            "live-reshard the sharded engine to SHARDS shards once POINTS "
            "stream points have been ingested (repeatable; requires "
            "--shards > 1)"
        ),
    )
    run.add_argument(
        "--auto-recover",
        action="store_true",
        help=(
            "journal routed blocks and transparently restart a crashed shard "
            "worker from its last recovery point (with --shards > 1 on the "
            "thread/process backends)"
        ),
    )
    run.add_argument(
        "--recovery-interval",
        type=int,
        default=4096,
        help="refresh each shard's recovery point every N routed points (with --auto-recover)",
    )
    run.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        help="give up (surface the worker error) after this many restarts of one shard",
    )
    run.add_argument(
        "--checkpoint-to",
        type=str,
        default=None,
        help="write a final snapshot of the live clusterer to this directory",
    )
    run.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        help=(
            "also snapshot mid-run every N ingested points, into "
            "<checkpoint-to>.steps/ (requires --checkpoint-to)"
        ),
    )
    run.add_argument(
        "--checkpoint-keep-last",
        type=int,
        default=None,
        help=(
            "retention for interval snapshots: keep only the newest N under "
            "<checkpoint-to>.steps/ (never pruning the only good one); "
            "default keeps everything"
        ),
    )
    run.add_argument(
        "--resume-from",
        type=str,
        default=None,
        help=(
            "resume from a checkpoint directory instead of starting fresh; "
            "the checkpoint's config fingerprint and stream identity "
            "(--dataset/--seed/--num-points) must match the flags given, and "
            "the first points_seen points of the (deterministically "
            "regenerated) dataset are skipped rather than double-ingested"
        ),
    )

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument("--dataset", choices=_stream_choices(), default="covtype")
    figure.add_argument("--num-points", type=int, default=6_000)
    figure.add_argument("--k", type=int, default=20)
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--output", type=str, default=None, help="write series data to JSON")

    serve = subparsers.add_parser(
        "serve",
        help="serve concurrent clustering queries over TCP against a live stream",
    )
    serve.add_argument("--dataset", choices=_stream_choices(), default="covtype")
    serve.add_argument("--num-points", type=int, default=20_000)
    serve.add_argument("--k", type=int, default=20)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765, help="0 picks a free port")
    serve.add_argument(
        "--workers", type=int, default=2, help="reader workers (one warm engine each)"
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission-queue depth; requests beyond it are shed with a 429 error",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="ingest through the parallel sharded engine with this many shards",
    )
    serve.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="thread",
        help="executor backend for the sharded ingest plane (with --shards > 1)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=500, help="writer-plane ingest batch size"
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="serve for this many seconds then drain and exit (0 = until Ctrl-C)",
    )
    serve.add_argument(
        "--resume-from",
        type=str,
        default=None,
        help=(
            "restore the ingest plane from a checkpoint directory; the restored "
            "stream position is republished before the first query is accepted"
        ),
    )
    serve.add_argument(
        "--checkpoint-to",
        type=str,
        default=None,
        help=(
            "durable mode: journal every accepted batch to a write-ahead log "
            "and rotate retained checkpoints under this directory; a restarted "
            "server resumes from checkpoint + journal replay, bit-identical "
            "(see docs/operations.md, 'Durable ingest')"
        ),
    )
    serve.add_argument(
        "--checkpoint-keep-last",
        type=int,
        default=3,
        help="retained snapshots in durable mode (never prunes the only good one)",
    )
    serve.add_argument(
        "--checkpoint-interval",
        type=int,
        default=25_000,
        help=(
            "durable mode: checkpoint (and truncate the journal) roughly every "
            "N ingested points"
        ),
    )
    serve.add_argument(
        "--wal-dir",
        type=str,
        default=None,
        help="journal directory for durable mode (default: <checkpoint-to>/wal)",
    )
    serve.add_argument(
        "--fsync-every",
        type=int,
        default=8,
        help=(
            "fsync the journal every N batches (1 = every batch is power-loss "
            "durable, 0 = leave syncing to the OS); the durability/throughput knob"
        ),
    )
    serve.add_argument(
        "--staleness-ceiling",
        type=float,
        default=None,
        help=(
            "degraded-mode bound: answer 503 once the served snapshot is older "
            "than this many seconds (default: serve stale data forever, annotated)"
        ),
    )

    subparsers.add_parser("list", help="list available datasets and algorithms")
    return parser


def _parse_reshard_at(specs: Sequence[str] | None) -> dict[int, int]:
    """Parse repeated ``--reshard-at POINTS:SHARDS`` flags into a schedule."""
    schedule: dict[int, int] = {}
    for spec in specs or ():
        at, sep, target = spec.partition(":")
        try:
            if not sep:
                raise ValueError
            points, shards = int(at), int(target)
        except ValueError:
            raise ValueError(
                f"--reshard-at expects POINTS:SHARDS, got {spec!r}"
            ) from None
        if points <= 0 or shards <= 0:
            raise ValueError(
                f"--reshard-at POINTS and SHARDS must be positive, got {spec!r}"
            )
        schedule[points] = shards
    return schedule


def _command_run(args: argparse.Namespace) -> int:
    if args.checkpoint_interval is not None and args.checkpoint_to is None:
        print("error: --checkpoint-interval requires --checkpoint-to", file=sys.stderr)
        return 2
    if args.checkpoint_interval is not None and args.checkpoint_interval <= 0:
        print("error: --checkpoint-interval must be positive", file=sys.stderr)
        return 2
    if args.checkpoint_keep_last is not None:
        if args.checkpoint_interval is None:
            print(
                "error: --checkpoint-keep-last requires --checkpoint-interval",
                file=sys.stderr,
            )
            return 2
        if args.checkpoint_keep_last < 1:
            print("error: --checkpoint-keep-last must be >= 1", file=sys.stderr)
            return 2
    try:
        reshard_at = _parse_reshard_at(args.reshard_at)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if reshard_at and args.shards <= 1:
        print("error: --reshard-at requires --shards > 1", file=sys.stderr)
        return 2
    info = _load_stream(args.dataset, num_points=args.num_points, seed=args.seed)
    config = StreamingConfig(
        k=args.k,
        coreset_size=args.bucket_size,
        seed=args.seed,
        dtype=args.dtype,
        sketch_dim=args.sketch_dim,
        sketch_kind=args.sketch_kind,
    )
    if args.poisson:
        schedule = PoissonSchedule.from_mean_interval(args.query_interval, seed=args.seed)
    else:
        schedule = FixedIntervalSchedule(args.query_interval)

    checkpoint_dir = None
    if args.checkpoint_interval is not None:
        checkpoint_dir = f"{args.checkpoint_to}.steps"
    try:
        result = run_experiment(
            StreamingExperiment(
                algorithm=args.algorithm,
                config=config,
                schedule=schedule,
                algorithm_options=default_registry().cli_overrides(args.algorithm, args),
                shards=args.shards,
                backend=args.backend,
                routing=args.routing,
                reshard_at=reshard_at or None,
                auto_recover=args.auto_recover,
                recovery_interval=args.recovery_interval,
                max_restarts=args.max_restarts,
                checkpoint_to=args.checkpoint_to,
                checkpoint_interval=args.checkpoint_interval,
                checkpoint_dir=checkpoint_dir,
                checkpoint_keep_last=args.checkpoint_keep_last,
                resume_from=args.resume_from,
                # Datasets are regenerated deterministically from the seed,
                # so resuming must skip the points the checkpoint already
                # ingested instead of double-ingesting them.  The annotations
                # pin the full stream identity — dataset, seed, AND length
                # (generation is not prefix-consistent across --num-points) —
                # so resuming against any different stream is refused, never
                # spliced.
                resume_skip_ingested=True,
                stream_annotations={
                    "dataset": args.dataset,
                    "stream_seed": args.seed,
                    "num_points": args.num_points,
                },
            ),
            info.points,
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    algorithm_label = args.algorithm
    if args.shards > 1:
        algorithm_label = f"{args.algorithm}x{args.shards}[{args.backend}]"
    rows = [
        {
            "dataset": info.name,
            "algorithm": algorithm_label,
            "k": args.k,
            "points": info.num_points,
            "queries": result.num_queries,
            "update_s": result.timing.update_seconds,
            "query_s": result.timing.query_seconds,
            "total_s": result.timing.total_seconds,
            "final_cost": result.final_cost,
            "stored_points": result.memory.points_stored,
            "memory_mb": result.memory.megabytes,
        }
    ]
    print(format_table(rows, title="Run summary"))
    if result.reshards:
        print("\nReshards:")
        for report in result.reshards:
            print(
                f"  at {report.points_represented} points: "
                f"{report.old_num_shards} -> {report.new_num_shards} shards "
                f"(pause {report.pause_seconds * 1e3:.1f} ms)"
            )
    if result.recoveries:
        print("\nWorker recoveries:")
        for event in result.recoveries:
            print(
                f"  shard {event.shard_index}: restart #{event.restarts}, "
                f"replayed {event.replayed_blocks} blocks / {event.replayed_points} points"
            )
    if result.checkpoints:
        print("\nCheckpoints written:")
        for path in result.checkpoints:
            print(f"  {path}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    info = _load_stream(args.dataset, num_points=args.num_points, seed=args.seed)
    points = info.points
    name = args.name

    if name == "window":
        series = drift_adaptation_curve(points, k=args.k, seed=args.seed)
        print(
            format_series_table(
                series,
                x_label="stream position",
                title=f"Drift adaptation ({info.name}): trailing-window cost",
            )
        )
    elif name == "soft":
        profile = soft_membership_profile(points, k=args.k, seed=args.seed)
        rows = [
            {"fuzziness": fuzziness, **entry}
            for fuzziness, entry in sorted(profile.items())
        ]
        print(format_table(rows, title=f"Soft membership profile ({info.name})"))
        series = {
            metric: {fuzziness: entry[metric] for fuzziness, entry in profile.items()}
            for metric in ("mean_entropy", "mean_max_membership", "hard_cost")
        }
    elif name == "fig4":
        series = cost_vs_k(
            points, k_values=(10, 20, 30), query_interval=200, seed=args.seed
        )
        print(format_series_table(series, x_label="k", title=f"Figure 4 ({info.name})"))
    elif name == "fig5":
        series = time_vs_query_interval(
            points, intervals=(50, 100, 200, 800, 3200), k=args.k, seed=args.seed
        )
        print(
            format_series_table(
                series, x_label="query interval", title=f"Figure 5 ({info.name})"
            )
        )
    elif name in ("fig8", "fig9", "fig10"):
        metric = {"fig8": "update_us", "fig9": "query_us", "fig10": "total_us"}[name]
        nested = poisson_queries(
            points, mean_intervals=(50, 200, 800, 3200), k=args.k, seed=args.seed
        )
        print(
            format_nested_series(
                nested,
                x_label="mean query interval",
                metric=metric,
                title=f"Figure {name[3:]} ({info.name}): {metric}",
            )
        )
        series = {
            algo: {interval: values[metric] for interval, values in mapping.items()}
            for algo, mapping in nested.items()
        }
    elif name == "fig11":
        sweep = threshold_sweep(points, k=args.k, seed=args.seed)
        rows = [{"alpha": alpha, **entry} for alpha, entry in sorted(sweep.items())]
        print(format_table(rows, title=f"Figure 11 ({info.name})"))
        series = {"total_seconds": {alpha: entry["total_seconds"] for alpha, entry in sweep.items()}}
    else:  # table4
        rows = memory_table({info.name: points}, k=args.k, seed=args.seed)
        print(format_table(rows, title="Table 4"))
        series = {
            "points": {key: float(value) for key, value in rows[0].items() if key != "dataset"}
        }

    if args.output:
        path = series_to_json(args.output, series)
        print(f"\nSeries data written to {path}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from .checkpoint.store import CheckpointStore
    from .core.driver import CachedCoresetTreeClusterer
    from .resilience.supervisor import DurableIngestLoop, IngestSupervisor
    from .serving.loadgen import IngestLoop
    from .serving.plane import ServingPlane
    from .serving.server import ServerThread

    if args.fsync_every < 0:
        print("error: --fsync-every must be >= 0", file=sys.stderr)
        return 2
    if args.checkpoint_interval <= 0:
        print("error: --checkpoint-interval must be positive", file=sys.stderr)
        return 2
    durable = args.checkpoint_to is not None
    info = _load_stream(args.dataset, num_points=args.num_points, seed=args.seed)
    config = StreamingConfig(k=args.k, seed=args.seed)

    def build_clusterer():
        if args.shards > 1:
            return CachedCoresetTreeClusterer.sharded(
                config, num_shards=args.shards, backend=args.backend
            )
        return CachedCoresetTreeClusterer(config)

    supervisor = None
    try:
        if args.resume_from is not None:
            plane = ServingPlane.restore(args.resume_from)
        else:
            plane = ServingPlane(build_clusterer())
        if durable:
            wal_dir = args.wal_dir or os.path.join(args.checkpoint_to, "wal")
            supervisor = IngestSupervisor(
                plane,
                CheckpointStore(args.checkpoint_to, keep_last=args.checkpoint_keep_last),
                wal_dir,
                clusterer_factory=None if args.resume_from else build_clusterer,
                checkpoint_every_batches=max(
                    1, args.checkpoint_interval // args.batch_size
                ),
                fsync_every=args.fsync_every,
                annotations={
                    "dataset": args.dataset,
                    "stream_seed": args.seed,
                    "num_points": args.num_points,
                },
            )
            resumed = supervisor.resume()
            if resumed is not None:
                print(
                    f"resumed from {resumed.restored_from or 'journal only'} "
                    f"(+{resumed.replayed_records} journaled batches, "
                    f"{resumed.replayed_points} points) -> "
                    f"position {plane.points_ingested}",
                    flush=True,
                )
        if plane.publisher.latest is None:
            # Publish before accepting connections so the first query never
            # races the first batch.
            first = info.points[: args.batch_size].copy()
            if supervisor is not None:
                supervisor.ingest(first)
            else:
                plane.ingest(first)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    with plane:
        if supervisor is not None:
            ingest = DurableIngestLoop(supervisor, info.points, batch_size=args.batch_size)
        else:
            ingest = IngestLoop(plane, info.points, batch_size=args.batch_size)
        ingest.start()
        server = ServerThread(
            plane,
            host=args.host,
            port=args.port,
            num_workers=args.workers,
            max_pending=args.max_pending,
            staleness_ceiling_s=args.staleness_ceiling,
            health_source=(lambda: supervisor.health().value) if supervisor else None,
        )
        # Graceful shutdown on SIGTERM as well as Ctrl-C: drain the server,
        # write a final checkpoint, truncate the journal, exit 0.  Handlers
        # are installed before the ready banner so an operator reacting to
        # the banner can never hit the default (killing) disposition.
        stop_event = threading.Event()
        previous_handlers = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(
                signum, lambda *_: stop_event.set()
            )
        print(
            f"serving on {args.host}:{server.port} "
            f"(workers={args.workers}, max_pending={args.max_pending}"
            + (
                f", durable journal at {wal_dir}, keep_last={args.checkpoint_keep_last}"
                if durable
                else ""
            )
            + "); protocol: newline-delimited JSON, see docs/serving.md",
            flush=True,
        )
        try:
            stop_event.wait(timeout=args.duration if args.duration > 0 else None)
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
            ingest.stop()
            server.stop(drain=True)
        stats = server.server.stats
        behind, seconds = plane.staleness()
        if supervisor is not None:
            final = supervisor.close(final_checkpoint=True)
            print(
                f"final checkpoint: {final if final is not None else '(none: empty stream)'} "
                f"(recoveries={supervisor.stats.recoveries}, "
                f"checkpoints={supervisor.stats.checkpoints_written})",
                flush=True,
            )
        print(
            f"drained: served={stats.served} shed={stats.shed} "
            f"bad_requests={stats.bad_requests} version={plane.version} "
            f"points={plane.points_ingested} staleness={behind}pts/{seconds * 1e3:.1f}ms",
            flush=True,
        )
    return 0


def _command_list(_: argparse.Namespace) -> int:
    print("Datasets  :", ", ".join(dataset_names()))
    print("Stress    :", ", ".join(stress_stream_names()))
    print("Algorithms:", ", ".join(ALGORITHM_NAMES))
    print("Figures   :", ", ".join(FIGURES))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "serve":
        return _command_serve(args)
    return _command_list(args)


if __name__ == "__main__":
    sys.exit(main())
