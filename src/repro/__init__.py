"""repro — Streaming k-means clustering with fast queries.

A from-scratch reproduction of *"Streaming k-Means Clustering with Fast
Queries"* (Zhang, Tangwongsan, Tirthapura; ICDE 2017).  The package provides:

* the paper's algorithms — CT (coreset tree / streamkm++), CC (coreset tree
  with coreset caching), RCC (recursive coreset cache), and OnlineCC (the
  hybrid with sequential k-means);
* the substrates they depend on — k-means++/Lloyd, sensitivity-sampling
  coresets, merge-and-reduce buckets;
* baselines (Sequential k-means, streamkm++, BIRCH, CluStream, STREAMLS);
* dataset generators mirroring the paper's evaluation data;
* a benchmark harness that reproduces every figure and table of Section 5; and
* checkpoint/restore of live clusterer state (:mod:`repro.checkpoint`):
  ``clusterer.snapshot(path)`` / ``Class.restore(path)`` resume ingestion
  bit-identically after a process restart; and
* a compute-kernel layer (:mod:`repro.kernels`) behind every update-path hot
  loop — pooled zero-allocation merge scratch, fused chunked distance
  kernels, and an opt-in end-to-end float32 storage dtype
  (``StreamingConfig(dtype="float32")``) with float64 cost accumulators; and
* a concurrent serving plane (:mod:`repro.serving`): RCU-style snapshot
  publication splits ingest from queries, reader threads serve lock-free
  from immutable versioned coresets, and an asyncio TCP front end
  (``repro serve``) adds query batching, admission control, and drain.

Quickstart::

    from repro import StreamingConfig, CachedCoresetTreeClusterer

    clusterer = CachedCoresetTreeClusterer(StreamingConfig(k=10, seed=0))
    clusterer.insert_many(points)          # any (n, d) array
    centers = clusterer.query().centers    # (10, d) cluster centers
"""

from .baselines import (
    BirchClusterer,
    CluStreamClusterer,
    SequentialKMeans,
    StreamKMpp,
    StreamLSClusterer,
)
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .core import (
    CacheStats,
    CachedCoresetTree,
    CachedCoresetTreeClusterer,
    CoresetCache,
    CoresetTree,
    CoresetTreeClusterer,
    OnlineCCClusterer,
    QueryResult,
    RecursiveCachedClusterer,
    RecursiveCachedTree,
    StreamClusterDriver,
    StreamingClusterer,
    StreamingConfig,
)
from .coreset import Bucket, CoresetConfig, CoresetConstructor, WeightedPointSet
from .data import PointStream, load_dataset
from .kernels import SUPPORTED_DTYPES, Workspace, resolve_dtype
from .kmeans import BatchKMeans, KMeansConfig, kmeans_cost, kmeanspp_seeding, weighted_kmeans
from .parallel import ShardedEngine, ShardWorkerError
from .queries import FixedIntervalSchedule, PoissonSchedule, QueryEngine, QueryStats
from .serving import (
    CoresetSnapshot,
    PlaneReader,
    ServedResult,
    ServingPlane,
    ServingServer,
    SnapshotPublisher,
    SnapshotUnavailable,
)

__version__ = "1.0.0"

__all__ = [
    "BirchClusterer",
    "CluStreamClusterer",
    "SequentialKMeans",
    "StreamKMpp",
    "StreamLSClusterer",
    "CacheStats",
    "CachedCoresetTree",
    "CachedCoresetTreeClusterer",
    "CoresetCache",
    "CoresetTree",
    "CoresetTreeClusterer",
    "OnlineCCClusterer",
    "QueryResult",
    "RecursiveCachedClusterer",
    "RecursiveCachedTree",
    "StreamClusterDriver",
    "StreamingClusterer",
    "StreamingConfig",
    "Bucket",
    "CoresetConfig",
    "CoresetConstructor",
    "WeightedPointSet",
    "PointStream",
    "load_dataset",
    "SUPPORTED_DTYPES",
    "Workspace",
    "resolve_dtype",
    "BatchKMeans",
    "KMeansConfig",
    "kmeans_cost",
    "kmeanspp_seeding",
    "weighted_kmeans",
    "FixedIntervalSchedule",
    "PoissonSchedule",
    "QueryEngine",
    "QueryStats",
    "ShardedEngine",
    "ShardWorkerError",
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
    "CoresetSnapshot",
    "PlaneReader",
    "ServedResult",
    "ServingPlane",
    "ServingServer",
    "SnapshotPublisher",
    "SnapshotUnavailable",
    "__version__",
]
