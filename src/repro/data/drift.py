"""RBF drifting-centers generator (the paper's Drift dataset).

The paper builds its Drift dataset by clustering USCensus1990 into 20 centers,
measuring each cluster's standard deviation, and then feeding those into the
MOA Radial Basis Function (RBF) stream generator: centers move with a given
direction and speed, and at each time step 100 Gaussian points are emitted
around every center.  We reproduce the generation procedure directly (the
initial centers are themselves drawn from a seeded Gaussian since the census
data is unavailable; the drift dynamics are what matter for the experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RBFDriftSpec", "RBFDriftGenerator"]


@dataclass(frozen=True)
class RBFDriftSpec:
    """Parameters of the drifting RBF generator.

    Attributes
    ----------
    dimension:
        Dimensionality of the generated points (68 for the paper's Drift set).
    num_centers:
        Number of drifting centers (20 in the paper).
    points_per_step:
        Points emitted around each center per time step (100 in the paper).
    drift_speed:
        Distance each center moves per time step.
    center_spread:
        Standard deviation of the initial center positions.
    min_std: / max_std:
        Range of per-center standard deviations (mimicking the measured
        per-cluster deviations of the census data).
    bounce:
        When True, centers reflect off the ``[-bound, bound]`` box so the
        stream stays in a bounded region.
    bound:
        Half-width of the bounding box used when ``bounce`` is True.
    """

    dimension: int = 68
    num_centers: int = 20
    points_per_step: int = 100
    drift_speed: float = 0.05
    center_spread: float = 10.0
    min_std: float = 0.5
    max_std: float = 2.0
    bounce: bool = True
    bound: float = 30.0

    def __post_init__(self) -> None:
        if self.dimension <= 0 or self.num_centers <= 0 or self.points_per_step <= 0:
            raise ValueError("dimension, num_centers, and points_per_step must be positive")
        if self.drift_speed < 0:
            raise ValueError("drift_speed must be non-negative")
        if self.min_std <= 0 or self.max_std < self.min_std:
            raise ValueError("need 0 < min_std <= max_std")


class RBFDriftGenerator:
    """Stateful generator producing a drifting-cluster stream step by step."""

    def __init__(self, spec: RBFDriftSpec, seed: int | None = None) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self._centers = self._rng.normal(
            0.0, spec.center_spread, size=(spec.num_centers, spec.dimension)
        )
        directions = self._rng.normal(0.0, 1.0, size=(spec.num_centers, spec.dimension))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        self._directions = directions / norms
        self._stds = self._rng.uniform(spec.min_std, spec.max_std, size=spec.num_centers)
        self._steps_emitted = 0

    @property
    def centers(self) -> np.ndarray:
        """Current center positions (copy)."""
        return self._centers.copy()

    @property
    def steps_emitted(self) -> int:
        """Number of time steps generated so far."""
        return self._steps_emitted

    def step(self) -> np.ndarray:
        """Advance one time step and return the points emitted during it.

        Each step first moves every center along its drift direction, then
        emits ``points_per_step`` Gaussian points around every center.  The
        emitted points are shuffled so centers are interleaved within a step.
        """
        spec = self.spec
        self._centers += spec.drift_speed * self._directions
        if spec.bounce:
            self._reflect()

        blocks = []
        for index in range(spec.num_centers):
            block = self._rng.normal(
                loc=self._centers[index],
                scale=self._stds[index],
                size=(spec.points_per_step, spec.dimension),
            )
            blocks.append(block)
        points = np.vstack(blocks)
        self._rng.shuffle(points, axis=0)
        self._steps_emitted += 1
        return points

    def generate(self, num_points: int) -> np.ndarray:
        """Generate at least ``num_points`` points and return exactly that many."""
        if num_points <= 0:
            raise ValueError("num_points must be positive")
        collected: list[np.ndarray] = []
        total = 0
        while total < num_points:
            block = self.step()
            collected.append(block)
            total += block.shape[0]
        return np.vstack(collected)[:num_points]

    def _reflect(self) -> None:
        bound = self.spec.bound
        over = self._centers > bound
        under = self._centers < -bound
        self._centers[over] = 2 * bound - self._centers[over]
        self._centers[under] = -2 * bound - self._centers[under]
        self._directions[over] *= -1.0
        self._directions[under] *= -1.0
