"""Point-stream abstraction: ordered replay, shuffling, and chunked iteration.

A :class:`PointStream` wraps an in-memory array and replays it in order,
optionally pre-shuffled with a seed (the paper shuffles every non-streaming
dataset before use).  Chunked iteration lets the benchmark harness interleave
point arrivals with query events efficiently without a Python-level loop per
point where that matters.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["PointStream"]


class PointStream:
    """Replayable, optionally shuffled, stream of points.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    shuffle:
        When True, a seeded permutation is applied once up front.
    seed:
        Seed for the shuffle permutation.
    """

    def __init__(
        self,
        points: np.ndarray,
        shuffle: bool = False,
        seed: int | None = None,
    ) -> None:
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {arr.shape}")
        if shuffle:
            rng = np.random.default_rng(seed)
            arr = arr[rng.permutation(arr.shape[0])]
        self._points = arr
        self._cursor = 0

    @property
    def num_points(self) -> int:
        """Total number of points in the stream."""
        return int(self._points.shape[0])

    @property
    def dimension(self) -> int:
        """Dimensionality of the points."""
        return int(self._points.shape[1])

    @property
    def position(self) -> int:
        """Number of points already consumed."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True once every point has been consumed."""
        return self._cursor >= self.num_points

    def reset(self) -> None:
        """Rewind the stream to the beginning (same order as before)."""
        self._cursor = 0

    def next_point(self) -> np.ndarray:
        """Consume and return the next point."""
        if self.exhausted:
            raise StopIteration("stream exhausted")
        point = self._points[self._cursor]
        self._cursor += 1
        return point

    def take(self, count: int) -> np.ndarray:
        """Consume and return up to ``count`` points as a contiguous block."""
        if count <= 0:
            raise ValueError("count must be positive")
        end = min(self._cursor + count, self.num_points)
        block = self._points[self._cursor : end]
        self._cursor = end
        return block

    def __iter__(self) -> Iterator[np.ndarray]:
        while not self.exhausted:
            yield self.next_point()

    def iter_chunks(self, chunk_size: int) -> Iterator[np.ndarray]:
        """Yield successive blocks of at most ``chunk_size`` points."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        while not self.exhausted:
            yield self.take(chunk_size)
