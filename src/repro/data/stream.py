"""Point-stream abstraction: ordered replay, shuffling, and chunked iteration.

A :class:`PointStream` wraps an in-memory array and replays it in order,
optionally pre-shuffled with a seed (the paper shuffles every non-streaming
dataset before use).  Chunked iteration lets the benchmark harness interleave
point arrivals with query events efficiently without a Python-level loop per
point where that matters.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["PointStream", "StreamExhausted"]


class StreamExhausted(Exception):
    """Raised when a point is requested from a fully-consumed stream.

    Deliberately *not* a :class:`StopIteration` subclass: under PEP 479 a
    ``StopIteration`` raised inside a generator is converted to a
    ``RuntimeError``, silently changing the failure mode for any generator
    that calls :meth:`PointStream.next_point`.
    """


class PointStream:
    """Replayable, optionally shuffled, stream of points.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    shuffle:
        When True, a seeded permutation is applied once up front.
    seed:
        Seed for the shuffle permutation.
    dtype:
        Storage dtype the stream replays in (``"float64"`` default,
        ``"float32"`` for the low-bandwidth pipeline).  The conversion
        happens once up front, so every block handed to a clusterer is
        already in its storage dtype — zero-copy end to end.
    """

    def __init__(
        self,
        points: np.ndarray,
        shuffle: bool = False,
        seed: int | None = None,
        dtype: np.dtype | type | str = np.float64,
    ) -> None:
        arr = np.asarray(points, dtype=np.dtype(dtype))
        if arr.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {arr.shape}")
        if shuffle:
            rng = np.random.default_rng(seed)
            arr = arr[rng.permutation(arr.shape[0])]
        self._points = arr
        self._cursor = 0

    @property
    def num_points(self) -> int:
        """Total number of points in the stream."""
        return int(self._points.shape[0])

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the replayed points."""
        return self._points.dtype

    @property
    def dimension(self) -> int:
        """Dimensionality of the points."""
        return int(self._points.shape[1])

    @property
    def position(self) -> int:
        """Number of points already consumed."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True once every point has been consumed."""
        return self._cursor >= self.num_points

    def reset(self) -> None:
        """Rewind the stream to the beginning (same order as before)."""
        self._cursor = 0

    def next_point(self) -> np.ndarray:
        """Consume and return the next point.

        Raises
        ------
        StreamExhausted
            When every point has already been consumed.
        """
        if self.exhausted:
            raise StreamExhausted("stream exhausted")
        point = self._points[self._cursor]
        self._cursor += 1
        return point

    def take(self, count: int) -> np.ndarray:
        """Consume and return up to ``count`` points as a contiguous block."""
        if count <= 0:
            raise ValueError("count must be positive")
        end = min(self._cursor + count, self.num_points)
        block = self._points[self._cursor : end]
        self._cursor = end
        return block

    def __iter__(self) -> Iterator[np.ndarray]:
        while not self.exhausted:
            yield self.next_point()

    def iter_chunks(self, chunk_size: int) -> Iterator[np.ndarray]:
        """Yield successive blocks of at most ``chunk_size`` points."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        while not self.exhausted:
            yield self.take(chunk_size)

    def iter_segments(
        self,
        boundaries: Iterable[int],
        chunk_size: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Yield blocks that never straddle a boundary position.

        The benchmark harness feeds an algorithm between query events with
        maximal batches: ``boundaries`` are the 1-based stream positions at
        which a query fires, and every yielded block ends exactly at the next
        boundary (or at the end of the stream).  ``chunk_size`` optionally
        caps block length, which bounds the ingestion latency of a very long
        query-free stretch.
        """
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive when given")
        bounds = sorted({int(b) for b in boundaries if 0 < int(b) <= self.num_points})
        for bound in bounds:
            while self._cursor < bound:
                limit = bound - self._cursor
                yield self.take(limit if chunk_size is None else min(chunk_size, limit))
        while not self.exhausted:
            yield self.take(chunk_size if chunk_size is not None else self.num_points - self._cursor)
