"""Dataset registry mirroring the paper's evaluation datasets (Table 3).

Each loader returns a seeded synthetic stand-in whose dimensionality and
cluster structure match the corresponding UCI dataset (see DESIGN.md §4 for
the substitution rationale).  The default sizes are scaled down so the entire
benchmark suite runs in minutes on a laptop; pass ``num_points`` (or
``scale="full"``) to generate paper-scale streams.

Loaders always shuffle the data (as the paper does, "to erase any potential
special ordering") except for the Drift dataset, whose temporal order *is* the
phenomenon being studied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .drift import RBFDriftGenerator, RBFDriftSpec
from .synthetic import GaussianMixtureSpec, add_uniform_outliers, generate_mixture

__all__ = [
    "DatasetInfo",
    "load_covtype",
    "load_power",
    "load_intrusion",
    "load_drift",
    "load_dataset",
    "dataset_names",
    "PAPER_SIZES",
]

# Full-scale sizes from Table 3 of the paper.
PAPER_SIZES: dict[str, tuple[int, int]] = {
    "covtype": (581_012, 54),
    "power": (2_049_280, 7),
    "intrusion": (494_021, 34),
    "drift": (200_000, 68),
}

# Default (reduced) sizes used by tests and benchmarks.
DEFAULT_SIZES: dict[str, int] = {
    "covtype": 24_000,
    "power": 30_000,
    "intrusion": 24_000,
    "drift": 20_000,
}


@dataclass(frozen=True)
class DatasetInfo:
    """A generated dataset plus its descriptive metadata (Table 3 row)."""

    name: str
    points: np.ndarray
    description: str
    paper_num_points: int
    paper_dimension: int

    @property
    def num_points(self) -> int:
        """Number of points actually generated."""
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        """Dimensionality of the generated points."""
        return int(self.points.shape[1])


def _resolve_size(name: str, num_points: int | None, scale: str) -> int:
    if num_points is not None:
        if num_points <= 0:
            raise ValueError("num_points must be positive")
        return num_points
    if scale == "full":
        return PAPER_SIZES[name][0]
    if scale == "default":
        return DEFAULT_SIZES[name]
    raise ValueError(f"unknown scale {scale!r}; use 'default' or 'full'")


def load_covtype(
    num_points: int | None = None, seed: int = 7, scale: str = "default"
) -> DatasetInfo:
    """Covtype stand-in: 54-dimensional, many moderately-sized clusters."""
    n = _resolve_size("covtype", num_points, scale)
    rng = np.random.default_rng(seed)
    weights = tuple(float(w) for w in rng.uniform(0.5, 2.0, size=12))
    spec = GaussianMixtureSpec(
        dimension=54,
        num_clusters=12,
        cluster_weights=weights,
        center_spread=12.0,
        cluster_scale=tuple(float(s) for s in rng.uniform(0.8, 2.5, size=12)),
    )
    points, _ = generate_mixture(spec, n, rng)
    rng.shuffle(points, axis=0)
    return DatasetInfo(
        name="Covtype",
        points=points,
        description="Forest cover type (synthetic stand-in)",
        paper_num_points=PAPER_SIZES["covtype"][0],
        paper_dimension=PAPER_SIZES["covtype"][1],
    )


def load_power(
    num_points: int | None = None, seed: int = 11, scale: str = "default"
) -> DatasetInfo:
    """Power stand-in: 7-dimensional, smooth correlated features, few clusters."""
    n = _resolve_size("power", num_points, scale)
    rng = np.random.default_rng(seed)
    spec = GaussianMixtureSpec(
        dimension=7,
        num_clusters=8,
        center_spread=5.0,
        cluster_scale=tuple(float(s) for s in rng.uniform(0.3, 1.2, size=8)),
        correlated=True,
    )
    points, _ = generate_mixture(spec, n, rng)
    rng.shuffle(points, axis=0)
    return DatasetInfo(
        name="Power",
        points=points,
        description="Household power consumption (synthetic stand-in)",
        paper_num_points=PAPER_SIZES["power"][0],
        paper_dimension=PAPER_SIZES["power"][1],
    )


def load_intrusion(
    num_points: int | None = None, seed: int = 13, scale: str = "default"
) -> DatasetInfo:
    """Intrusion stand-in: 34-dimensional, heavy-tailed cluster sizes, outliers.

    The extreme imbalance (a few dominant behaviours plus rare attack
    patterns far from the bulk) is what makes Sequential k-means fail by
    orders of magnitude on this dataset in the paper's Figure 4.
    """
    n = _resolve_size("intrusion", num_points, scale)
    rng = np.random.default_rng(seed)
    # Heavy-tailed cluster weights: two dominant behaviours plus a long tail
    # of rare ones that sit far away (center_spread is large relative to the
    # within-cluster scale).  This is the regime where first-k-initialised
    # Sequential k-means misses the rare clusters entirely, reproducing the
    # orders-of-magnitude gap of Figure 4(c).
    raw_weights = np.array([500.0, 300.0, 60.0, 30.0, 15.0, 8.0, 4.0, 2.0, 1.0, 0.5])
    spec = GaussianMixtureSpec(
        dimension=34,
        num_clusters=10,
        cluster_weights=tuple(float(w) for w in raw_weights),
        center_spread=80.0,
        cluster_scale=tuple(float(s) for s in rng.uniform(0.5, 1.5, size=10)),
    )
    points, _ = generate_mixture(spec, n, rng)
    points = add_uniform_outliers(points, fraction=0.001, rng=rng, spread=400.0)
    rng.shuffle(points, axis=0)
    return DatasetInfo(
        name="Intrusion",
        points=points,
        description="KDD Cup 1999 network intrusion (synthetic stand-in)",
        paper_num_points=PAPER_SIZES["intrusion"][0],
        paper_dimension=PAPER_SIZES["intrusion"][1],
    )


def load_drift(
    num_points: int | None = None, seed: int = 17, scale: str = "default"
) -> DatasetInfo:
    """Drift dataset: 68-dimensional RBF stream with 20 drifting centers."""
    n = _resolve_size("drift", num_points, scale)
    generator = RBFDriftGenerator(RBFDriftSpec(), seed=seed)
    points = generator.generate(n)
    return DatasetInfo(
        name="Drift",
        points=points,
        description="Drifting RBF stream derived from US Census 1990 (reimplemented generator)",
        paper_num_points=PAPER_SIZES["drift"][0],
        paper_dimension=PAPER_SIZES["drift"][1],
    )


_LOADERS: dict[str, Callable[..., DatasetInfo]] = {
    "covtype": load_covtype,
    "power": load_power,
    "intrusion": load_intrusion,
    "drift": load_drift,
}


def dataset_names() -> list[str]:
    """Names of the datasets used in the paper's evaluation."""
    return list(_LOADERS)


def load_dataset(
    name: str, num_points: int | None = None, seed: int | None = None, scale: str = "default"
) -> DatasetInfo:
    """Load a dataset by (case-insensitive) name."""
    key = name.lower()
    if key not in _LOADERS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_LOADERS)}")
    loader = _LOADERS[key]
    if seed is None:
        return loader(num_points=num_points, scale=scale)
    return loader(num_points=num_points, seed=seed, scale=scale)
