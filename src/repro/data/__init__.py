"""Datasets, synthetic generators, and stream abstractions."""

from .drift import RBFDriftGenerator, RBFDriftSpec
from .loaders import (
    PAPER_SIZES,
    DatasetInfo,
    dataset_names,
    load_covtype,
    load_dataset,
    load_drift,
    load_intrusion,
    load_power,
)
from .stream import PointStream
from .stress import (
    generate_driftburst,
    generate_expiry,
    load_driftburst,
    load_expiry,
    load_stress_stream,
    stress_stream_names,
)
from .synthetic import GaussianMixtureSpec, add_uniform_outliers, generate_mixture

__all__ = [
    "RBFDriftGenerator",
    "RBFDriftSpec",
    "PAPER_SIZES",
    "DatasetInfo",
    "dataset_names",
    "load_covtype",
    "load_dataset",
    "load_drift",
    "load_intrusion",
    "load_power",
    "PointStream",
    "generate_driftburst",
    "generate_expiry",
    "load_driftburst",
    "load_expiry",
    "load_stress_stream",
    "stress_stream_names",
    "GaussianMixtureSpec",
    "add_uniform_outliers",
    "generate_mixture",
]
