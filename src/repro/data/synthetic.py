"""Synthetic Gaussian-mixture data generators.

The paper evaluates on UCI datasets (Covtype, Power, Intrusion) that we cannot
ship.  All algorithms interact with the data only through Euclidean geometry
on a point stream, so we substitute seeded Gaussian-mixture generators whose
*structure* (dimensionality, number and relative size of clusters, spread,
outlier behaviour) matches each dataset's character.  See DESIGN.md §4 for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GaussianMixtureSpec", "generate_mixture", "add_uniform_outliers"]


@dataclass(frozen=True)
class GaussianMixtureSpec:
    """Description of a Gaussian mixture used to synthesise a dataset.

    Attributes
    ----------
    dimension:
        Dimensionality ``d`` of the generated points.
    num_clusters:
        Number of mixture components.
    cluster_weights:
        Relative probability of each component; uniform when None.  A
        heavy-tailed choice mimics datasets such as Intrusion, where a few
        behaviours dominate.
    center_spread:
        Standard deviation of the component centers around the origin.
    cluster_scale:
        Per-component standard deviation of points around their center.  A
        scalar applies to all components; an array gives per-component scales.
    correlated:
        When True, a random linear map is applied to each component so
        features are correlated (mimics sensor-style datasets such as Power).
    """

    dimension: int
    num_clusters: int
    cluster_weights: tuple[float, ...] | None = None
    center_spread: float = 10.0
    cluster_scale: float | tuple[float, ...] = 1.0
    correlated: bool = False

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        if self.cluster_weights is not None:
            if len(self.cluster_weights) != self.num_clusters:
                raise ValueError("cluster_weights must have num_clusters entries")
            if any(w <= 0 for w in self.cluster_weights):
                raise ValueError("cluster_weights must be positive")
        if isinstance(self.cluster_scale, tuple):
            if len(self.cluster_scale) != self.num_clusters:
                raise ValueError("cluster_scale tuple must have num_clusters entries")


def generate_mixture(
    spec: GaussianMixtureSpec,
    num_points: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``num_points`` samples from the described mixture.

    Returns
    -------
    (points, labels):
        ``points`` has shape ``(num_points, d)``; ``labels`` records the
        generating component of each point (useful for sanity checks, the
        streaming algorithms never see them).
    """
    if num_points <= 0:
        raise ValueError("num_points must be positive")

    centers = rng.normal(0.0, spec.center_spread, size=(spec.num_clusters, spec.dimension))

    if spec.cluster_weights is None:
        probabilities = np.full(spec.num_clusters, 1.0 / spec.num_clusters)
    else:
        weights = np.asarray(spec.cluster_weights, dtype=np.float64)
        probabilities = weights / weights.sum()

    if isinstance(spec.cluster_scale, tuple):
        scales = np.asarray(spec.cluster_scale, dtype=np.float64)
    else:
        scales = np.full(spec.num_clusters, float(spec.cluster_scale))

    transforms: list[np.ndarray | None] = [None] * spec.num_clusters
    if spec.correlated:
        for i in range(spec.num_clusters):
            random_matrix = rng.normal(0.0, 1.0, size=(spec.dimension, spec.dimension))
            # Blend with the identity so the transform stays well-conditioned.
            transforms[i] = 0.7 * np.eye(spec.dimension) + 0.3 * random_matrix / np.sqrt(
                spec.dimension
            )

    labels = rng.choice(spec.num_clusters, size=num_points, p=probabilities)
    noise = rng.normal(0.0, 1.0, size=(num_points, spec.dimension))

    points = np.empty((num_points, spec.dimension), dtype=np.float64)
    for component in range(spec.num_clusters):
        mask = labels == component
        if not np.any(mask):
            continue
        local = noise[mask] * scales[component]
        transform = transforms[component]
        if transform is not None:
            local = local @ transform.T
        points[mask] = centers[component] + local
    return points, labels


def add_uniform_outliers(
    points: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
    spread: float = 50.0,
) -> np.ndarray:
    """Replace a fraction of points with uniform outliers (Intrusion-style noise).

    Parameters
    ----------
    points:
        The clean points, shape ``(n, d)``.
    fraction:
        Fraction of rows to replace, in ``[0, 1)``.
    spread:
        Half-width of the uniform cube the outliers are drawn from.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    if fraction == 0.0:
        return points
    result = points.copy()
    n, d = result.shape
    num_outliers = int(round(fraction * n))
    if num_outliers == 0:
        return result
    indices = rng.choice(n, size=num_outliers, replace=False)
    result[indices] = rng.uniform(-spread, spread, size=(num_outliers, d))
    return result
