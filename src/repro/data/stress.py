"""Drift and expiry stress streams for the window/decay/soft scenarios.

These are *adversarial* synthetic streams, deliberately kept out of the Table
3 dataset registry (:mod:`repro.data.loaders`): they do not correspond to any
paper dataset, and their temporal structure is the whole point — they are
replayed in order, never shuffled.

* ``driftburst`` — a regime-shift stream: the stream is split into equal
  segments, each drawn from a Gaussian mixture whose centers are re-drawn
  from scratch at every boundary (abrupt concept shift, no gradual morphing).
  Full-history algorithms keep serving centers that straddle the old and new
  regimes; the sliding-window and decayed clusterers re-converge within one
  window/horizon of a shift.  This is the stream behind the ``window``
  figure's adaptation curves and the CI ``scenarios`` job.

* ``expiry`` — a poisoned-prefix stream: the first ``poison_fraction`` of
  the stream comes from far-away "stale" clusters (shifted by a large
  constant offset), the remainder from a clean mixture near the origin.
  Once the prefix leaves a sliding window, *exact* bucket expiry means no
  residue of the poison survives in any retained summary — the property the
  hypothesis suite pins down bit-for-bit.

Both generators are pure functions of ``(num_points, seed)`` plus their shape
parameters, so CI runs and resumed checkpoints see identical streams.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .loaders import DatasetInfo
from .synthetic import GaussianMixtureSpec, generate_mixture

__all__ = [
    "generate_driftburst",
    "generate_expiry",
    "load_driftburst",
    "load_expiry",
    "stress_stream_names",
    "load_stress_stream",
]


def generate_driftburst(
    num_points: int,
    seed: int = 0,
    dimension: int = 8,
    num_segments: int = 4,
    num_clusters: int = 5,
    center_spread: float = 10.0,
) -> np.ndarray:
    """Regime-shift stream: cluster centers are re-drawn at every segment boundary.

    Returns ``(num_points, dimension)`` float64 points in temporal order; the
    ``num_segments`` segments have equal length (the last absorbs the
    remainder) and independent mixtures keyed off ``seed``.
    """
    if num_points <= 0:
        raise ValueError("num_points must be positive")
    if num_segments <= 0:
        raise ValueError("num_segments must be positive")
    rng = np.random.default_rng(seed)
    per_segment = num_points // num_segments
    pieces: list[np.ndarray] = []
    for segment in range(num_segments):
        n = per_segment if segment < num_segments - 1 else num_points - per_segment * (
            num_segments - 1
        )
        if n <= 0:
            continue
        spec = GaussianMixtureSpec(
            dimension=dimension,
            num_clusters=num_clusters,
            center_spread=center_spread,
        )
        # One independent child generator per segment: centers, weights, and
        # noise all re-draw at the boundary (abrupt shift, not a morph).
        segment_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        points, _ = generate_mixture(spec, n, segment_rng)
        pieces.append(points)
    return np.concatenate(pieces, axis=0)


def generate_expiry(
    num_points: int,
    seed: int = 0,
    dimension: int = 6,
    num_clusters: int = 4,
    poison_fraction: float = 0.3,
    poison_offset: float = 100.0,
) -> np.ndarray:
    """Poisoned-prefix stream: a far-away stale regime followed by clean data.

    The first ``poison_fraction`` of the stream is a mixture shifted by
    ``poison_offset`` in every coordinate; the rest is a clean mixture near
    the origin.  Returns points in temporal order.
    """
    if num_points <= 0:
        raise ValueError("num_points must be positive")
    if not 0.0 < poison_fraction < 1.0:
        raise ValueError("poison_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n_poison = max(1, int(num_points * poison_fraction))
    n_clean = num_points - n_poison
    spec = GaussianMixtureSpec(dimension=dimension, num_clusters=num_clusters)
    poison_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
    clean_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
    poison, _ = generate_mixture(spec, n_poison, poison_rng)
    poison = poison + poison_offset
    clean, _ = generate_mixture(spec, n_clean, clean_rng)
    return np.concatenate([poison, clean], axis=0)


def load_driftburst(
    num_points: int | None = None, seed: int = 0, scale: str = "default"
) -> DatasetInfo:
    """The ``driftburst`` stress stream wrapped as a :class:`DatasetInfo`."""
    n = num_points if num_points is not None else 20_000
    points = generate_driftburst(n, seed=seed)
    return DatasetInfo(
        name="DriftBurst",
        points=points,
        description="Regime-shift stress stream: abrupt center re-draws (not in Table 3)",
        paper_num_points=n,
        paper_dimension=points.shape[1],
    )


def load_expiry(
    num_points: int | None = None, seed: int = 0, scale: str = "default"
) -> DatasetInfo:
    """The ``expiry`` stress stream wrapped as a :class:`DatasetInfo`."""
    n = num_points if num_points is not None else 20_000
    points = generate_expiry(n, seed=seed)
    return DatasetInfo(
        name="Expiry",
        points=points,
        description="Poisoned-prefix stress stream: stale far-away regime then clean data",
        paper_num_points=n,
        paper_dimension=points.shape[1],
    )


_STRESS_LOADERS: dict[str, Callable[..., DatasetInfo]] = {
    "driftburst": load_driftburst,
    "expiry": load_expiry,
}


def stress_stream_names() -> list[str]:
    """Names of the registered stress streams (disjoint from Table 3 datasets)."""
    return list(_STRESS_LOADERS)


def load_stress_stream(
    name: str, num_points: int | None = None, seed: int | None = None, scale: str = "default"
) -> DatasetInfo:
    """Load a stress stream by (case-insensitive) name."""
    key = name.lower()
    if key not in _STRESS_LOADERS:
        raise KeyError(
            f"unknown stress stream {name!r}; available: {sorted(_STRESS_LOADERS)}"
        )
    loader = _STRESS_LOADERS[key]
    if seed is None:
        return loader(num_points=num_points, scale=scale)
    return loader(num_points=num_points, seed=seed, scale=scale)
