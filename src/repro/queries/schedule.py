"""Query-arrival schedules: fixed interval and Poisson process.

The paper evaluates two query models (Section 5.2):

* a **fixed interval** ``q``: one clustering query every ``q`` points
  (default ``q = 100``), and
* a **Poisson process** with arrival rate ``lambda``: inter-arrival gaps are
  exponentially distributed with mean ``1 / lambda`` points, with
  ``1 / lambda`` swept over {50, 100, 200, 400, 800, 1600, 3200}.

A schedule is consumed as a sorted list of 1-based point indices: a query
fires immediately *after* the point with that index has been processed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["QuerySchedule", "FixedIntervalSchedule", "PoissonSchedule"]


class QuerySchedule(ABC):
    """Produces the stream positions at which clustering queries fire."""

    @abstractmethod
    def query_positions(self, stream_length: int) -> np.ndarray:
        """Sorted, unique, 1-based positions in ``[1, stream_length]``."""

    def query_set(self, stream_length: int) -> set[int]:
        """The query positions as a set of ints (the harness's lookup shape).

        The experiment harness tests membership once per stream segment, so
        it consumes schedules through this set rather than the sorted array.
        """
        return {int(position) for position in self.query_positions(stream_length)}

    def count(self, stream_length: int) -> int:
        """Number of queries that fire over a stream of the given length."""
        return int(self.query_positions(stream_length).shape[0])


class FixedIntervalSchedule(QuerySchedule):
    """One query every ``interval`` points (after points q, 2q, 3q, ...)."""

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval

    def query_positions(self, stream_length: int) -> np.ndarray:
        """Multiples of ``interval`` up to ``stream_length`` (1-based positions)."""
        if stream_length <= 0:
            return np.empty(0, dtype=np.int64)
        return np.arange(self.interval, stream_length + 1, self.interval, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"FixedIntervalSchedule(interval={self.interval})"


class PoissonSchedule(QuerySchedule):
    """Poisson query arrivals with the given rate (per point).

    The inter-arrival gaps are exponential with mean ``1 / rate`` points,
    rounded up to at least one point so two queries never land on the same
    position.
    """

    def __init__(self, rate: float, seed: int | None = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.seed = seed

    @classmethod
    def from_mean_interval(cls, mean_interval: float, seed: int | None = None) -> "PoissonSchedule":
        """Build a schedule whose mean inter-query gap is ``mean_interval`` points."""
        if mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        return cls(rate=1.0 / mean_interval, seed=seed)

    def query_positions(self, stream_length: int) -> np.ndarray:
        """Sampled arrival positions (exponential gaps, >= 1 point apart)."""
        if stream_length <= 0:
            return np.empty(0, dtype=np.int64)
        rng = np.random.default_rng(self.seed)
        positions: list[int] = []
        current = 0.0
        while True:
            gap = rng.exponential(1.0 / self.rate)
            current += max(gap, 1.0)
            index = int(np.ceil(current))
            if index > stream_length:
                break
            positions.append(index)
        return np.unique(np.asarray(positions, dtype=np.int64))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"PoissonSchedule(rate={self.rate}, seed={self.seed})"
