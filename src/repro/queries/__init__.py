"""Query-side machinery: arrival schedules and the serving pipeline."""

from .schedule import FixedIntervalSchedule, PoissonSchedule, QuerySchedule
from .serving import QueryEngine, QueryStats, Solution

__all__ = [
    "FixedIntervalSchedule",
    "PoissonSchedule",
    "QuerySchedule",
    "QueryEngine",
    "QueryStats",
    "Solution",
]
