"""Query-arrival schedules for the benchmark harness."""

from .schedule import FixedIntervalSchedule, PoissonSchedule, QuerySchedule

__all__ = ["FixedIntervalSchedule", "PoissonSchedule", "QuerySchedule"]
