"""The vectorized query-serving pipeline with warm-start refinement.

The paper makes per-query *coreset assembly* cheap (Algorithms 3–6); after
PR 1 vectorized the insert path, the dominant per-query cost in this
reproduction became the k-means++ + Lloyd extraction re-run from scratch on
every query.  :class:`QueryEngine` is the query-side counterpart of the
batch-ingestion pipeline:

* **Warm-start refinement** — the centers returned by the previous query are
  cached (per ``k``) and the next query seeds Lloyd's algorithm directly from
  them, skipping all ``n_init`` k-means++ seedings.  Because a streaming
  coreset's span only ever grows, consecutive query coresets summarise nearly
  identical point sets and the previous optimum is an excellent seed; in
  steady state a query costs one Lloyd descent instead of ``n_init``
  (seeding + descent) runs.
* **Drift guard** — warm starts are heuristic, so every warm solution is
  checked against the previous query's *normalized* cost (cost per unit of
  coreset weight, which is scale-free as the stream grows).  If the warm cost
  exceeds ``drift_ratio`` times the previous normalized cost the engine falls
  back to the full cold k-means++ path and keeps the better of the two
  solutions, so a distribution shift can never lock the engine into a stale
  optimum.
* **Periodic cold re-anchor** — the guard compares against a baseline that
  the warm path itself updates, so a *stable but bad* local optimum would
  ratchet the baseline and never trip it.  Every ``refresh_interval``
  consecutive warm serves the engine therefore re-runs the cold path anyway
  and keeps the better solution, bounding how long a degraded optimum can
  survive regardless of how gradually the stream drifts.
* **Batched multi-k queries** — :meth:`QueryEngine.solve_multi` amortizes one
  coreset assembly (and one squared-norm pass) across a sweep of ``k`` values,
  which is exactly the access pattern of the paper's Figure 4/6 harness.

The engine is deliberately structure-agnostic: it consumes a
:class:`~repro.coreset.bucket.WeightedPointSet` and is embedded by
:class:`~repro.core.driver.StreamClusterDriver` (CT/CC/RCC) and by
:class:`~repro.core.online_cc.OnlineCCClusterer`'s fallback path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coreset.bucket import WeightedPointSet
from ..kernels.distance import pooled_row_norms
from ..kernels.scatter import weighted_label_sums
from ..kernels.sketch import top2_chunked
from ..kernels.workspace import Workspace
from ..kmeans.batch import weighted_kmeans
from ..kmeans.lloyd import lloyd_iterations

__all__ = ["QueryStats", "Solution", "QueryEngine"]


@dataclass(frozen=True)
class Solution:
    """One solved clustering query.

    Attributes
    ----------
    centers:
        Array of shape ``(k, d)``.
    cost:
        Weighted k-means cost of the coreset against ``centers``.
    warm_start:
        True when the answer came from the warm-start Lloyd descent alone.
    drift_fallback:
        True when warm centers existed but failed the cost-ratio guard, so
        the cold path ran as well (the better solution was kept).
    """

    centers: np.ndarray
    cost: float
    warm_start: bool
    drift_fallback: bool


@dataclass(frozen=True)
class QueryStats:
    """Timing and provenance of one served query (threaded into benchmarks).

    Attributes
    ----------
    assembly_seconds:
        Wall-clock time spent assembling the query coreset (structure merge
        plus the partial-bucket union).  For a batched multi-k sweep each
        per-k stats object carries its amortized share of the sweep's total,
        so summing over the sweep reproduces the real wall-clock.
    solve_seconds:
        Wall-clock time spent extracting centers (warm Lloyd and/or cold
        k-means++ restarts); amortized per ``k`` for multi-k sweeps like
        ``assembly_seconds``.
    coreset_points:
        Number of weighted points the solver ran on.
    warm_start / drift_fallback:
        Provenance flags copied from the :class:`Solution`.
    cost:
        Weighted k-means cost of the solution on the coreset.
    cache_hits / cache_misses:
        Cumulative coreset-cache lookup counters of the underlying structure
        at the time the query finished (0 for cache-less structures).
    """

    assembly_seconds: float
    solve_seconds: float
    coreset_points: int
    warm_start: bool
    drift_fallback: bool
    cost: float
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total_seconds(self) -> float:
        """Assembly plus solve time."""
        return self.assembly_seconds + self.solve_seconds


@dataclass
class _WarmState:
    """Warm-start seed for one ``k``: previous centers, cost scale, warm streak.

    ``sketch_centers`` additionally holds the previous solution's centers in
    the sketched space (None when the last solve for this ``k`` ran exact):
    a sketched warm start must seed Lloyd where Lloyd will run.
    """

    centers: np.ndarray
    normalized_cost: float
    streak: int = 0
    sketch_centers: np.ndarray | None = None


class QueryEngine:
    """Warm-startable k-means solver shared by all coreset-backed clusterers.

    Parameters
    ----------
    n_init:
        Number of k-means++ restarts on the cold path (paper uses 5).
    max_iterations:
        Lloyd iteration cap per descent (paper uses 20).
    warm_start:
        Enable warm-start refinement.  When False every query runs the cold
        path, reproducing the pre-serving-layer behavior.
    drift_ratio:
        Cost-ratio guard: a warm solution whose normalized cost exceeds
        ``drift_ratio`` times the previous query's normalized cost triggers a
        cold fallback.  Must be > 1.
    refresh_interval:
        Periodic cold re-anchor: after this many *consecutive* warm serves
        for one ``k``, the next query runs the cold path as well (keeping the
        better solution).  The drift guard's baseline is self-referential, so
        this bounds how long a stable-but-suboptimal warm optimum can
        persist.  ``None`` disables the re-anchor.
    tolerance:
        Lloyd convergence tolerance on total squared center movement.
    """

    def __init__(
        self,
        n_init: int = 5,
        max_iterations: int = 20,
        warm_start: bool = True,
        drift_ratio: float = 2.0,
        refresh_interval: int | None = 64,
        tolerance: float = 1e-7,
    ) -> None:
        if n_init <= 0:
            raise ValueError(f"n_init must be positive, got {n_init}")
        if max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        if drift_ratio <= 1.0:
            raise ValueError(f"drift_ratio must exceed 1.0, got {drift_ratio}")
        if refresh_interval is not None and refresh_interval < 1:
            raise ValueError("refresh_interval must be >= 1 (or None to disable)")
        self._n_init = n_init
        self._max_iterations = max_iterations
        self._warm_start = warm_start
        self._drift_ratio = drift_ratio
        self._refresh_interval = refresh_interval
        self._tolerance = tolerance
        self._states: dict[int, _WarmState] = {}
        self._warm_queries = 0
        self._cold_queries = 0
        self._drift_fallbacks = 0
        self._refreshes = 0
        # Scratch pool shared by every query this engine serves: consecutive
        # queries have near-identical coreset shapes, so seeding, assignment,
        # and Lloyd scratch is steady-state allocation-free.  Never part of
        # the checkpoint state.
        self._workspace = Workspace()

    def fork(self) -> "QueryEngine":
        """A fresh engine with identical solver parameters and no shared state.

        Warm-start state (and the scratch workspace) is mutable, so an engine
        must never be shared across threads; the serving plane forks one
        engine per reader thread instead.  Counters start at zero.
        """
        return QueryEngine(
            n_init=self._n_init,
            max_iterations=self._max_iterations,
            warm_start=self._warm_start,
            drift_ratio=self._drift_ratio,
            refresh_interval=self._refresh_interval,
            tolerance=self._tolerance,
        )

    # -- instrumentation -----------------------------------------------------

    @property
    def warm_start_enabled(self) -> bool:
        """Whether warm-start refinement is active."""
        return self._warm_start

    @property
    def warm_queries(self) -> int:
        """Queries answered by the warm-start Lloyd descent alone."""
        return self._warm_queries

    @property
    def cold_queries(self) -> int:
        """Queries that ran the full cold k-means++ path."""
        return self._cold_queries

    @property
    def drift_fallbacks(self) -> int:
        """Warm attempts rejected by the cost-ratio guard (subset of cold)."""
        return self._drift_fallbacks

    @property
    def refreshes(self) -> int:
        """Scheduled cold re-anchors after a full warm streak (subset of cold)."""
        return self._refreshes

    def reset(self) -> None:
        """Drop all warm-start state (counters are preserved)."""
        self._states.clear()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state: per-k warm-start seeds plus the query counters."""
        return {
            "warm_queries": self._warm_queries,
            "cold_queries": self._cold_queries,
            "drift_fallbacks": self._drift_fallbacks,
            "refreshes": self._refreshes,
            "states": [
                {
                    "k": k,
                    "centers": state.centers,
                    "normalized_cost": state.normalized_cost,
                    "streak": state.streak,
                    "sketch_centers": state.sketch_centers,
                }
                for k, state in self._states.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore warm-start seeds and counters from :meth:`state_dict` output.

        The solver parameters (n_init, drift ratio, ...) are configuration,
        not state — they come from the engine's constructor.
        """
        self._warm_queries = int(state["warm_queries"])
        self._cold_queries = int(state["cold_queries"])
        self._drift_fallbacks = int(state["drift_fallbacks"])
        self._refreshes = int(state["refreshes"])
        self._states = {
            int(entry["k"]): _WarmState(
                centers=entry["centers"],
                normalized_cost=float(entry["normalized_cost"]),
                streak=int(entry["streak"]),
                # .get: pre-sketch checkpoints carry no sketched seed.
                sketch_centers=entry.get("sketch_centers"),
            )
            for entry in state["states"]
        }

    # -- solving ---------------------------------------------------------------

    def solve(
        self,
        coreset: WeightedPointSet,
        k: int,
        rng: np.random.Generator,
        force_cold: bool = False,
    ) -> Solution:
        """Extract ``k`` centers from ``coreset``, warm-starting when possible.

        Parameters
        ----------
        coreset:
            The assembled weighted coreset (structure coreset unioned with
            the partial base bucket).
        k:
            Number of centers to return.
        rng:
            Randomness for the cold k-means++ path (the warm path draws
            nothing, so a warm-served query leaves ``rng`` untouched).
        force_cold:
            Always run the cold k-means++ path (the warm descent still runs
            as an extra candidate and the better solution is kept, but the
            answer is never *worse* than a from-scratch solve in expectation).
            OnlineCC uses this on its fallback path so the Algorithm 7 cost
            bounds are re-anchored at cold-path quality.
        """
        if coreset.size == 0:
            raise ValueError("cannot solve a query on an empty coreset")
        return self._solve_prepared(
            coreset, k, rng, self._norms_for(coreset), force_cold=force_cold
        )

    def solve_multi(
        self,
        coreset: WeightedPointSet,
        ks: tuple[int, ...] | list[int],
        rng: np.random.Generator,
    ) -> dict[int, Solution]:
        """Solve one coreset for several ``k`` values in one batched query.

        The coreset assembly, validation, and squared-norm pass are paid
        once and amortized across the whole k-sweep (the Figure 4/6 access
        pattern).  Warm-start state is tracked independently per ``k``.
        """
        if coreset.size == 0:
            raise ValueError("cannot solve a query on an empty coreset")
        if not ks:
            raise ValueError("ks must contain at least one value")
        pts_sq = self._norms_for(coreset)
        return {int(k): self._solve_prepared(coreset, int(k), rng, pts_sq) for k in ks}

    # -- internals ---------------------------------------------------------------

    def _norms_for(self, coreset: WeightedPointSet) -> np.ndarray:
        """One pooled ``||x||^2`` pass per query, in the coreset's storage dtype.

        float64 coresets get the classic float64 norms; float32 coresets keep
        their norms float32 so the seeding/assignment kernels never touch a
        casting ufunc loop (costs are still accumulated in float64).  Sketched
        coresets take their norms in the sketched space — that is where every
        seeding/assignment pass of the solve runs.
        """
        solve = coreset.sketch if coreset.sketch is not None else coreset.points
        return pooled_row_norms(solve, self._workspace, "engine.pts_sq")

    def _solve_prepared(
        self,
        coreset: WeightedPointSet,
        k: int,
        rng: np.random.Generator,
        pts_sq: np.ndarray,
        force_cold: bool = False,
    ) -> Solution:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        pts = coreset.points
        if coreset.sketch is not None and pts.shape[0] > k:
            # ``pts_sq`` is sketch-space (see _norms_for).  With n <= k the
            # exact fallthrough below never touches it: the warm path is
            # unusable and the cold solve recomputes norms itself.
            return self._solve_sketched(coreset, k, rng, pts_sq, force_cold=force_cold)
        weights = coreset.weights
        total_weight = float(np.sum(weights))

        state = self._states.get(k)
        warm_usable = (
            self._warm_start
            and state is not None
            and state.centers.shape[1] == pts.shape[1]
            and pts.shape[0] > k
        )

        warm_result = None
        drift_fallback = False
        if warm_usable:
            assert state is not None
            needs_refresh = (
                self._refresh_interval is not None
                and state.streak >= self._refresh_interval
            )
            warm_result = lloyd_iterations(
                pts,
                state.centers,
                weights=weights,
                max_iterations=self._max_iterations,
                tolerance=self._tolerance,
                points_sq=pts_sq,
                workspace=self._workspace,
            )
            warm_normalized = warm_result.cost / total_weight if total_weight > 0 else 0.0
            guard_ok = warm_normalized <= self._drift_ratio * state.normalized_cost
            if guard_ok and not needs_refresh and not force_cold:
                self._warm_queries += 1
                self._remember(k, warm_result.centers, warm_normalized, streak=state.streak + 1)
                return Solution(
                    centers=warm_result.centers,
                    cost=warm_result.cost,
                    warm_start=True,
                    drift_fallback=False,
                )
            if not guard_ok:
                drift_fallback = True
                self._drift_fallbacks += 1
            elif needs_refresh and not force_cold:
                # Scheduled re-anchor: the guard's baseline is updated by the
                # warm path itself, so periodically re-run the cold path to
                # bound how long a stable-but-bad optimum can survive.
                self._refreshes += 1

        cold = weighted_kmeans(
            pts,
            k,
            weights=weights,
            n_init=self._n_init,
            max_iterations=self._max_iterations,
            tolerance=self._tolerance,
            rng=rng,
            points_sq=pts_sq if pts.shape[0] > k else None,
            workspace=self._workspace,
        )
        self._cold_queries += 1

        centers, cost = cold.centers, cold.cost
        if warm_result is not None and warm_result.cost < cost:
            # The guard fired because the data drifted, yet the warm descent
            # still found the better optimum — keep it.
            centers, cost = warm_result.centers, warm_result.cost

        normalized = cost / total_weight if total_weight > 0 else 0.0
        self._remember(k, centers, normalized)
        return Solution(
            centers=centers,
            cost=cost,
            warm_start=False,
            drift_fallback=drift_fallback,
        )

    def _solve_sketched(
        self,
        coreset: WeightedPointSet,
        k: int,
        rng: np.random.Generator,
        sketch_sq: np.ndarray,
        force_cold: bool = False,
    ) -> Solution:
        """The sketched twin of :meth:`_solve_prepared`.

        Seeding and every Lloyd iteration run on the coreset's sketched view;
        each candidate solution is then *finalized* in the original space
        (:meth:`_finalize_sketched`), so the centers stored, remembered, and
        returned — and every cost the drift guard compares — are exact.  The
        warm/cold/drift/refresh control flow and counters mirror the exact
        path one for one.
        """
        pts = coreset.points
        sketch = coreset.sketch
        assert sketch is not None
        weights = coreset.weights
        total_weight = float(np.sum(weights))

        state = self._states.get(k)
        warm_usable = (
            self._warm_start
            and state is not None
            and state.sketch_centers is not None
            and state.sketch_centers.shape[1] == sketch.shape[1]
            and state.centers.shape[1] == pts.shape[1]
        )

        warm_final = None
        warm_sketch_centers = None
        drift_fallback = False
        if warm_usable:
            assert state is not None and state.sketch_centers is not None
            needs_refresh = (
                self._refresh_interval is not None
                and state.streak >= self._refresh_interval
            )
            warm_lloyd = lloyd_iterations(
                sketch,
                state.sketch_centers,
                weights=weights,
                max_iterations=self._max_iterations,
                tolerance=self._tolerance,
                points_sq=sketch_sq,
                workspace=self._workspace,
            )
            warm_sketch_centers = warm_lloyd.centers
            warm_final = self._finalize_sketched(
                pts, sketch, weights, warm_sketch_centers, sketch_sq
            )
            warm_normalized = warm_final[1] / total_weight if total_weight > 0 else 0.0
            guard_ok = warm_normalized <= self._drift_ratio * state.normalized_cost
            if guard_ok and not needs_refresh and not force_cold:
                self._warm_queries += 1
                self._remember(
                    k,
                    warm_final[0],
                    warm_normalized,
                    streak=state.streak + 1,
                    sketch_centers=warm_sketch_centers,
                )
                return Solution(
                    centers=warm_final[0],
                    cost=warm_final[1],
                    warm_start=True,
                    drift_fallback=False,
                )
            if not guard_ok:
                drift_fallback = True
                self._drift_fallbacks += 1
            elif needs_refresh and not force_cold:
                self._refreshes += 1

        cold = weighted_kmeans(
            sketch,
            k,
            weights=weights,
            n_init=self._n_init,
            max_iterations=self._max_iterations,
            tolerance=self._tolerance,
            rng=rng,
            points_sq=sketch_sq,
            workspace=self._workspace,
        )
        self._cold_queries += 1

        centers, cost = self._finalize_sketched(
            pts, sketch, weights, cold.centers, sketch_sq
        )
        sketch_centers = cold.centers
        if warm_final is not None and warm_final[1] < cost:
            centers, cost = warm_final
            sketch_centers = warm_sketch_centers

        normalized = cost / total_weight if total_weight > 0 else 0.0
        self._remember(k, centers, normalized, sketch_centers=sketch_centers)
        return Solution(
            centers=centers,
            cost=cost,
            warm_start=False,
            drift_fallback=drift_fallback,
        )

    def _finalize_sketched(
        self,
        pts: np.ndarray,
        sketch: np.ndarray,
        weights: np.ndarray,
        sketch_centers: np.ndarray,
        sketch_sq: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Exact centers and cost from a sketched-space solution.

        The JL guarantee makes sketched distance *comparisons* reliable up to
        near-ties, so the true nearest exact center of a point is almost
        always among its two nearest sketched centers.  Finalization therefore
        (1) takes each point's top-2 sketched candidates, (2) forms exact
        centroids under the sketched assignment, (3) re-ranks the two
        candidates per point with exact full-width distances, and (4) rebuilds
        centroids and the cost from the re-ranked labels.  Everything here is
        O(n·d) on the *coreset* (n ≤ r·m), not the stream — the 2-candidate
        re-rank costs what two Lloyd iterations in exact space would, while
        the solve's many iterations all ran sketched.
        """
        ws = self._workspace
        n = pts.shape[0]
        k = sketch_centers.shape[0]
        first = ws.buffer("fin.first", n, np.intp)
        second = ws.buffer("fin.second", n, np.intp)
        first_sq = ws.buffer("fin.first_sq", n, np.float64)
        top2_chunked(
            sketch,
            sketch_centers,
            sketch_sq,
            workspace=ws,
            out_first=first,
            out_second=second,
            out_first_sq=first_sq,
        )

        # Provisional exact centroids under the sketched assignment.
        centroids, cluster_weight = weighted_label_sums(pts, first, weights, k, workspace=ws)
        occupied = cluster_weight > 0
        centroids[occupied] /= cluster_weight[occupied, None]
        empty = np.flatnonzero(~occupied)
        if empty.size:
            # Lloyd's worst-served re-seed, scored with sketched distances.
            weighted_sq = np.multiply(
                weights, first_sq, out=ws.buffer("fin.weighted_sq", n)
            )
            order = np.argsort(weighted_sq)[::-1]
            for cursor, idx in enumerate(empty):
                centroids[idx] = pts[order[cursor % n]]

        # Exact re-rank between each point's two sketched candidates.  The
        # float64 gathered-difference form is the honest-accumulator choice:
        # these distances decide the labels behind the reported centers/cost.
        d_first = _exact_sq_to(pts, centroids, first)
        d_second = _exact_sq_to(pts, centroids, second)
        labels = np.where(d_second < d_first, second, first)

        final_centers, final_weight = weighted_label_sums(
            pts, labels, weights, k, workspace=ws
        )
        occ = final_weight > 0
        final_centers[occ] /= final_weight[occ, None]
        # A cluster emptied by the re-rank keeps its provisional centroid.
        final_centers[~occ] = centroids[~occ]

        delta = pts - final_centers[labels]
        cost = float(np.dot(weights, np.einsum("ij,ij->i", delta, delta)))
        return final_centers, cost

    def _remember(
        self,
        k: int,
        centers: np.ndarray,
        normalized_cost: float,
        streak: int = 0,
        sketch_centers: np.ndarray | None = None,
    ) -> None:
        self._states[k] = _WarmState(
            centers=centers.copy(),
            normalized_cost=normalized_cost,
            streak=streak,
            sketch_centers=None if sketch_centers is None else sketch_centers.copy(),
        )


def _exact_sq_to(pts: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Exact squared distance of each point to its labelled center, float64."""
    delta = pts - centers[labels]
    return np.einsum("ij,ij->i", delta, delta)
