"""Clustering over distributed / parallel streams.

The paper's conclusion names "clustering on distributed and parallel streams"
as an open question.  Historically this module carried a single-threaded
simulation; it is now a thin facade over the real multi-core engine in
:mod:`repro.parallel`: each stream shard runs its own CC structure locally
(no coordination on the update path), and the coordinator answers global
clustering queries by collecting one coreset per shard — exactly the cheap
per-shard query the CC cache makes possible — merging them (Observation 1: a
union of coresets is a coreset of the union), and extracting ``k`` centers
from the merged summary through the warm-startable
:class:`~repro.queries.serving.QueryEngine`.

:class:`DistributedCoordinator` defaults to ``backend="serial"``, preserving
the simulation semantics (deterministic, inline shard updates); pass
``backend="thread"`` or ``backend="process"`` to run the same shards on real
worker threads/processes.  Routing policies cover the common deployment
shapes:

* ``round_robin`` — load balancing, every shard sees a slice of everything;
* ``hash`` — deterministic partitioning by point content (stable across
  processes and batch boundaries);
* ``random`` — seeded random assignment.
"""

from __future__ import annotations

from ..core.base import StreamingConfig
from ..parallel.engine import ShardedEngine
from ..parallel.routing import RoutingPolicy
from ..parallel.shard import StreamShard

__all__ = ["StreamShard", "DistributedCoordinator"]


class DistributedCoordinator(ShardedEngine):
    """Routes a stream across shards and answers global clustering queries.

    A :class:`~repro.parallel.engine.ShardedEngine` running CC shards, kept
    as the extensions-facing name (and with the serial backend as default so
    existing simulation workloads stay deterministic and dependency-free).

    Parameters
    ----------
    config:
        Shared streaming configuration applied to every shard.
    num_shards:
        Number of parallel shards (simulated workers under ``serial``, real
        workers under ``thread``/``process``).
    routing:
        How points are assigned to shards: ``"round_robin"`` (default),
        ``"hash"``, or ``"random"``.
    backend:
        Executor backend; the historical simulation behaviour is
        ``"serial"`` (default).
    """

    def __init__(
        self,
        config: StreamingConfig,
        num_shards: int = 4,
        routing: RoutingPolicy = "round_robin",
        backend: str = "serial",
    ) -> None:
        super().__init__(
            config,
            num_shards=num_shards,
            routing=routing,
            backend=backend,
            structure="cc",
        )
