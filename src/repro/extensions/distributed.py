"""DEPRECATED facade over the parallel sharded engine.

.. deprecated::
    This module is deprecated and will be removed in a future release.
    Construct sharded clusterers through the algorithm registry instead —
    ``default_registry().create("cc", config, shards=4)`` or the legacy shim
    ``make_algorithm("cc", config, shards=4)`` — or use
    :class:`repro.parallel.ShardedEngine` directly.  They expose the same
    engine with every backend/routing/recovery knob.

Historically this module carried a single-threaded simulation of distributed
clustering; PR 5 replaced it with a thin subclass of the real multi-core
:class:`~repro.parallel.engine.ShardedEngine`, and the registry has since
absorbed its one remaining job (spelling "CC shards, serial backend").  The
class is kept importable for one deprecation cycle so existing scripts keep
running; constructing it emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from ..core.base import StreamingConfig
from ..parallel.engine import ShardedEngine
from ..parallel.routing import RoutingPolicy
from ..parallel.shard import StreamShard

__all__ = ["StreamShard", "DistributedCoordinator"]


class DistributedCoordinator(ShardedEngine):
    """Deprecated alias for a CC-sharded :class:`ShardedEngine`.

    Use ``default_registry().create("cc", config, shards=n)`` (or
    ``make_algorithm("cc", config, shards=n)``) instead; this wrapper only
    pins ``structure="cc"`` and ``backend="serial"`` defaults and will be
    removed in a future release.
    """

    def __init__(
        self,
        config: StreamingConfig,
        num_shards: int = 4,
        routing: RoutingPolicy = "round_robin",
        backend: str = "serial",
    ) -> None:
        warnings.warn(
            "DistributedCoordinator is deprecated and will be removed; build "
            "the sharded engine through the algorithm registry instead: "
            'default_registry().create("cc", config, shards=n) or '
            'make_algorithm("cc", config, shards=n)',
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            config,
            num_shards=num_shards,
            routing=routing,
            backend=backend,
            structure="cc",
        )
