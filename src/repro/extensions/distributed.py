"""Clustering over distributed / parallel streams.

The paper's conclusion names "clustering on distributed and parallel streams"
as an open question.  This module provides a simulation-friendly realisation:
each logical stream shard runs its own CC structure locally (no coordination
on the update path), and a coordinator answers global clustering queries by
collecting one coreset per shard — exactly the cheap per-shard query the CC
cache makes possible — merging them (Observation 1: a union of coresets is a
coreset of the union), and running k-means++ on the merged summary.

Routing policies cover the common deployment shapes:

* ``round_robin`` — load balancing, every shard sees a slice of everything;
* ``hash`` — deterministic partitioning by point content;
* ``random`` — seeded random assignment.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..coreset.bucket import Bucket, WeightedPointSet, make_base_buckets
from ..core.base import (
    QueryResult,
    StreamingClusterer,
    StreamingConfig,
    coerce_batch,
    require_dimension,
)
from ..core.buffer import BucketBuffer
from ..core.cached_tree import CachedCoresetTree
from ..coreset.construction import CoresetConstructor
from ..kmeans.batch import weighted_kmeans

__all__ = ["StreamShard", "DistributedCoordinator"]

RoutingPolicy = Literal["round_robin", "hash", "random"]


class StreamShard:
    """One shard: a CC structure plus its partial base bucket."""

    def __init__(self, config: StreamingConfig, shard_index: int) -> None:
        self.shard_index = shard_index
        self.config = config
        seed = None if config.seed is None else config.seed + shard_index
        self._constructor = CoresetConstructor(config.coreset_config(), seed=seed)
        self._structure = CachedCoresetTree(
            self._constructor, merge_degree=config.merge_degree
        )
        self._buffer = BucketBuffer(config.bucket_size)
        self._dimension: int | None = None
        self.points_seen = 0

    def insert(self, point: np.ndarray) -> None:
        """Add one point to this shard's local state."""
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        self._dimension = require_dimension(self._dimension, row.shape[0], what="point")
        self._buffer.append(row)
        self.points_seen += 1
        if self._buffer.is_full:
            index = self._structure.num_base_buckets + 1
            data = WeightedPointSet.from_points(self._buffer.drain())
            self._structure.insert_bucket(
                Bucket(data=data, start=index, end=index, level=0)
            )

    def insert_batch(self, points: np.ndarray) -> None:
        """Add a batch to this shard: full buckets are sliced, not looped."""
        arr = coerce_batch(points)
        if arr.shape[0] == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        blocks = self._buffer.take_full_blocks(arr)
        self.points_seen += arr.shape[0]
        if blocks:
            self._structure.insert_buckets(
                make_base_buckets(blocks, self._structure.num_base_buckets + 1)
            )

    def local_coreset(self, dimension: int) -> WeightedPointSet:
        """This shard's contribution to a global query (cached coreset + partial bucket)."""
        coreset = self._structure.query_coreset()
        if not self._buffer.is_empty:
            partial = WeightedPointSet.from_points(self._buffer.snapshot())
            coreset = coreset.union(partial) if coreset.size else partial
        if coreset.size == 0:
            return WeightedPointSet.empty(dimension)
        return coreset

    def stored_points(self) -> int:
        """Points held by this shard (structure plus partial bucket)."""
        return self._structure.stored_points() + self._buffer.size


class DistributedCoordinator(StreamingClusterer):
    """Routes a stream across shards and answers global clustering queries.

    Parameters
    ----------
    config:
        Shared streaming configuration applied to every shard.
    num_shards:
        Number of parallel shards (simulated workers).
    routing:
        How points are assigned to shards: ``"round_robin"`` (default),
        ``"hash"``, or ``"random"``.
    """

    def __init__(
        self,
        config: StreamingConfig,
        num_shards: int = 4,
        routing: RoutingPolicy = "round_robin",
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if routing not in ("round_robin", "hash", "random"):
            raise ValueError(f"unknown routing policy {routing!r}")
        self.config = config
        self.routing = routing
        self.shards = [StreamShard(config, index) for index in range(num_shards)]
        self._next_shard = 0
        self._points_seen = 0
        self._dimension: int | None = None
        self._rng = np.random.default_rng(config.seed)
        self._route_rng = np.random.default_rng(
            None if config.seed is None else config.seed + 10_007
        )

    @property
    def num_shards(self) -> int:
        """Number of shards in the simulated cluster."""
        return len(self.shards)

    @property
    def points_seen(self) -> int:
        """Total number of points routed across all shards."""
        return self._points_seen

    def insert(self, point: np.ndarray) -> None:
        """Route one point to a shard according to the routing policy."""
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        if self._dimension is None:
            self._dimension = row.shape[0]
        elif row.shape[0] != self._dimension:
            raise ValueError(
                f"point has dimension {row.shape[0]}, expected {self._dimension}"
            )
        self.shards[self._route(row)].insert(row)
        self._points_seen += 1

    def insert_batch(self, points: np.ndarray) -> None:
        """Route a batch of points across the shards.

        Round-robin routing is fully vectorized: the rows destined for shard
        ``s`` form the strided slice ``arr[offset_s :: num_shards]`` (original
        order preserved), so each shard ingests one batch with zero per-point
        work.  Random routing partitions with one vectorized draw.  Hash
        routing must inspect each row's bytes and falls back to the per-point
        path.
        """
        arr = coerce_batch(points)
        n = arr.shape[0]
        if n == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        num = len(self.shards)
        if self.routing == "round_robin":
            for shard_index in range(num):
                offset = (shard_index - self._next_shard) % num
                block = arr[offset::num]
                if block.shape[0]:
                    self.shards[shard_index].insert_batch(block)
            self._next_shard = (self._next_shard + n) % num
            self._points_seen += n
        elif self.routing == "random":
            assignments = self._route_rng.integers(0, num, size=n)
            for shard_index in range(num):
                block = arr[assignments == shard_index]
                if block.shape[0]:
                    self.shards[shard_index].insert_batch(block)
            self._points_seen += n
        else:  # hash routing inspects each row individually
            for row in arr:
                self.shards[self._route(row)].insert(row)
                self._points_seen += 1

    def query(self) -> QueryResult:
        """Merge every shard's coreset and extract k centers globally."""
        if self._points_seen == 0:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        dimension = self._dimension or 1
        pieces = [shard.local_coreset(dimension) for shard in self.shards]
        pieces = [piece for piece in pieces if piece.size > 0]
        combined = WeightedPointSet.union_all(pieces)
        result = weighted_kmeans(
            combined.points,
            self.config.k,
            weights=combined.weights,
            n_init=self.config.n_init,
            max_iterations=self.config.lloyd_iterations,
            rng=self._rng,
        )
        return QueryResult(centers=result.centers, coreset_points=combined.size, from_cache=True)

    def stored_points(self) -> int:
        """Total points held across all shards."""
        return sum(shard.stored_points() for shard in self.shards)

    def shard_loads(self) -> list[int]:
        """Points routed to each shard (for load-balance inspection)."""
        return [shard.points_seen for shard in self.shards]

    def _route(self, point: np.ndarray) -> int:
        if self.routing == "round_robin":
            index = self._next_shard
            self._next_shard = (self._next_shard + 1) % len(self.shards)
            return index
        if self.routing == "hash":
            digest = hash(point.tobytes())
            return digest % len(self.shards)
        return int(self._route_rng.integers(0, len(self.shards)))
