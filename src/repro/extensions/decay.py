"""Time-decayed and sliding-window streaming clustering, on the full stack.

The paper's conclusion lists "improved handling of concept drift, through the
use of time-decaying weights" as an open direction.  This module provides two
such mechanisms as *first-class* algorithms: both are
:class:`~repro.core.driver.StreamClusterDriver` subclasses whose clustering
structures live in :mod:`repro.core.windowed`, so they inherit the entire
serving stack — vectorized batch ingestion, the warm-start
:class:`~repro.queries.serving.QueryEngine`, batched ``query_multi_k``
sweeps, per-query :class:`~repro.queries.serving.QueryStats`, checkpoint /
restore, and :class:`~repro.serving.plane.ServingPlane` publication.
(Historically they called ``weighted_kmeans`` directly and bypassed all of
it, which made ``collect_serving_stats`` silently report zeros.)

* :class:`DecayedCoresetClusterer` — every completed base bucket multiplies
  the weights of all previously stored buckets by a decay factor ``gamma``
  (0 < gamma <= 1): a bucket completed ``t`` buckets ago carries weight
  ``gamma^t``, an exponential forgetting horizon of roughly
  ``m / (1 - gamma)`` points.

* :class:`SlidingWindowClusterer` — only the most recent ``window_buckets``
  base buckets participate in queries, with *exact* Braverman-style bucket
  expiry (buckets are kept individually, never merged across boundaries, so
  an expired bucket vanishes completely).  Memory is
  ``O(window_buckets * m)``.

Neither algorithm supports sharded ingestion: expiry and aging are keyed to
the global base-bucket index, which shard routing does not preserve.  Both
raise a clear error instead of silently changing semantics (see
``docs/scenarios.md``).
"""

from __future__ import annotations

from ..core.base import StreamingConfig
from ..core.driver import StreamClusterDriver
from ..core.windowed import DecayedBucketStructure, SlidingWindowStructure

__all__ = ["DecayedCoresetClusterer", "SlidingWindowClusterer"]

_SHARDING_REFUSAL = (
    "does not support sharded ingestion; use one of ct, cc, rcc "
    "({reason}: per-shard buckets fill at 1/S of the stream rate, so "
    "shard-local {what} would cover a different time span than the global one)"
)


class _UnshardableDriverMixin:
    """Refuses :meth:`sharded` with a semantics-specific error message."""

    #: Filled in by subclasses: why sharding would change semantics.
    _sharding_reason = ("time-ordered semantics", "state")

    @classmethod
    def sharded(cls, config, num_shards, backend="serial", routing="round_robin", **kwargs):
        """Always raises: this algorithm's semantics do not shard."""
        reason, what = cls._sharding_reason
        raise ValueError(
            f"algorithm {cls.checkpoint_name!r} "
            + _SHARDING_REFUSAL.format(reason=reason, what=what)
        )


class DecayedCoresetClusterer(_UnshardableDriverMixin, StreamClusterDriver):
    """Exponentially time-decayed clustering over bucket summaries.

    Parameters
    ----------
    config:
        Shared streaming configuration (k, bucket size, query-time settings).
    decay:
        Per-bucket decay factor ``gamma`` in (0, 1].  ``1.0`` disables decay
        (every bucket keeps full weight); smaller values forget faster.
    min_weight:
        Buckets whose accumulated decay factor falls below this threshold are
        dropped entirely, bounding memory at roughly
        ``log(min_weight) / log(decay)`` buckets.
    """

    checkpoint_name = "decay"
    shard_structure = None
    _sharding_reason = ("decay aging is ordered by global bucket index", "aging")

    def __init__(
        self,
        config: StreamingConfig,
        decay: float = 0.95,
        min_weight: float = 1e-3,
    ) -> None:
        constructor = config.make_constructor()
        structure = DecayedBucketStructure(constructor, decay=decay, min_weight=min_weight)
        super().__init__(config, structure)

    @property
    def decayed_structure(self) -> DecayedBucketStructure:
        """The underlying decayed-bucket structure."""
        return self.structure  # type: ignore[return-value]

    @property
    def decay(self) -> float:
        """The per-bucket decay factor ``gamma``."""
        return self.decayed_structure.decay

    @property
    def min_weight(self) -> float:
        """The drop threshold for decayed bucket multipliers."""
        return self.decayed_structure.min_weight

    @property
    def num_summaries(self) -> int:
        """Number of decayed bucket summaries currently retained."""
        return self.decayed_structure.retained_buckets

    # -- checkpointing -------------------------------------------------------

    def _extra_config(self) -> dict:
        return {"decay": self.decay, "min_weight": self.min_weight}

    @classmethod
    def _construct_for_restore(cls, config, config_tree):
        return cls(
            config,
            decay=float(config_tree["decay"]),
            min_weight=float(config_tree["min_weight"]),
        )


class SlidingWindowClusterer(_UnshardableDriverMixin, StreamClusterDriver):
    """Clustering over the most recent ``window_buckets`` base buckets only.

    Parameters
    ----------
    config:
        Shared streaming configuration.
    window_buckets:
        Number of most-recent base buckets that participate in queries; the
        window therefore covers ``window_buckets * m`` points (plus the
        partial bucket).
    """

    checkpoint_name = "window"
    shard_structure = None
    _sharding_reason = ("window expiry is ordered by global bucket index", "windows")

    def __init__(self, config: StreamingConfig, window_buckets: int = 10) -> None:
        constructor = config.make_constructor()
        structure = SlidingWindowStructure(constructor, window_buckets=window_buckets)
        super().__init__(config, structure)

    @property
    def window_structure(self) -> SlidingWindowStructure:
        """The underlying sliding-window structure."""
        return self.structure  # type: ignore[return-value]

    @property
    def window_buckets(self) -> int:
        """Number of base buckets the window covers."""
        return self.window_structure.window_buckets

    @property
    def num_summaries(self) -> int:
        """Number of unexpired bucket summaries currently retained."""
        return self.window_structure.retained_buckets

    @property
    def window_points(self) -> int:
        """Number of stream points currently covered by the window."""
        return (
            self.window_structure.retained_buckets * self.config.bucket_size
            + self._buffer.size
        )

    # -- checkpointing -------------------------------------------------------

    def _extra_config(self) -> dict:
        return {"window_buckets": self.window_buckets}

    @classmethod
    def _construct_for_restore(cls, config, config_tree):
        return cls(config, window_buckets=int(config_tree["window_buckets"]))
