"""Time-decayed and sliding-window streaming clustering.

The paper's conclusion lists "improved handling of concept drift, through the
use of time-decaying weights" as an open direction.  This module provides two
such mechanisms built on the same bucket machinery as the main algorithms:

* :class:`DecayedCoresetClusterer` — every time a new base bucket is
  completed, the weights of all previously stored buckets are multiplied by a
  decay factor ``gamma`` (0 < gamma <= 1).  A bucket completed ``t`` buckets
  ago therefore carries weight ``gamma^t``, i.e. an exponential forgetting
  horizon of roughly ``m / (1 - gamma)`` points.

* :class:`SlidingWindowClusterer` — only the most recent ``window_buckets``
  base buckets participate in queries.  Buckets are kept individually (no
  cross-bucket merging) so expired ones can be dropped exactly; each bucket is
  summarised to at most ``m`` points, so memory is
  ``O(window_buckets * m)``.

Both return k-means++ centers of the (decayed / windowed) coreset at query
time, so the accuracy machinery of the main library carries over.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..coreset.bucket import WeightedPointSet
from ..coreset.construction import CoresetConstructor
from ..core.base import (
    QueryResult,
    StreamingClusterer,
    StreamingConfig,
    coerce_batch,
    require_dimension,
    streaming_config_from_dict,
    streaming_config_to_dict,
)
from ..core.buffer import BucketBuffer
from ..kmeans.batch import weighted_kmeans

__all__ = ["DecayedCoresetClusterer", "SlidingWindowClusterer"]


class DecayedCoresetClusterer(StreamingClusterer):
    """Exponentially time-decayed clustering over bucket summaries.

    Parameters
    ----------
    config:
        Shared streaming configuration (k, bucket size, query-time settings).
    decay:
        Per-bucket decay factor ``gamma`` in (0, 1].  ``1.0`` disables decay
        (every bucket keeps full weight); smaller values forget faster.
    min_weight:
        Buckets whose accumulated decay factor falls below this threshold are
        dropped entirely, bounding memory at roughly
        ``log(min_weight) / log(decay)`` buckets.
    """

    checkpoint_name = "decay"

    def __init__(
        self,
        config: StreamingConfig,
        decay: float = 0.95,
        min_weight: float = 1e-3,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if not 0.0 < min_weight < 1.0:
            raise ValueError("min_weight must be in (0, 1)")
        self.config = config
        self.decay = decay
        self.min_weight = min_weight
        self._constructor: CoresetConstructor = config.make_constructor()
        # Each entry: (summary, current decay multiplier).
        self._summaries: deque[tuple[WeightedPointSet, float]] = deque()
        self._buffer = BucketBuffer(config.bucket_size, dtype=config.np_dtype)
        self._points_seen = 0
        self._dimension: int | None = None
        self._rng = np.random.default_rng(config.seed)

    @property
    def points_seen(self) -> int:
        """Total number of stream points observed so far."""
        return self._points_seen

    @property
    def num_summaries(self) -> int:
        """Number of decayed bucket summaries currently retained."""
        return len(self._summaries)

    def insert(self, point: np.ndarray) -> None:
        """Buffer a point; on a full bucket, decay existing summaries and add a new one."""
        row = np.asarray(point, dtype=self.config.np_dtype).reshape(-1)
        self._dimension = require_dimension(self._dimension, row.shape[0], what="point")
        self._buffer.append(row)
        self._points_seen += 1
        if self._buffer.is_full:
            self._complete_bucket(self._buffer.drain())

    def insert_batch(self, points: np.ndarray) -> None:
        """Insert a batch: completed buckets are zero-copy slices of the input."""
        arr = coerce_batch(points, dtype=self.config.np_dtype)
        if arr.shape[0] == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        self._points_seen += arr.shape[0]
        for block in self._buffer.take_full_blocks(arr):
            self._complete_bucket(block)

    def query(self) -> QueryResult:
        """k-means++ over the decay-weighted union of summaries and the partial bucket."""
        combined = self._decayed_union()
        if combined.size == 0:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        result = weighted_kmeans(
            combined.points,
            self.config.k,
            weights=combined.weights,
            n_init=self.config.n_init,
            max_iterations=self.config.lloyd_iterations,
            rng=self._rng,
        )
        return QueryResult(centers=result.centers, coreset_points=combined.size, from_cache=False)

    def stored_points(self) -> int:
        """Summary points plus the partial bucket."""
        return sum(summary.size for summary, _ in self._summaries) + self._buffer.size

    def _complete_bucket(self, block: np.ndarray) -> None:
        data = WeightedPointSet.from_points(block)
        summary = self._constructor.build(data)
        # Age every existing summary by one bucket and drop the negligible ones.
        aged: deque[tuple[WeightedPointSet, float]] = deque()
        for existing, multiplier in self._summaries:
            new_multiplier = multiplier * self.decay
            if new_multiplier >= self.min_weight:
                aged.append((existing, new_multiplier))
        aged.append((summary, 1.0))
        self._summaries = aged

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        return {
            "streaming": streaming_config_to_dict(self.config),
            "decay": self.decay,
            "min_weight": self.min_weight,
        }

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        return {
            "points_seen": self._points_seen,
            "dimension": self._dimension,
            "buffer": self._buffer.state_dict(),
            "rng": rng_state(self._rng),
            "constructor": self._constructor.state_dict(),
            "summaries": [
                {"summary": summary.state_dict(), "multiplier": multiplier}
                for summary, multiplier in self._summaries
            ],
        }

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        from ..checkpoint.state import rng_from_state

        cls._reject_overrides(overrides)
        config_tree = manifest["config"]
        clusterer = cls(
            streaming_config_from_dict(config_tree["streaming"]),
            decay=float(config_tree["decay"]),
            min_weight=float(config_tree["min_weight"]),
        )
        clusterer._points_seen = int(state["points_seen"])
        clusterer._dimension = (
            None if state["dimension"] is None else int(state["dimension"])
        )
        clusterer._buffer.load_state(state["buffer"])
        clusterer._rng = rng_from_state(state["rng"])
        clusterer._constructor.load_state(state["constructor"])
        clusterer._summaries = deque(
            (WeightedPointSet.from_state(entry["summary"]), float(entry["multiplier"]))
            for entry in state["summaries"]
        )
        return clusterer

    def _decayed_union(self) -> WeightedPointSet:
        pieces: list[WeightedPointSet] = []
        for summary, multiplier in self._summaries:
            pieces.append(
                WeightedPointSet(points=summary.points, weights=summary.weights * multiplier)
            )
        if not self._buffer.is_empty:
            pieces.append(WeightedPointSet.from_points(self._buffer.snapshot()))
        if not pieces:
            return WeightedPointSet.empty(self._dimension or 1)
        return WeightedPointSet.union_all(pieces)


class SlidingWindowClusterer(StreamingClusterer):
    """Clustering over the most recent ``window_buckets`` base buckets only.

    Parameters
    ----------
    config:
        Shared streaming configuration.
    window_buckets:
        Number of most-recent base buckets that participate in queries; the
        window therefore covers ``window_buckets * m`` points (plus the
        partial bucket).
    """

    checkpoint_name = "window"

    def __init__(self, config: StreamingConfig, window_buckets: int = 10) -> None:
        if window_buckets <= 0:
            raise ValueError("window_buckets must be positive")
        self.config = config
        self.window_buckets = window_buckets
        self._constructor: CoresetConstructor = config.make_constructor()
        self._summaries: deque[WeightedPointSet] = deque(maxlen=window_buckets)
        self._buffer = BucketBuffer(config.bucket_size, dtype=config.np_dtype)
        self._points_seen = 0
        self._dimension: int | None = None
        self._rng = np.random.default_rng(config.seed)

    @property
    def points_seen(self) -> int:
        """Total number of stream points observed so far."""
        return self._points_seen

    @property
    def window_points(self) -> int:
        """Number of stream points currently covered by the window."""
        return len(self._summaries) * self.config.bucket_size + self._buffer.size

    def insert(self, point: np.ndarray) -> None:
        """Buffer a point; on a full bucket, summarise it and slide the window."""
        row = np.asarray(point, dtype=self.config.np_dtype).reshape(-1)
        self._dimension = require_dimension(self._dimension, row.shape[0], what="point")
        self._buffer.append(row)
        self._points_seen += 1
        if self._buffer.is_full:
            self._summarise_bucket(self._buffer.drain())

    def insert_batch(self, points: np.ndarray) -> None:
        """Insert a batch: completed window buckets are zero-copy slices."""
        arr = coerce_batch(points, dtype=self.config.np_dtype)
        if arr.shape[0] == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        self._points_seen += arr.shape[0]
        for block in self._buffer.take_full_blocks(arr):
            self._summarise_bucket(block)

    def _summarise_bucket(self, block: np.ndarray) -> None:
        self._summaries.append(self._constructor.build(WeightedPointSet.from_points(block)))

    def query(self) -> QueryResult:
        """k-means++ over the window's bucket summaries plus the partial bucket."""
        pieces = list(self._summaries)
        if not self._buffer.is_empty:
            pieces.append(WeightedPointSet.from_points(self._buffer.snapshot()))
        if not pieces:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        combined = WeightedPointSet.union_all(pieces)
        result = weighted_kmeans(
            combined.points,
            self.config.k,
            weights=combined.weights,
            n_init=self.config.n_init,
            max_iterations=self.config.lloyd_iterations,
            rng=self._rng,
        )
        return QueryResult(centers=result.centers, coreset_points=combined.size, from_cache=False)

    def stored_points(self) -> int:
        """Summary points in the window plus the partial bucket."""
        return sum(summary.size for summary in self._summaries) + len(self._buffer)

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        return {
            "streaming": streaming_config_to_dict(self.config),
            "window_buckets": self.window_buckets,
        }

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        return {
            "points_seen": self._points_seen,
            "dimension": self._dimension,
            "buffer": self._buffer.state_dict(),
            "rng": rng_state(self._rng),
            "constructor": self._constructor.state_dict(),
            "summaries": [summary.state_dict() for summary in self._summaries],
        }

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        from ..checkpoint.state import rng_from_state

        cls._reject_overrides(overrides)
        config_tree = manifest["config"]
        clusterer = cls(
            streaming_config_from_dict(config_tree["streaming"]),
            window_buckets=int(config_tree["window_buckets"]),
        )
        clusterer._points_seen = int(state["points_seen"])
        clusterer._dimension = (
            None if state["dimension"] is None else int(state["dimension"])
        )
        clusterer._buffer.load_state(state["buffer"])
        clusterer._rng = rng_from_state(state["rng"])
        clusterer._constructor.load_state(state["constructor"])
        for entry in state["summaries"]:
            clusterer._summaries.append(WeightedPointSet.from_state(entry))
        return clusterer
