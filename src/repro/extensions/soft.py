"""Streaming soft (fuzzy c-means) clustering on the coreset substrate.

:class:`SoftClusteringClusterer` ingests exactly like CC — a cached coreset
tree behind the generic :class:`~repro.core.driver.StreamClusterDriver` — but
serves *fuzzy membership weights* instead of a hard partition.  It plugs into
the shared serving pipeline through the
:meth:`~repro.core.serving_mixin.CoresetServingMixin._refine_solution` hook:
the warm-start :class:`~repro.queries.serving.QueryEngine` first produces a
hard solution (warm Lloyd or cold k-means++ restarts, exactly as for CC),
then a deterministic fuzzy c-means descent (:func:`repro.kmeans.soft_lloyd`)
refines those centers against the same coreset.  The engine's warm-start
state keeps the *hard* solution, so warm/cold/drift accounting is identical
to CC's; the refinement consumes no randomness.

After any query, :attr:`SoftClusteringClusterer.last_soft` holds the full
:class:`~repro.kmeans.SoftSolution` over the query coreset, and
:meth:`SoftClusteringClusterer.membership` projects arbitrary points onto the
current centers (rows sum to 1 within 1e-9).

Sharded ingestion is refused: a
:class:`~repro.parallel.engine.ShardedEngine` serves through its own engine
and would silently drop the soft refinement, so ``sharded()`` raises instead
of changing semantics (see ``docs/scenarios.md``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.base import StreamingConfig
from ..core.driver import CachedCoresetTreeClusterer
from ..coreset.bucket import WeightedPointSet
from ..kmeans import kmeans_cost
from ..kmeans.soft import SoftSolution, soft_assignments, soft_lloyd
from ..queries.serving import Solution

__all__ = ["SoftClusteringClusterer"]


class SoftClusteringClusterer(CachedCoresetTreeClusterer):
    """CC-backed streaming clusterer that serves fuzzy membership weights.

    Parameters
    ----------
    config:
        Shared streaming configuration (k, bucket size, query-time settings).
    fuzziness:
        The fuzzy c-means exponent ``f > 1``; ``f -> 1`` recovers hard
        assignment, larger values blur the partition.  2.0 is conventional.
    """

    checkpoint_name = "soft"
    shard_structure = None

    def __init__(self, config: StreamingConfig, fuzziness: float = 2.0) -> None:
        if fuzziness <= 1.0:
            raise ValueError(f"fuzziness must exceed 1.0, got {fuzziness}")
        super().__init__(config)
        self.fuzziness = float(fuzziness)
        self._last_soft: SoftSolution | None = None

    @classmethod
    def sharded(cls, config, num_shards, backend="serial", routing="round_robin", **kwargs):
        """Always raises: sharded serving would bypass the soft refinement."""
        raise ValueError(
            "algorithm 'soft' does not support sharded ingestion; use one of "
            "ct, cc, rcc (the sharded engine serves hard solutions through "
            "its own query engine, silently dropping fuzzy memberships)"
        )

    @property
    def last_soft(self) -> SoftSolution | None:
        """The fuzzy solution of the most recent query (None before one).

        Its ``memberships`` rows correspond to the query coreset's points (in
        coreset order) and each sums to 1; use :meth:`membership` to project
        arbitrary points instead.
        """
        return self._last_soft

    def membership(self, points: np.ndarray) -> np.ndarray:
        """Fuzzy memberships of ``points`` against the latest query's centers.

        Returns an ``(n, k)`` float64 array whose rows sum to 1 (within
        1e-9).  Requires at least one prior query.
        """
        if self._last_soft is None:
            raise RuntimeError("no query has been served yet; call query() first")
        return soft_assignments(points, self._last_soft.centers, self.fuzziness)

    def _refine_solution(
        self, coreset: WeightedPointSet, k: int, solution: Solution
    ) -> Solution:
        """Run the fuzzy descent seeded from the engine's hard centers.

        The returned (served) solution carries the refined centers and their
        hard k-means cost over the coreset; the engine's warm-start state
        keeps the pre-refinement solution, so drift detection and warm/cold
        counters behave exactly as for CC.
        """
        refined = soft_lloyd(
            coreset.points,
            k,
            weights=coreset.weights,
            fuzziness=self.fuzziness,
            initial_centers=solution.centers,
            max_iterations=self.config.lloyd_iterations,
        )
        self._last_soft = refined
        cost = kmeans_cost(coreset.points, refined.centers, weights=coreset.weights)
        return dataclasses.replace(solution, centers=refined.centers, cost=cost)

    # -- checkpointing -------------------------------------------------------

    def _extra_config(self) -> dict:
        return {"fuzziness": self.fuzziness}

    @classmethod
    def _construct_for_restore(cls, config, config_tree):
        return cls(config, fuzziness=float(config_tree["fuzziness"]))
