"""Extensions beyond the paper's core algorithms.

The paper's conclusion lists three natural follow-ups, all implemented here:

* streaming k-median with coreset caching (:mod:`repro.extensions.kmedian`),
* time-decaying weights and sliding windows for concept drift
  (:mod:`repro.extensions.decay`),
* clustering over distributed / parallel streams
  (:mod:`repro.extensions.distributed`).
"""

from .decay import DecayedCoresetClusterer, SlidingWindowClusterer
from .distributed import DistributedCoordinator, StreamShard
from .kmedian import (
    KMedianCachedClusterer,
    KMedianConfig,
    kmedian_cost,
    kmedian_seeding,
    kmedian_sensitivity_coreset,
    weighted_kmedian,
)

__all__ = [
    "DecayedCoresetClusterer",
    "SlidingWindowClusterer",
    "DistributedCoordinator",
    "StreamShard",
    "KMedianCachedClusterer",
    "KMedianConfig",
    "kmedian_cost",
    "kmedian_seeding",
    "kmedian_sensitivity_coreset",
    "weighted_kmedian",
]
