"""Extensions beyond the paper's core algorithms.

The paper's conclusion lists three natural follow-ups, all implemented here:

* streaming k-median with coreset caching (:mod:`repro.extensions.kmedian`),
* time-decaying weights and sliding windows for concept drift
  (:mod:`repro.extensions.decay`), plus soft (fuzzy c-means) serving
  (:mod:`repro.extensions.soft`),
* clustering over distributed / parallel streams (the parallel sharded
  engine, :mod:`repro.parallel`; the old :mod:`repro.extensions.distributed`
  wrapper is deprecated and slated for removal).

All extension algorithms are registered in the
:class:`~repro.core.registry.AlgorithmRegistry` under the names ``window``,
``decay``, and ``soft``.
"""

from .decay import DecayedCoresetClusterer, SlidingWindowClusterer
from .kmedian import (
    KMedianCachedClusterer,
    KMedianConfig,
    kmedian_cost,
    kmedian_seeding,
    kmedian_sensitivity_coreset,
    weighted_kmedian,
)
from .soft import SoftClusteringClusterer

__all__ = [
    "DecayedCoresetClusterer",
    "SlidingWindowClusterer",
    "SoftClusteringClusterer",
    "DistributedCoordinator",
    "StreamShard",
    "KMedianCachedClusterer",
    "KMedianConfig",
    "kmedian_cost",
    "kmedian_seeding",
    "kmedian_sensitivity_coreset",
    "weighted_kmedian",
]


def __getattr__(name: str):
    # Deprecated names import lazily so `import repro.extensions` does not
    # fire the DeprecationWarning for users who never touch them.
    if name in ("DistributedCoordinator", "StreamShard"):
        from . import distributed

        return getattr(distributed, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
