"""Streaming k-median with coreset caching.

The paper's conclusion names streaming k-median as the natural next target
for the coreset-caching framework ("applying it to streaming k-median seems
natural").  This module provides that extension:

* weighted k-median cost (sum of weighted Euclidean distances, not squared),
* D-sampling seeding (the k-median analogue of k-means++ — probabilities
  proportional to distance rather than squared distance),
* a weighted Lloyd-style refinement that moves each center to the
  coordinate-wise weighted median of its cluster (the classical surrogate for
  the geometric median, exact per coordinate under the L1 metric and a good
  heuristic under L2),
* sensitivity-sampling coresets for the k-median metric, and
* :class:`KMedianCachedClusterer`, a CC-style streaming clusterer that reuses
  the coreset tree + coreset cache machinery with the k-median primitives
  swapped in.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..coreset.bucket import Bucket, WeightedPointSet, make_base_buckets
from ..coreset.construction import span_keyed_rng
from ..coreset.merge import union_buckets
from ..core.base import QueryResult, StreamingClusterer, coerce_batch, require_dimension
from ..core.buffer import BucketBuffer
from ..core.cache import CoresetCache
from ..core.coreset_tree import CoresetTree
from ..kernels.scatter import weighted_bincount
from ..kernels.sketch import SKETCH_KINDS, Sketcher, sketch_for
from ..core.numeral import major
from ..kmeans.cost import pairwise_squared_distances

__all__ = [
    "kmedian_cost",
    "kmedian_seeding",
    "weighted_kmedian",
    "kmedian_sensitivity_coreset",
    "KMedianConfig",
    "KMedianCachedClusterer",
]


def _distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Euclidean (not squared) distances, shape (n, k)."""
    return np.sqrt(pairwise_squared_distances(points, centers))


def kmedian_cost(
    points: np.ndarray,
    centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """Weighted k-median cost: sum of weighted distances to the nearest center."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts.reshape(1, -1)
    if pts.shape[0] == 0:
        return 0.0
    nearest = np.min(_distances(pts, centers), axis=1)
    if weights is None:
        return float(np.sum(nearest))
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (pts.shape[0],):
        raise ValueError(f"weights must have shape ({pts.shape[0]},), got {w.shape}")
    return float(np.dot(w, nearest))


def kmedian_seeding(
    points: np.ndarray,
    k: int,
    weights: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """D-sampling seeding for k-median (probabilities proportional to distance)."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        raise ValueError("cannot seed centers from an empty point set")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if rng is None:
        rng = np.random.default_rng()
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {w.shape}")

    if k >= n:
        return pts.copy()

    centers = np.empty((k, pts.shape[1]), dtype=np.float64)
    base_probs = w / np.sum(w)
    centers[0] = pts[rng.choice(n, p=base_probs)]
    closest = _distances(pts, centers[0:1]).ravel()

    for i in range(1, k):
        scores = w * closest
        total = float(np.sum(scores))
        if total <= 0.0:
            idx = rng.choice(n, p=base_probs)
        else:
            idx = rng.choice(n, p=scores / total)
        centers[i] = pts[idx]
        np.minimum(closest, _distances(pts, centers[i : i + 1]).ravel(), out=closest)
    return centers


def _weighted_median_per_coordinate(points: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Coordinate-wise weighted median of a weighted point set."""
    order = np.argsort(points, axis=0)
    result = np.empty(points.shape[1], dtype=np.float64)
    total = float(np.sum(weights))
    for column in range(points.shape[1]):
        sorted_values = points[order[:, column], column]
        sorted_weights = weights[order[:, column]]
        cumulative = np.cumsum(sorted_weights)
        index = int(np.searchsorted(cumulative, total / 2.0))
        index = min(index, points.shape[0] - 1)
        result[column] = sorted_values[index]
    return result


@dataclass(frozen=True)
class KMedianResult:
    """Outcome of a batch weighted k-median run."""

    centers: np.ndarray
    cost: float
    iterations: int


def weighted_kmedian(
    points: np.ndarray,
    k: int,
    weights: np.ndarray | None = None,
    n_init: int = 3,
    max_iterations: int = 15,
    rng: np.random.Generator | None = None,
) -> KMedianResult:
    """Batch weighted k-median: D-sampling seeding + alternating median updates."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    if rng is None:
        rng = np.random.default_rng()
    n = pts.shape[0]
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)

    if n <= k:
        centers = np.vstack([pts, np.repeat(pts[-1:], k - n, axis=0)]) if n < k else pts.copy()
        return KMedianResult(centers=centers, cost=kmedian_cost(pts, centers, w), iterations=0)

    best: KMedianResult | None = None
    for _ in range(n_init):
        centers = kmedian_seeding(pts, k, weights=w, rng=rng)
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            labels = np.argmin(_distances(pts, centers), axis=1)
            new_centers = centers.copy()
            for cluster in range(k):
                mask = labels == cluster
                if not np.any(mask):
                    # Re-seed an empty cluster with the worst-served point.
                    worst = int(np.argmax(np.min(_distances(pts, centers), axis=1)))
                    new_centers[cluster] = pts[worst]
                    continue
                new_centers[cluster] = _weighted_median_per_coordinate(pts[mask], w[mask])
            movement = float(np.sum(np.abs(new_centers - centers)))
            centers = new_centers
            if movement <= 1e-9:
                break
        candidate = KMedianResult(
            centers=centers, cost=kmedian_cost(pts, centers, w), iterations=iterations
        )
        if best is None or candidate.cost < best.cost:
            best = candidate
    assert best is not None
    return best


def kmedian_sensitivity_coreset(
    data: WeightedPointSet,
    k: int,
    m: int,
    rng: np.random.Generator,
) -> WeightedPointSet:
    """Importance-sampling coreset for the k-median metric (distance, not squared).

    Like the k-means construction, a sketched input is seeded and scored in
    the sketched space (JL preserves the Euclidean distances the scores are
    built from, up to ``1 ± eps``) while the sampled output rows stay exact;
    the re-weighting keeps the estimator unbiased under any distribution.
    """
    if data.size <= m:
        return data
    pts, w = data.points, data.weights
    solve = data.sketch if data.sketch is not None else pts
    seeds = kmedian_seeding(solve, min(k, data.size), weights=w, rng=rng)
    dist = _distances(solve, seeds)
    labels = np.argmin(dist, axis=1)
    nearest = dist[np.arange(dist.shape[0]), labels]

    weighted_dist = w * nearest
    total_cost = float(np.sum(weighted_dist))
    cluster_weight = weighted_bincount(labels, w, seeds.shape[0])
    cluster_weight = np.maximum(cluster_weight, np.finfo(np.float64).tiny)

    if total_cost <= 0.0:
        sensitivities = w / cluster_weight[labels]
    else:
        sensitivities = weighted_dist / total_cost + w / cluster_weight[labels]
    probabilities = sensitivities / float(np.sum(sensitivities))

    indices = rng.choice(data.size, size=m, replace=True, p=probabilities)
    return WeightedPointSet(
        points=pts[indices],
        weights=w[indices] / (m * probabilities[indices]),
        sketch=data.sketch[indices] if data.sketch is not None else None,
    )


class _KMedianCoresetConstructor:
    """Adapter giving the coreset tree a k-median coreset builder.

    Implements the same two-stream randomness contract as
    :class:`~repro.coreset.construction.CoresetConstructor`: a shared scratch
    generator for query-time builds and span-keyed streams for tree merges
    (so batch and per-point ingestion produce identical trees).
    """

    def __init__(
        self,
        k: int,
        coreset_size: int,
        seed: int | None = None,
        sketch_dim: int | None = None,
        sketch_kind: str = "gaussian",
    ) -> None:
        from ..kernels.workspace import Workspace

        self.k = k
        self.coreset_size = coreset_size
        self._rng = np.random.default_rng(seed)
        self._entropy = int(np.random.SeedSequence().entropy) if seed is None else int(seed)
        # Part of the constructor duck type (see CoresetConstructor.sketcher):
        # the clusterer's ingest sites project with it.
        self.sketcher = (
            Sketcher(sketch_dim, kind=sketch_kind, entropy=self._entropy)
            if sketch_dim is not None
            else None
        )
        # Scratch pool, part of the constructor duck type: merge_buckets
        # stages each union here (kmedian_sensitivity_coreset samples
        # whenever the union exceeds coreset_size, so pooled unions never
        # leak into the tree).  Never checkpointed.
        self.workspace = Workspace()

    def build(self, data: WeightedPointSet) -> WeightedPointSet:
        if data.size == 0:
            return data
        return kmedian_sensitivity_coreset(data, self.k, self.coreset_size, self._rng)

    __call__ = build

    def build_for_span(
        self, data: WeightedPointSet, *, level: int, start: int, end: int
    ) -> WeightedPointSet:
        if data.size == 0:
            return data
        rng = span_keyed_rng(self._entropy, level, start, end)
        return kmedian_sensitivity_coreset(data, self.k, self.coreset_size, rng)

    def state_dict(self) -> dict:
        """Checkpoint state: span-key entropy plus the scratch-stream position."""
        return {"entropy": self._entropy, "rng": self._rng.bit_generator.state}

    def load_state(self, state: dict) -> None:
        """Restore both randomness streams from :meth:`state_dict` output."""
        from ..checkpoint.state import rng_from_state

        self._entropy = int(state["entropy"])
        self._rng = rng_from_state(state["rng"])
        if self.sketcher is not None:
            self.sketcher.reseed(self._entropy)


@dataclass(frozen=True)
class KMedianConfig:
    """Configuration for the streaming k-median clusterer.

    Attributes mirror :class:`~repro.core.base.StreamingConfig` but the final
    extraction step is weighted k-median instead of k-means++.
    """

    k: int
    coreset_size: int | None = None
    merge_degree: int = 2
    n_init: int = 3
    max_iterations: int = 15
    seed: int | None = None
    sketch_dim: int | None = None
    sketch_kind: str = "gaussian"

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.merge_degree < 2:
            raise ValueError("merge_degree must be >= 2")
        if self.coreset_size is not None and self.coreset_size <= 0:
            raise ValueError("coreset_size must be positive when given")
        if self.sketch_dim is not None and self.sketch_dim <= 0:
            raise ValueError("sketch_dim must be positive when given")
        if self.sketch_kind not in SKETCH_KINDS:
            raise ValueError(
                f"unknown sketch kind {self.sketch_kind!r}; available: {SKETCH_KINDS}"
            )

    @property
    def bucket_size(self) -> int:
        """Base-bucket size m (defaults to 20 * k, as for k-means)."""
        return self.coreset_size if self.coreset_size is not None else 20 * self.k


class KMedianCachedClusterer(StreamingClusterer):
    """CC-style streaming k-median clusterer (coreset tree + coreset cache)."""

    checkpoint_name = "kmedian"

    def __init__(self, config: KMedianConfig) -> None:
        self.config = config
        self._constructor = _KMedianCoresetConstructor(
            config.k,
            config.bucket_size,
            seed=config.seed,
            sketch_dim=config.sketch_dim,
            sketch_kind=config.sketch_kind,
        )
        self._tree = CoresetTree(self._constructor, merge_degree=config.merge_degree)
        self._cache = CoresetCache(config.merge_degree)
        self._buffer = BucketBuffer(config.bucket_size)
        self._points_seen = 0
        self._dimension: int | None = None
        self._rng = np.random.default_rng(config.seed)

    @property
    def points_seen(self) -> int:
        """Total number of stream points observed so far."""
        return self._points_seen

    @property
    def cache(self) -> CoresetCache:
        """The coreset cache (exposed for tests)."""
        return self._cache

    def insert(self, point: np.ndarray) -> None:
        """Buffer one point; flush a base bucket when the buffer reaches m."""
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        if self._dimension is None:
            self._dimension = row.shape[0]
        elif row.shape[0] != self._dimension:
            raise ValueError(
                f"point has dimension {row.shape[0]}, expected {self._dimension}"
            )
        self._buffer.append(row)
        self._points_seen += 1
        if self._buffer.is_full:
            index = self._tree.num_base_buckets + 1
            block = self._buffer.drain()
            data = WeightedPointSet.from_points(
                block, sketch=sketch_for(self._constructor.sketcher, block)
            )
            self._tree.insert_bucket(Bucket(data=data, start=index, end=index, level=0))

    def insert_batch(self, points: np.ndarray) -> None:
        """Insert a batch: full base buckets are zero-copy slices of the input."""
        arr = coerce_batch(points)
        if arr.shape[0] == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        blocks = self._buffer.take_full_blocks(arr)
        self._points_seen += arr.shape[0]
        if blocks:
            self._tree.insert_buckets(
                make_base_buckets(
                    blocks,
                    self._tree.num_base_buckets + 1,
                    sketcher=self._constructor.sketcher,
                )
            )

    def query(self) -> QueryResult:
        """Return k median centers from the cached coreset plus the partial bucket."""
        coreset = self._query_coreset()
        if not self._buffer.is_empty:
            block = self._buffer.snapshot()
            partial = WeightedPointSet.from_points(
                block, sketch=sketch_for(self._constructor.sketcher, block)
            )
            coreset = coreset.union(partial) if coreset.size else partial
        if coreset.size == 0:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        result = weighted_kmedian(
            coreset.points,
            self.config.k,
            weights=coreset.weights,
            n_init=self.config.n_init,
            max_iterations=self.config.max_iterations,
            rng=self._rng,
        )
        return QueryResult(
            centers=result.centers, coreset_points=coreset.size, from_cache=len(self._cache) > 0
        )

    def stored_points(self) -> int:
        """Points held by the tree, the cache, and the partial bucket."""
        return self._tree.stored_points() + self._cache.stored_points() + self._buffer.size

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        return {"kmedian": asdict(self.config)}

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        return {
            "points_seen": self._points_seen,
            "dimension": self._dimension,
            "buffer": self._buffer.state_dict(),
            "rng": rng_state(self._rng),
            "constructor": self._constructor.state_dict(),
            "tree": self._tree.state_dict(),
            "cache": self._cache.state_dict(),
        }

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        from ..checkpoint.state import rng_from_state

        cls._reject_overrides(overrides)
        clusterer = cls(KMedianConfig(**manifest["config"]["kmedian"]))
        clusterer._points_seen = int(state["points_seen"])
        clusterer._dimension = (
            None if state["dimension"] is None else int(state["dimension"])
        )
        clusterer._buffer.load_state(state["buffer"])
        clusterer._rng = rng_from_state(state["rng"])
        clusterer._constructor.load_state(state["constructor"])
        clusterer._tree.load_state(state["tree"])
        clusterer._cache.load_state(state["cache"])
        return clusterer

    def _query_coreset(self) -> WeightedPointSet:
        """The CC query path (Algorithm 3) with the k-median constructor."""
        n = self._tree.num_base_buckets
        if n == 0:
            return WeightedPointSet.empty(self._dimension or 1)
        exact = self._cache.lookup(n)
        if exact is not None:
            return exact.data

        n1 = major(n, self.config.merge_degree)
        cached_prefix = self._cache.lookup(n1) if n1 > 0 else None
        if cached_prefix is None:
            pieces = self._tree.active_buckets()
        else:
            pieces = [cached_prefix, *self._tree.suffix_buckets(after=n1)]
        combined = union_buckets(pieces)
        summary = self._constructor.build(combined.data)
        bucket = Bucket(data=summary, start=1, end=n, level=combined.level + 1)
        self._cache.store(bucket)
        self._cache.evict_stale(n)
        return summary
