"""Elasticity primitives: reshard/migration reports, rebalance policy, apportionment.

The sharded engine's elasticity (live resharding, load-driven shard
migration, crash recovery) is sound because of the same Observation 1 that
makes sharding itself sound: a union of per-shard coresets is a coreset of
the union, so shard state is *mergeable* (collect every shard's coreset),
*splittable* (deal the union back out to any number of shards), and
*movable* (carve a slice off a hot shard and hand it to a cold one).  This
module holds the engine-independent pieces of that machinery: the report
dataclasses each elastic operation returns, the :class:`RebalancePolicy`
that decides when a migration is worth a quiesce, and the exact integer
apportionment that keeps ``points_seen`` accounting lossless through
arbitrary N→M reshard chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "ReshardReport",
    "MigrationReport",
    "RecoveryEvent",
    "RebalancePolicy",
    "apportion_points",
]


@dataclass(frozen=True)
class ReshardReport:
    """Outcome of one :meth:`~repro.parallel.engine.ShardedEngine.reshard` call.

    Attributes
    ----------
    old_num_shards / new_num_shards:
        Shard counts before and after.
    coreset_points:
        Weighted points in the redistributed union coreset.
    points_represented:
        Stream points that union stands for (the engine's ``points_seen``).
    pause_seconds:
        Quiesce-to-resume wall time: sync barrier, cross-shard collect,
        backend teardown/rebuild, and piece adoption.  This is the window
        during which ingest is paused; the bench gate tracks it as
        ``reshard_pause_ms``.
    """

    old_num_shards: int
    new_num_shards: int
    coreset_points: int
    points_represented: int
    pause_seconds: float


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one :meth:`~repro.parallel.engine.ShardedEngine.migrate` call.

    Attributes
    ----------
    source / dest:
        Shard indices the coreset slice moved between.
    moved_coreset_points:
        Weighted points in the migrated slice.
    moved_points_represented:
        Stream points the slice stands for (transferred between the two
        shards' ``points_seen`` ledgers, total preserved).
    router_slots_moved:
        Virtual routing buckets reassigned so *future* points follow the
        moved mass (0 for round-robin/random, which balance by construction).
    pause_seconds:
        Quiesce-to-resume wall time of the migration.
    """

    source: int
    dest: int
    moved_coreset_points: int
    moved_points_represented: int
    router_slots_moved: int
    pause_seconds: float


@dataclass(frozen=True)
class RecoveryEvent:
    """One automatic worker recovery performed by the engine's supervisor.

    Attributes
    ----------
    shard_index:
        The shard whose worker was restarted.
    restarts:
        Cumulative restarts of that shard so far (compared against
        ``max_restarts``).
    replayed_blocks / replayed_points:
        Size of the journal tail re-submitted after restoring the shard's
        last recovery-point state.
    """

    shard_index: int
    restarts: int
    replayed_blocks: int
    replayed_points: int


@dataclass(frozen=True)
class RebalancePolicy:
    """When and how the engine migrates load off a hot shard.

    The engine tracks per-shard routed points since the last rebalance (the
    *window*) and consults this policy after each batch.  A migration is a
    quiesce (sync + collect), so the policy is deliberately conservative:
    nothing happens until the window holds ``min_points``, and only an
    imbalance of at least ``imbalance_ratio`` versus the window mean
    triggers a move.  Resetting the window after each migration doubles as
    the cooldown.

    Parameters
    ----------
    imbalance_ratio:
        Trigger threshold: the hottest shard's window load divided by the
        window mean must reach this (must be > 1).
    min_points:
        Window size (routed points) before the policy is consulted at all;
        also the cooldown between consecutive migrations.
    fraction:
        Fraction of the hot shard's coreset mass to move, in (0, 1].
    """

    imbalance_ratio: float = 1.5
    min_points: int = 2048
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.imbalance_ratio <= 1.0:
            raise ValueError(
                f"imbalance_ratio must be > 1, got {self.imbalance_ratio}"
            )
        if self.min_points <= 0:
            raise ValueError(f"min_points must be positive, got {self.min_points}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def decide(self, window_loads: Sequence[int]) -> tuple[int, int] | None:
        """Pick ``(hot, cold)`` shard indices to migrate between, or ``None``."""
        n = len(window_loads)
        total = sum(window_loads)
        if n < 2 or total < self.min_points:
            return None
        hot = max(range(n), key=window_loads.__getitem__)
        cold = min(range(n), key=window_loads.__getitem__)
        if hot == cold or window_loads[hot] <= window_loads[cold]:
            return None
        if window_loads[hot] * n < self.imbalance_ratio * total:
            return None
        return hot, cold


def apportion_points(weights: Sequence[float], total: int) -> list[int]:
    """Split integer ``total`` proportionally to ``weights``, exactly.

    Largest-remainder apportionment: the result sums to ``total`` exactly,
    which is what keeps ``sum(shard.points_seen) == engine.points_seen``
    through reshards (each redistributed piece is credited with the stream
    points its coreset weight represents).  Zero-sum weights fall back to an
    even split; empty ``weights`` requires ``total == 0``.
    """
    n = len(weights)
    if n == 0:
        if total:
            raise ValueError(f"cannot apportion {total} points over zero shards")
        return []
    if total <= 0:
        return [0] * n
    weight_sum = float(sum(weights))
    if weight_sum <= 0.0:
        base, extra = divmod(total, n)
        return [base + (1 if index < extra else 0) for index in range(n)]
    quotas = [total * float(w) / weight_sum for w in weights]
    counts = [int(q) for q in quotas]
    order = sorted(range(n), key=lambda i: quotas[i] - counts[i], reverse=True)
    for index in order[: total - sum(counts)]:
        counts[index] += 1
    return counts
