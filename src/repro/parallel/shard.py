"""The shard worker: one clustering structure plus its partial base bucket.

A :class:`StreamShard` is the unit of work behind every backend: the serial
backend calls it inline, the thread backend gives each shard its own worker
thread, and the process backend builds one inside each worker process (the
construction arguments — config, index, seed, structure name — are all
picklable, so shards never cross process boundaries themselves).

Shards communicate with the coordinator through :class:`ShardSnapshot`: the
shard-local coreset (Observation 1: the union of per-shard coresets is a
coreset of the union) plus the accounting counters the engine aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import StreamingConfig, coerce_batch, require_dimension
from ..core.buffer import BucketBuffer
from ..core.cached_tree import CachedCoresetTree
from ..core.coreset_tree import CoresetTree
from ..core.recursive_cache import RecursiveCachedTree
from ..coreset.bucket import Bucket, WeightedPointSet, make_base_buckets
from ..coreset.construction import CoresetConstructor
from ..kernels.sketch import sketch_for

__all__ = ["SHARD_STRUCTURES", "ShardSnapshot", "StreamShard", "make_shard"]


def _make_ct(constructor: CoresetConstructor, config: StreamingConfig, nesting_depth: int):
    return CoresetTree(constructor, merge_degree=config.merge_degree)


def _make_cc(constructor: CoresetConstructor, config: StreamingConfig, nesting_depth: int):
    return CachedCoresetTree(constructor, merge_degree=config.merge_degree)


def _make_rcc(constructor: CoresetConstructor, config: StreamingConfig, nesting_depth: int):
    return RecursiveCachedTree(constructor, nesting_depth=nesting_depth)


# Structure factories by registry name; module-level functions so that shard
# construction arguments stay picklable for the process backend.
SHARD_STRUCTURES = {"ct": _make_ct, "cc": _make_cc, "rcc": _make_rcc}


@dataclass(frozen=True)
class ShardSnapshot:
    """What one shard ships back to the coordinator at a collection barrier.

    Attributes
    ----------
    shard_index:
        Which shard produced this snapshot.
    points / weights:
        The shard-local coreset (structure coreset unioned with the partial
        base bucket); empty arrays when the shard has seen no points.
    points_seen:
        Stream points routed to this shard so far.
    stored_points:
        Weighted points held by the shard (structure plus partial bucket).
    cache_hits / cache_misses / cache_entries:
        The shard structure's coreset-cache counters (zero for CT shards).
    """

    shard_index: int
    points: np.ndarray
    weights: np.ndarray
    points_seen: int
    stored_points: int
    cache_hits: int = 0
    cache_misses: int = 0
    cache_entries: int = 0

    @property
    def coreset(self) -> WeightedPointSet:
        """The shard-local coreset as a weighted point set."""
        return WeightedPointSet(points=self.points, weights=self.weights)


class StreamShard:
    """One shard: a clustering structure plus its partial base bucket.

    Parameters
    ----------
    config:
        Shared streaming configuration (bucket size, coreset method, ...).
    shard_index:
        This shard's position in the engine (also used in diagnostics).
    seed:
        Sampling seed for this shard's coreset constructions.  Callers should
        derive it via :func:`~repro.parallel.routing.spawn_shard_seeds`; when
        omitted it falls back to that derivation from ``config.seed``.
    structure:
        Which clustering structure backs the shard: ``"ct"``, ``"cc"``
        (default; the cheap cached per-shard query is what makes global
        queries fast), or ``"rcc"``.
    nesting_depth:
        RCC nesting depth (ignored by CT/CC shards).
    """

    def __init__(
        self,
        config: StreamingConfig,
        shard_index: int,
        seed: int | None = None,
        structure: str = "cc",
        nesting_depth: int = 3,
    ) -> None:
        if structure not in SHARD_STRUCTURES:
            raise ValueError(
                f"unknown shard structure {structure!r}; "
                f"available: {tuple(SHARD_STRUCTURES)}"
            )
        self.shard_index = shard_index
        self.config = config
        self.structure_name = structure
        self._nesting_depth = nesting_depth
        if seed is None and config.seed is not None:
            from .routing import spawn_shard_seeds

            seed = spawn_shard_seeds(config.seed, shard_index + 1)[shard_index]
        self._constructor = CoresetConstructor(config.coreset_config(), seed=seed)
        # Per-shard sketcher keyed by the shard's own spawned seed; sketches
        # stay shard-local (ShardSnapshot ships only exact points/weights).
        self._sketcher = self._constructor.sketcher
        self._structure = SHARD_STRUCTURES[structure](
            self._constructor, config, nesting_depth
        )
        self._dtype = config.np_dtype
        self._buffer = BucketBuffer(config.bucket_size, dtype=self._dtype)
        self._dimension: int | None = None
        self.points_seen = 0
        # Coreset mass adopted from elsewhere (reshard split pieces, migrated
        # hot-shard slices).  Inherited points are exact weighted points — no
        # sketch, because each shard's JL projection is keyed to its own seed
        # and cross-shard sketches would mix projection spaces.
        self._inherited: WeightedPointSet | None = None
        self._inherited_points = 0

    @property
    def structure(self):
        """The shard's clustering structure (exposed for tests)."""
        return self._structure

    def insert(self, point: np.ndarray) -> None:
        """Add one point to this shard's local state."""
        row = np.asarray(point, dtype=self._dtype).reshape(-1)
        self._dimension = require_dimension(self._dimension, row.shape[0], what="point")
        self._buffer.append(row)
        self.points_seen += 1
        if self._buffer.is_full:
            index = self._structure.num_base_buckets + 1
            block = self._buffer.drain()
            data = WeightedPointSet.from_points(
                block, sketch=sketch_for(self._sketcher, block)
            )
            self._structure.insert_bucket(
                Bucket(data=data, start=index, end=index, level=0)
            )

    def insert_batch(self, points: np.ndarray) -> None:
        """Add a batch to this shard: full buckets are sliced, not looped."""
        arr = coerce_batch(points, dtype=self._dtype)
        if arr.shape[0] == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        blocks = self._buffer.take_full_blocks(arr)
        self.points_seen += arr.shape[0]
        if blocks:
            self._structure.insert_buckets(
                make_base_buckets(
                    blocks,
                    self._structure.num_base_buckets + 1,
                    sketcher=self._sketcher,
                )
            )

    def local_coreset(self, dimension: int) -> WeightedPointSet:
        """This shard's contribution to a global query (cached coreset + partial bucket)."""
        coreset = self._structure.query_coreset()
        if not self._buffer.is_empty:
            block = self._buffer.snapshot()
            partial = WeightedPointSet.from_points(
                block, sketch=sketch_for(self._sketcher, block)
            )
            coreset = coreset.union(partial) if coreset.size else partial
        if self._inherited is not None and self._inherited.size:
            coreset = coreset.union(self._inherited) if coreset.size else self._inherited
        if coreset.size == 0:
            return WeightedPointSet.empty(dimension, dtype=self._dtype)
        return coreset

    def stored_points(self) -> int:
        """Points held by this shard (structure, partial bucket, inherited mass)."""
        inherited = self._inherited.size if self._inherited is not None else 0
        return self._structure.stored_points() + self._buffer.size + inherited

    # -- elasticity ----------------------------------------------------------

    def adopt(
        self, piece: WeightedPointSet, points_represented: int, reset: bool = False
    ) -> None:
        """Take ownership of a coreset piece built elsewhere (reshard/migration).

        The piece joins this shard's query contribution as inherited mass —
        sound by Observation 1, since the union of coresets is a coreset of
        the union.  ``points_represented`` is the number of stream points the
        piece stands for; it is added to :attr:`points_seen` so cross-shard
        accounting stays exact through reshards.  With ``reset=True`` the
        shard's own stream state (structure, partial bucket, previously
        inherited mass) is discarded first — the migration-source case, where
        the kept slice of the shard's coreset arrives back as ``piece``.
        """
        if reset:
            self.reset()
        if piece.size:
            self._dimension = require_dimension(self._dimension, piece.dimension)
            if piece.points.dtype != self._dtype or piece.sketch is not None:
                piece = WeightedPointSet(
                    points=np.asarray(piece.points, dtype=self._dtype),
                    weights=piece.weights,
                )
            if self._inherited is None or self._inherited.size == 0:
                self._inherited = piece
            else:
                self._inherited = self._inherited.union(piece)
        self._inherited_points += int(points_represented)
        self.points_seen += int(points_represented)

    def reset(self) -> None:
        """Discard all stream state; keep config, seed, and sampling position.

        The constructor (and its RNG position) is retained so the shard's
        sampling stream continues rather than replays — a reset shard is a
        fresh structure fed by the same entropy source.
        """
        self._structure = SHARD_STRUCTURES[self.structure_name](
            self._constructor, self.config, self._nesting_depth
        )
        self._buffer = BucketBuffer(self.config.bucket_size, dtype=self._dtype)
        self._inherited = None
        self._inherited_points = 0
        self.points_seen = 0

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state: structure, partial bucket, and sampling streams."""
        state = {
            "points_seen": self.points_seen,
            "dimension": self._dimension,
            "buffer": self._buffer.state_dict(),
            "constructor": self._constructor.state_dict(),
            "structure": self._structure.state_dict(),
        }
        if self._inherited is not None and self._inherited.size:
            state["inherited"] = self._inherited.state_dict()
            state["inherited_points"] = self._inherited_points
        return state

    def load_state(self, state: dict) -> None:
        """Restore this shard from :meth:`state_dict` output.

        Pre-elastic state trees carry no ``inherited`` key and load as
        shards without inherited mass.
        """
        self.points_seen = int(state["points_seen"])
        self._dimension = (
            None if state["dimension"] is None else int(state["dimension"])
        )
        self._buffer.load_state(state["buffer"])
        self._constructor.load_state(state["constructor"])
        self._structure.load_state(state["structure"])
        inherited = state.get("inherited")
        self._inherited = (
            None if inherited is None else WeightedPointSet.from_state(inherited)
        )
        self._inherited_points = int(state.get("inherited_points", 0))

    def snapshot(self, dimension: int) -> ShardSnapshot:
        """Materialise the shard's coreset and counters for the coordinator."""
        coreset = self.local_coreset(dimension)
        cache = self._structure.cache_stats()
        return ShardSnapshot(
            shard_index=self.shard_index,
            points=coreset.points,
            weights=coreset.weights,
            points_seen=self.points_seen,
            stored_points=self.stored_points(),
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
            cache_entries=cache.entries if cache is not None else 0,
        )


def make_shard(
    config: StreamingConfig,
    shard_index: int,
    seed: int | None,
    structure: str,
    nesting_depth: int = 3,
) -> StreamShard:
    """Default shard factory (module-level so it pickles for process workers)."""
    return StreamShard(
        config, shard_index, seed=seed, structure=structure, nesting_depth=nesting_depth
    )
