"""Executor backends for the sharded ingestion engine.

Three interchangeable executors implement the same small contract —
``submit`` per-shard insert blocks (ordered, bounded), ``sync`` to a barrier,
``collect`` per-shard coreset snapshots, ``dump_states``/``load_states`` for
checkpoint/restore of full shard state, ``close`` idempotently:

* :class:`SerialBackend` — shards run inline in the caller's thread.  Fully
  deterministic, zero overhead; the debugging/equivalence reference and the
  semantics the simulation-era ``DistributedCoordinator`` had.
* :class:`ThreadBackend` — one worker thread per shard, each behind a bounded
  :class:`queue.Queue`.  Insert blocks are handed over by reference (zero
  copy); the vectorized hot loops (GEMM, reductions, sampling) release the
  GIL inside numpy, so shard merges overlap on multi-core machines.
* :class:`ProcessBackend` — one worker process per shard.  Point batches are
  copied into a per-shard shared-memory slab ring and announced with a tiny
  ``(slab, slot, rows)`` message, so ndarray payloads are **never pickled**;
  a semaphore over the ring's free slots is what bounds the work queue.
  Only coreset snapshots (``m`` weighted points) travel back through a queue.

Worker failures never hang the coordinator: a raised exception inside a shard
is recorded (with its traceback) and re-raised as :class:`ShardWorkerError`
at the next ``submit``/``sync``/``collect`` call, and ``close`` always leaves
no live worker threads or processes behind.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.base import StreamingConfig
from .shard import ShardSnapshot, StreamShard, make_shard

__all__ = [
    "BACKENDS",
    "ShardWorkerError",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]

BACKENDS: tuple[str, ...] = ("serial", "thread", "process")

# How long submit/sync/collect wait on a stalled worker before giving up.
# Generous: it only triggers when a worker neither progresses nor reports an
# error (e.g. it was killed externally), never on a merely busy worker.
_STALL_TIMEOUT = 120.0

ShardFactory = Callable[..., StreamShard]


def _require_state_count(got: int, expected: int) -> None:
    """Guard every backend's ``load_states``: zip truncation would silently
    leave surplus shards with fresh empty state."""
    if got != expected:
        raise ValueError(f"expected {expected} shard state trees, got {got}")


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the shard index and the worker traceback."""

    def __init__(self, shard_index: int, detail: str) -> None:
        super().__init__(f"shard {shard_index} worker failed: {detail}")
        self.shard_index = shard_index
        self.detail = detail


@dataclass
class _ShardSpec:
    """Construction recipe for one shard (picklable for process workers).

    ``factory`` receives ``(config, shard_index, seed, structure)`` plus
    ``nesting_depth`` as a keyword (custom factories may ignore it via
    ``**kwargs``).
    """

    config: StreamingConfig
    shard_index: int
    seed: int | None
    structure: str
    nesting_depth: int = 3
    factory: ShardFactory = make_shard

    def build(self) -> StreamShard:
        return self.factory(
            self.config,
            self.shard_index,
            self.seed,
            self.structure,
            nesting_depth=self.nesting_depth,
        )


class SerialBackend:
    """Inline execution: every shard runs in the caller's thread."""

    name = "serial"

    def __init__(self, specs: Sequence[_ShardSpec], queue_depth: int = 8) -> None:
        self._shards = [spec.build() for spec in specs]

    @property
    def shards(self) -> list[StreamShard]:
        """The in-process shard objects (available for serial and thread)."""
        return self._shards

    def submit(self, shard_index: int, block: np.ndarray) -> None:
        """Apply one insert block to a shard (inline, exceptions propagate)."""
        self._shards[shard_index].insert_batch(block)

    def sync(self) -> None:
        """Barrier: trivially satisfied, inserts are applied synchronously."""

    def collect(self, dimension: int) -> list[ShardSnapshot]:
        """Snapshot every shard's coreset and counters."""
        return [shard.snapshot(dimension) for shard in self._shards]

    def dump_states(self) -> list[dict]:
        """Checkpoint: capture every shard's full state tree."""
        return [shard.state_dict() for shard in self._shards]

    def load_states(self, states: list[dict]) -> None:
        """Restore: apply one state tree per shard."""
        _require_state_count(len(states), len(self._shards))
        for shard, state in zip(self._shards, states):
            shard.load_state(state)

    def stored_points(self) -> int:
        """Total weighted points held across the shards."""
        return sum(shard.stored_points() for shard in self._shards)

    def close(self) -> None:
        """Nothing to tear down (idempotent)."""


@dataclass
class _Request:
    """A control message awaiting a reply from a thread worker."""

    kind: str  # "collect" | "sync" | "state_dump" | "state_load"
    dimension: int = 1
    event: threading.Event = field(default_factory=threading.Event)
    snapshot: ShardSnapshot | None = None
    payload: dict | None = None  # state tree: reply of state_dump, input of state_load
    error: str | None = None


class _ShardThread(threading.Thread):
    """One worker thread owning one shard behind a bounded task queue."""

    _STOP = object()

    def __init__(self, spec: _ShardSpec, queue_depth: int) -> None:
        super().__init__(name=f"shard-{spec.shard_index}", daemon=True)
        self.shard = spec.build()
        self.shard_index = spec.shard_index
        self.tasks: queue.Queue = queue.Queue(maxsize=queue_depth)
        self.error: str | None = None

    def run(self) -> None:
        while True:
            task = self.tasks.get()
            if task is self._STOP:
                return
            if isinstance(task, _Request):
                if self.error is not None:
                    task.error = self.error
                    task.event.set()
                    continue
                try:
                    if task.kind == "collect":
                        task.snapshot = self.shard.snapshot(task.dimension)
                    elif task.kind == "state_dump":
                        task.payload = self.shard.state_dict()
                    elif task.kind == "state_load":
                        self.shard.load_state(task.payload)
                except BaseException:
                    self.error = traceback.format_exc()
                    task.error = self.error
                task.event.set()
                continue
            if self.error is not None:
                continue  # drain: keep the producer from blocking forever
            try:
                self.shard.insert_batch(task)
            except BaseException:
                self.error = traceback.format_exc()

    def put(self, item) -> None:
        """Enqueue with a stall deadline, surfacing worker errors early.

        A failed worker keeps draining its queue, so ``put`` normally
        succeeds and the error surfaces on the *next* call; the deadline only
        fires if the worker thread died outright.
        """
        deadline = time.monotonic() + _STALL_TIMEOUT
        while True:
            if self.error is not None and not isinstance(item, _Request):
                raise ShardWorkerError(self.shard_index, self.error)
            try:
                self.tasks.put(item, timeout=0.05)
                return
            except queue.Full:
                if not self.is_alive():
                    raise ShardWorkerError(
                        self.shard_index, self.error or "worker thread died"
                    ) from None
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"shard {self.shard_index} work queue stalled"
                    ) from None


class ThreadBackend:
    """One worker thread per shard behind bounded queues."""

    name = "thread"

    def __init__(self, specs: Sequence[_ShardSpec], queue_depth: int = 8) -> None:
        self._workers = [_ShardThread(spec, queue_depth) for spec in specs]
        for worker in self._workers:
            worker.start()
        self._closed = False

    @property
    def shards(self) -> list[StreamShard]:
        """The in-process shard objects (only safe to touch after ``sync``)."""
        return [worker.shard for worker in self._workers]

    def submit(self, shard_index: int, block: np.ndarray) -> None:
        """Enqueue one insert block for a shard (bounded, ordered)."""
        self._workers[shard_index].put(block)

    def _roundtrip(self, kind: str, dimension: int = 1) -> list[_Request]:
        requests = []
        for worker in self._workers:
            request = _Request(kind=kind, dimension=dimension)
            worker.put(request)
            requests.append(request)
        for worker, request in zip(self._workers, requests):
            if not request.event.wait(timeout=_STALL_TIMEOUT):
                raise RuntimeError(f"shard {worker.shard_index} barrier stalled")
            if request.error is not None:
                raise ShardWorkerError(worker.shard_index, request.error)
        return requests

    def sync(self) -> None:
        """Barrier: every queued insert has been applied when this returns."""
        self._roundtrip("sync")

    def collect(self, dimension: int) -> list[ShardSnapshot]:
        """Snapshot every shard (the snapshots are computed in parallel)."""
        requests = self._roundtrip("collect", dimension)
        return [request.snapshot for request in requests]  # type: ignore[misc]

    def dump_states(self) -> list[dict]:
        """Checkpoint: capture every shard's state tree (inside its worker)."""
        requests = self._roundtrip("state_dump")
        return [request.payload for request in requests]  # type: ignore[misc]

    def load_states(self, states: list[dict]) -> None:
        """Restore: ship one state tree to each worker and wait for all."""
        _require_state_count(len(states), len(self._workers))
        requests = []
        for worker, state in zip(self._workers, states):
            request = _Request(kind="state_load", payload=state)
            worker.put(request)
            requests.append(request)
        for worker, request in zip(self._workers, requests):
            if not request.event.wait(timeout=_STALL_TIMEOUT):
                raise RuntimeError(f"shard {worker.shard_index} restore stalled")
            if request.error is not None:
                raise ShardWorkerError(worker.shard_index, request.error)

    def stored_points(self) -> int:
        """Total weighted points held (after a barrier, read directly)."""
        self.sync()
        return sum(worker.shard.stored_points() for worker in self._workers)

    def close(self) -> None:
        """Stop and join every worker thread (idempotent).

        Workers drain their queue even after an error, so the stop sentinel
        normally lands immediately; a dead worker with a full queue is the
        only case where it cannot, and then there is nothing left to stop.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            deadline = time.monotonic() + _STALL_TIMEOUT
            while True:
                try:
                    worker.tasks.put(_ShardThread._STOP, timeout=0.05)
                    break
                except queue.Full:
                    if not worker.is_alive() or time.monotonic() > deadline:
                        break
        for worker in self._workers:
            worker.join(timeout=_STALL_TIMEOUT)


def _attach_shared_memory(name: str):
    """Attach an existing shared-memory slab (worker side).

    The creating (coordinator) process owns the segment's lifecycle and
    unlinks it at ``close``; workers only map it.  The resource tracker is
    shared across the fork/spawn tree, so the coordinator's registration
    covers the attachment — no extra bookkeeping here.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _process_worker(spec: _ShardSpec, task_queue, result_queue, free_slots) -> None:
    """Worker-process main loop: build the shard, consume tasks until stopped."""
    slabs: dict[str, object] = {}
    index = spec.shard_index
    try:
        shard = spec.build()
    except BaseException:
        result_queue.put(("error", index, traceback.format_exc()))
        return
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "stop":
                return
            try:
                if kind == "insert":
                    _, name, offset_rows, nrows, dimension, dtype_name = message
                    slab = slabs.get(name)
                    if slab is None:
                        slab = _attach_shared_memory(name)
                        slabs[name] = slab
                    dtype = np.dtype(dtype_name)
                    view = np.ndarray(
                        (nrows, dimension),
                        dtype=dtype,
                        buffer=slab.buf,  # type: ignore[attr-defined]
                        offset=offset_rows * dimension * dtype.itemsize,
                    )
                    # One copy out of the ring, then the slot is reusable; the
                    # shard may alias `block` in its buckets indefinitely.
                    block = np.array(view, dtype=dtype, copy=True)
                    free_slots.release()
                    shard.insert_batch(block)
                elif kind == "collect":
                    result_queue.put(("snapshot", index, shard.snapshot(message[1])))
                elif kind == "state_dump":
                    result_queue.put(("state", index, shard.state_dict()))
                elif kind == "state_load":
                    shard.load_state(message[1])
                    result_queue.put(("state_loaded", index))
                elif kind == "stats":
                    # Accounting only: must not touch the shard's coresets or
                    # sampling streams (keeps backends bit-equivalent).
                    result_queue.put(("stats", index, shard.stored_points()))
                elif kind == "sync":
                    result_queue.put(("synced", index))
            except BaseException:
                result_queue.put(("error", index, traceback.format_exc()))
                return
    finally:
        for slab in slabs.values():
            slab.close()  # type: ignore[attr-defined]


class _SlabRing:
    """Coordinator-side shared-memory ring of fixed-size insert slots.

    The slab stores rows in the stream's storage dtype: float32 streams halve
    the segment footprint and the per-batch copy bandwidth.
    """

    def __init__(
        self,
        context,
        shard_index: int,
        slot_rows: int,
        depth: int,
        dimension: int,
        dtype: np.dtype = np.dtype(np.float64),
    ) -> None:
        from multiprocessing import shared_memory

        self.slot_rows = slot_rows
        self.depth = depth
        self.dimension = dimension
        self.dtype = np.dtype(dtype)
        self._shm = shared_memory.SharedMemory(
            create=True, size=depth * slot_rows * dimension * self.dtype.itemsize
        )
        self.name = self._shm.name
        self._view = np.ndarray(
            (depth * slot_rows, dimension), dtype=self.dtype, buffer=self._shm.buf
        )
        self._next_slot = 0

    def write(self, chunk: np.ndarray) -> int:
        """Copy ``chunk`` into the next slot; returns the slot's row offset."""
        slot = self._next_slot
        self._next_slot = (slot + 1) % self.depth
        offset = slot * self.slot_rows
        self._view[offset : offset + chunk.shape[0]] = chunk
        return offset

    def destroy(self) -> None:
        """Release and unlink the segment (creator side)."""
        self._view = None  # drop the exported buffer before closing
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double close
            pass


class ProcessBackend:
    """One worker process per shard with shared-memory ndarray handoff."""

    name = "process"

    def __init__(
        self,
        specs: Sequence[_ShardSpec],
        queue_depth: int = 8,
        slot_rows: int | None = None,
        start_method: str | None = None,
    ) -> None:
        import multiprocessing as mp

        if start_method is None:
            # fork is dramatically cheaper and keeps test-local shard
            # factories picklable-by-inheritance; fall back where absent.
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        context = mp.get_context(start_method)
        self._context = context
        try:
            # Start the parent's resource tracker BEFORE forking workers so
            # every worker inherits it.  Otherwise each worker's slab attach
            # spawns a private tracker that reports the (parent-owned,
            # correctly unlinked) segment as leaked when the worker exits.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker API is semi-private
            pass
        self._queue_depth = queue_depth
        self._slot_rows = slot_rows
        self._results = context.Queue()
        self._specs = list(specs)
        self._tasks = []
        self._semaphores = []
        self._processes = []
        self._rings: list[_SlabRing | None] = [None] * len(self._specs)
        self._errors: dict[int, str] = {}
        self._closed = False
        for spec in self._specs:
            tasks = context.Queue()
            free_slots = context.Semaphore(queue_depth)
            process = context.Process(
                target=_process_worker,
                args=(spec, tasks, self._results, free_slots),
                daemon=True,
            )
            process.start()
            self._tasks.append(tasks)
            self._semaphores.append(free_slots)
            self._processes.append(process)

    @property
    def shards(self) -> list[StreamShard]:
        """Process workers own their shards; there is nothing to expose here."""
        raise RuntimeError(
            "shards live inside worker processes under backend='process'; "
            "use collect()/snapshots instead"
        )

    # -- error plumbing ------------------------------------------------------

    def _note(self, message) -> None:
        if message[0] == "error":
            self._errors[message[1]] = message[2]

    def _drain_errors(self) -> None:
        while True:
            try:
                self._note(self._results.get_nowait())
            except queue.Empty:
                return

    def _raise_if_failed(self) -> None:
        self._drain_errors()
        if self._errors:
            index = min(self._errors)
            raise ShardWorkerError(index, self._errors[index])

    # -- the backend contract ------------------------------------------------

    def submit(self, shard_index: int, block: np.ndarray) -> None:
        """Copy ``block`` into the shard's slab ring and announce the slots.

        Blocks longer than one slot are split into slot-sized chunks; the
        shard applies them in order, which yields the exact same shard state
        (batch ingestion is split-invariant).  Acquiring a free slot is what
        bounds the queue: the coordinator blocks here when the shard is
        ``queue_depth`` slots behind.
        """
        self._raise_if_failed()
        dimension = block.shape[1]
        ring = self._rings[shard_index]
        if ring is None:
            slot_rows = self._slot_rows or max(1024, min(block.shape[0], 65536))
            ring = _SlabRing(
                self._context,
                shard_index,
                slot_rows,
                self._queue_depth,
                dimension,
                dtype=block.dtype,
            )
            self._rings[shard_index] = ring
        if ring.dimension != dimension:
            raise ValueError(
                f"points dimension is {dimension}, expected {ring.dimension}"
            )
        if ring.dtype != block.dtype:
            raise ValueError(
                f"points dtype is {block.dtype}, expected {ring.dtype}"
            )
        for start in range(0, block.shape[0], ring.slot_rows):
            chunk = block[start : start + ring.slot_rows]
            self._acquire_slot(shard_index)
            offset_rows = ring.write(chunk)
            self._tasks[shard_index].put(
                ("insert", ring.name, offset_rows, chunk.shape[0], dimension, ring.dtype.name)
            )

    def _acquire_slot(self, shard_index: int) -> None:
        deadline = time.monotonic() + _STALL_TIMEOUT
        while not self._semaphores[shard_index].acquire(timeout=0.05):
            self._raise_if_failed()
            if not self._processes[shard_index].is_alive():
                raise ShardWorkerError(
                    shard_index, self._errors.get(shard_index, "worker process died")
                )
            if time.monotonic() > deadline:
                raise RuntimeError(f"shard {shard_index} slab ring stalled")

    def _await_replies(self, wanted: str) -> dict[int, object]:
        replies: dict[int, object] = {}
        deadline = time.monotonic() + _STALL_TIMEOUT
        while len(replies) < len(self._specs):
            missing = [
                spec.shard_index
                for spec in self._specs
                if spec.shard_index not in replies
            ]
            try:
                message = self._results.get(timeout=0.1)
            except queue.Empty:
                self._raise_if_failed()
                for index in missing:
                    if not self._processes[index].is_alive():
                        raise ShardWorkerError(
                            index, self._errors.get(index, "worker process died")
                        )
                if time.monotonic() > deadline:
                    raise RuntimeError(f"shards {missing} barrier stalled")
                continue
            self._note(message)
            if message[0] == "error":
                raise ShardWorkerError(message[1], message[2])
            if message[0] == wanted:
                replies[message[1]] = message[2] if len(message) > 2 else None
        return replies

    def sync(self) -> None:
        """Barrier: every announced insert slot has been consumed and applied."""
        self._raise_if_failed()
        for tasks in self._tasks:
            tasks.put(("sync",))
        self._await_replies("synced")

    def collect(self, dimension: int) -> list[ShardSnapshot]:
        """Gather one coreset snapshot per shard (computed in parallel)."""
        self._raise_if_failed()
        for tasks in self._tasks:
            tasks.put(("collect", dimension))
        replies = self._await_replies("snapshot")
        return [replies[spec.shard_index] for spec in self._specs]  # type: ignore[misc]

    def dump_states(self) -> list[dict]:
        """Checkpoint: fetch every worker's shard state tree (pickled once)."""
        self._raise_if_failed()
        for tasks in self._tasks:
            tasks.put(("state_dump",))
        replies = self._await_replies("state")
        return [replies[spec.shard_index] for spec in self._specs]  # type: ignore[misc]

    def load_states(self, states: list[dict]) -> None:
        """Restore: ship one state tree into each worker process."""
        _require_state_count(len(states), len(self._specs))
        self._raise_if_failed()
        for tasks, state in zip(self._tasks, states):
            tasks.put(("state_load", state))
        self._await_replies("state_loaded")

    def stored_points(self) -> int:
        """Total weighted points held across the worker processes."""
        self._raise_if_failed()
        for tasks in self._tasks:
            tasks.put(("stats",))
        replies = self._await_replies("stats")
        return sum(int(value) for value in replies.values())

    def close(self) -> None:
        """Stop workers, join them, and unlink every shared-memory slab.

        Idempotent, and guaranteed to leave no live worker processes: a
        worker that does not exit within the stall timeout is terminated.
        """
        if self._closed:
            return
        self._closed = True
        for process, tasks in zip(self._processes, self._tasks):
            if process.is_alive():
                try:
                    tasks.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover - closed queue
                    pass
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
        for ring in self._rings:
            if ring is not None:
                ring.destroy()
        self._rings = [None] * len(self._specs)
        for tasks in self._tasks:
            tasks.close()
            tasks.cancel_join_thread()
        self._results.close()
        self._results.cancel_join_thread()


def make_backend(
    name: str,
    specs: Sequence[_ShardSpec],
    queue_depth: int = 8,
    slot_rows: int | None = None,
    start_method: str | None = None,
):
    """Instantiate an executor backend by name (see :data:`BACKENDS`)."""
    if name == "serial":
        return SerialBackend(specs, queue_depth=queue_depth)
    if name == "thread":
        return ThreadBackend(specs, queue_depth=queue_depth)
    if name == "process":
        return ProcessBackend(
            specs,
            queue_depth=queue_depth,
            slot_rows=slot_rows,
            start_method=start_method,
        )
    raise ValueError(f"unknown backend {name!r}; available: {BACKENDS}")
