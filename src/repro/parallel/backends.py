"""Executor backends for the sharded ingestion engine.

Three interchangeable executors implement the same small contract —
``submit`` per-shard insert blocks (ordered, bounded), ``sync`` to a barrier,
``collect`` per-shard coreset snapshots, ``dump_states``/``load_states`` for
checkpoint/restore of full shard state, ``close`` idempotently:

* :class:`SerialBackend` — shards run inline in the caller's thread.  Fully
  deterministic, zero overhead; the debugging/equivalence reference and the
  semantics the simulation-era ``DistributedCoordinator`` had.
* :class:`ThreadBackend` — one worker thread per shard, each behind a bounded
  :class:`queue.Queue`.  Insert blocks are handed over by reference (zero
  copy); the vectorized hot loops (GEMM, reductions, sampling) release the
  GIL inside numpy, so shard merges overlap on multi-core machines.
* :class:`ProcessBackend` — one worker process per shard.  Point batches are
  copied into a per-shard shared-memory slab ring and announced with a tiny
  ``(slab, slot, rows)`` message, so ndarray payloads are **never pickled**;
  a semaphore over the ring's free slots is what bounds the work queue.
  Only coreset snapshots (``m`` weighted points) travel back, over one
  reply pipe per worker — never a queue shared across workers, whose
  single write lock a killed worker could leave held forever.

Worker failures never hang the coordinator: a raised exception inside a shard
is recorded (with its traceback) and re-raised as :class:`ShardWorkerError`
at the next ``submit``/``sync``/``collect`` call, and ``close`` always leaves
no live worker threads or processes behind.

Since the elastic-sharding work the contract also has per-shard control ops —
``dump_state(i)``/``load_state(i, state)`` (single-shard checkpoint
sub-snapshots), ``adopt(i, payload)`` (hand a shard an inherited coreset
piece during reshard/migration), and ``restart_shard(i)`` (tear down one
failed worker and start a fresh one from the original spec; the engine's
recovery supervisor then restores state and replays the lost queue tail).
Process-backend control replies are tagged with a per-op sequence number so
replies from a pre-restart worker incarnation can never satisfy a later
barrier.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from multiprocessing import connection
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.base import StreamingConfig
from .shard import ShardSnapshot, StreamShard, make_shard

__all__ = [
    "BACKENDS",
    "ShardWorkerError",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]

BACKENDS: tuple[str, ...] = ("serial", "thread", "process")

# How long submit/sync/collect wait on a stalled worker before giving up.
# Generous: it only triggers when a worker neither progresses nor reports an
# error (e.g. it was killed externally), never on a merely busy worker.
_STALL_TIMEOUT = 120.0

ShardFactory = Callable[..., StreamShard]


def _require_state_count(got: int, expected: int) -> None:
    """Guard every backend's ``load_states``: zip truncation would silently
    leave surplus shards with fresh empty state."""
    if got != expected:
        raise ValueError(f"expected {expected} shard state trees, got {got}")


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the shard index and the worker traceback."""

    def __init__(self, shard_index: int, detail: str) -> None:
        super().__init__(f"shard {shard_index} worker failed: {detail}")
        self.shard_index = shard_index
        self.detail = detail


def _apply_adopt(shard: StreamShard, payload: dict) -> None:
    """Apply one ``adopt`` control payload to a shard (shared by all backends)."""
    from ..coreset.bucket import WeightedPointSet

    piece = WeightedPointSet(points=payload["points"], weights=payload["weights"])
    shard.adopt(
        piece, int(payload["represented"]), reset=bool(payload.get("reset", False))
    )


@dataclass
class _ShardSpec:
    """Construction recipe for one shard (picklable for process workers).

    ``factory`` receives ``(config, shard_index, seed, structure)`` plus
    ``nesting_depth`` as a keyword (custom factories may ignore it via
    ``**kwargs``).
    """

    config: StreamingConfig
    shard_index: int
    seed: int | None
    structure: str
    nesting_depth: int = 3
    factory: ShardFactory = make_shard

    def build(self) -> StreamShard:
        return self.factory(
            self.config,
            self.shard_index,
            self.seed,
            self.structure,
            nesting_depth=self.nesting_depth,
        )


class SerialBackend:
    """Inline execution: every shard runs in the caller's thread."""

    name = "serial"

    def __init__(self, specs: Sequence[_ShardSpec], queue_depth: int = 8) -> None:
        self._specs = list(specs)
        self._shards = [spec.build() for spec in self._specs]

    @property
    def shards(self) -> list[StreamShard]:
        """The in-process shard objects (available for serial and thread)."""
        return self._shards

    def submit(self, shard_index: int, block: np.ndarray) -> None:
        """Apply one insert block to a shard (inline, exceptions propagate)."""
        self._shards[shard_index].insert_batch(block)

    def sync(self) -> None:
        """Barrier: trivially satisfied, inserts are applied synchronously."""

    def collect(self, dimension: int) -> list[ShardSnapshot]:
        """Snapshot every shard's coreset and counters."""
        return [shard.snapshot(dimension) for shard in self._shards]

    def dump_states(self) -> list[dict]:
        """Checkpoint: capture every shard's full state tree."""
        return [shard.state_dict() for shard in self._shards]

    def load_states(self, states: list[dict]) -> None:
        """Restore: apply one state tree per shard."""
        _require_state_count(len(states), len(self._shards))
        for shard, state in zip(self._shards, states):
            shard.load_state(state)

    def dump_state(self, shard_index: int) -> dict:
        """Checkpoint one shard's state tree."""
        return self._shards[shard_index].state_dict()

    def load_state(self, shard_index: int, state: dict) -> None:
        """Restore one shard from its state tree."""
        self._shards[shard_index].load_state(state)

    def adopt(self, shard_index: int, payload: dict) -> None:
        """Hand one shard an inherited coreset piece (reshard/migration)."""
        _apply_adopt(self._shards[shard_index], payload)

    def restart_shard(self, shard_index: int) -> None:
        """Rebuild one shard fresh from its spec (inline; nothing to kill)."""
        self._shards[shard_index] = self._specs[shard_index].build()

    def stored_points(self) -> int:
        """Total weighted points held across the shards."""
        return sum(shard.stored_points() for shard in self._shards)

    def close(self) -> None:
        """Nothing to tear down (idempotent)."""


@dataclass
class _Request:
    """A control message awaiting a reply from a thread worker."""

    kind: str  # "collect" | "sync" | "state_dump" | "state_load" | "adopt"
    dimension: int = 1
    event: threading.Event = field(default_factory=threading.Event)
    snapshot: ShardSnapshot | None = None
    payload: dict | None = None  # reply of state_dump; input of state_load/adopt
    error: str | None = None


class _ShardThread(threading.Thread):
    """One worker thread owning one shard behind a bounded task queue."""

    _STOP = object()

    def __init__(self, spec: _ShardSpec, queue_depth: int) -> None:
        super().__init__(name=f"shard-{spec.shard_index}", daemon=True)
        self.shard = spec.build()
        self.shard_index = spec.shard_index
        self.tasks: queue.Queue = queue.Queue(maxsize=queue_depth)
        self.error: str | None = None

    def run(self) -> None:
        while True:
            task = self.tasks.get()
            if task is self._STOP:
                return
            if isinstance(task, _Request):
                if self.error is not None:
                    task.error = self.error
                    task.event.set()
                    continue
                try:
                    if task.kind == "collect":
                        task.snapshot = self.shard.snapshot(task.dimension)
                    elif task.kind == "state_dump":
                        task.payload = self.shard.state_dict()
                    elif task.kind == "state_load":
                        self.shard.load_state(task.payload)
                    elif task.kind == "adopt":
                        _apply_adopt(self.shard, task.payload)
                except BaseException:
                    self.error = traceback.format_exc()
                    task.error = self.error
                task.event.set()
                continue
            if self.error is not None:
                continue  # drain: keep the producer from blocking forever
            try:
                self.shard.insert_batch(task)
            except BaseException:
                self.error = traceback.format_exc()

    def put(self, item) -> None:
        """Enqueue with a stall deadline, surfacing worker errors early.

        A failed worker keeps draining its queue, so ``put`` normally
        succeeds and the error surfaces on the *next* call; the deadline only
        fires if the worker thread died outright.
        """
        deadline = time.monotonic() + _STALL_TIMEOUT
        while True:
            if self.error is not None and not isinstance(item, _Request):
                raise ShardWorkerError(self.shard_index, self.error)
            try:
                self.tasks.put(item, timeout=0.05)
                return
            except queue.Full:
                if not self.is_alive():
                    raise ShardWorkerError(
                        self.shard_index, self.error or "worker thread died"
                    ) from None
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"shard {self.shard_index} work queue stalled"
                    ) from None


class ThreadBackend:
    """One worker thread per shard behind bounded queues."""

    name = "thread"

    def __init__(self, specs: Sequence[_ShardSpec], queue_depth: int = 8) -> None:
        self._specs = list(specs)
        self._queue_depth = queue_depth
        self._workers = [_ShardThread(spec, queue_depth) for spec in self._specs]
        for worker in self._workers:
            worker.start()
        self._closed = False

    @property
    def shards(self) -> list[StreamShard]:
        """The in-process shard objects (only safe to touch after ``sync``)."""
        return [worker.shard for worker in self._workers]

    def submit(self, shard_index: int, block: np.ndarray) -> None:
        """Enqueue one insert block for a shard (bounded, ordered)."""
        self._workers[shard_index].put(block)

    def _roundtrip(self, kind: str, dimension: int = 1) -> list[_Request]:
        requests = []
        for worker in self._workers:
            request = _Request(kind=kind, dimension=dimension)
            worker.put(request)
            requests.append(request)
        for worker, request in zip(self._workers, requests):
            if not request.event.wait(timeout=_STALL_TIMEOUT):
                raise RuntimeError(f"shard {worker.shard_index} barrier stalled")
            if request.error is not None:
                raise ShardWorkerError(worker.shard_index, request.error)
        return requests

    def sync(self) -> None:
        """Barrier: every queued insert has been applied when this returns."""
        self._roundtrip("sync")

    def collect(self, dimension: int) -> list[ShardSnapshot]:
        """Snapshot every shard (the snapshots are computed in parallel)."""
        requests = self._roundtrip("collect", dimension)
        return [request.snapshot for request in requests]  # type: ignore[misc]

    def _roundtrip_one(
        self, shard_index: int, kind: str, dimension: int = 1, payload: dict | None = None
    ) -> _Request:
        worker = self._workers[shard_index]
        request = _Request(kind=kind, dimension=dimension, payload=payload)
        worker.put(request)
        if not request.event.wait(timeout=_STALL_TIMEOUT):
            raise RuntimeError(f"shard {shard_index} barrier stalled")
        if request.error is not None:
            raise ShardWorkerError(shard_index, request.error)
        return request

    def dump_states(self) -> list[dict]:
        """Checkpoint: capture every shard's state tree (inside its worker)."""
        requests = self._roundtrip("state_dump")
        return [request.payload for request in requests]  # type: ignore[misc]

    def dump_state(self, shard_index: int) -> dict:
        """Checkpoint one shard's state tree (a single-worker barrier)."""
        return self._roundtrip_one(shard_index, "state_dump").payload  # type: ignore[return-value]

    def load_state(self, shard_index: int, state: dict) -> None:
        """Restore one shard from its state tree."""
        self._roundtrip_one(shard_index, "state_load", payload=state)

    def adopt(self, shard_index: int, payload: dict) -> None:
        """Hand one shard an inherited coreset piece (reshard/migration)."""
        self._roundtrip_one(shard_index, "adopt", payload=payload)

    def restart_shard(self, shard_index: int) -> None:
        """Replace one worker thread with a fresh one built from its spec.

        The old worker keeps draining its (now orphaned) queue until the stop
        sentinel lands, so an errored worker exits promptly; its per-request
        events were all set when it errored, so nothing can block on it.
        """
        old = self._workers[shard_index]
        deadline = time.monotonic() + _STALL_TIMEOUT
        while True:
            try:
                old.tasks.put(_ShardThread._STOP, timeout=0.05)
                break
            except queue.Full:  # pragma: no cover - errored workers drain fast
                if not old.is_alive() or time.monotonic() > deadline:
                    break
        worker = _ShardThread(self._specs[shard_index], self._queue_depth)
        worker.start()
        self._workers[shard_index] = worker
        old.join(timeout=_STALL_TIMEOUT)

    def load_states(self, states: list[dict]) -> None:
        """Restore: ship one state tree to each worker and wait for all."""
        _require_state_count(len(states), len(self._workers))
        requests = []
        for worker, state in zip(self._workers, states):
            request = _Request(kind="state_load", payload=state)
            worker.put(request)
            requests.append(request)
        for worker, request in zip(self._workers, requests):
            if not request.event.wait(timeout=_STALL_TIMEOUT):
                raise RuntimeError(f"shard {worker.shard_index} restore stalled")
            if request.error is not None:
                raise ShardWorkerError(worker.shard_index, request.error)

    def stored_points(self) -> int:
        """Total weighted points held (after a barrier, read directly)."""
        self.sync()
        return sum(worker.shard.stored_points() for worker in self._workers)

    def close(self) -> None:
        """Stop and join every worker thread (idempotent).

        Workers drain their queue even after an error, so the stop sentinel
        normally lands immediately; a dead worker with a full queue is the
        only case where it cannot, and then there is nothing left to stop.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            deadline = time.monotonic() + _STALL_TIMEOUT
            while True:
                try:
                    worker.tasks.put(_ShardThread._STOP, timeout=0.05)
                    break
                except queue.Full:
                    if not worker.is_alive() or time.monotonic() > deadline:
                        break
        for worker in self._workers:
            worker.join(timeout=_STALL_TIMEOUT)


def _attach_shared_memory(name: str):
    """Attach an existing shared-memory slab (worker side).

    The creating (coordinator) process owns the segment's lifecycle and
    unlinks it at ``close``; workers only map it.  The resource tracker is
    shared across the fork/spawn tree, so the coordinator's registration
    covers the attachment — no extra bookkeeping here.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _process_worker(spec: _ShardSpec, task_queue, result_conn, free_slots) -> None:
    """Worker-process main loop: build the shard, consume tasks until stopped.

    Control messages carry a coordinator-issued sequence number that is
    echoed in every reply (insert messages carry none; they never reply).
    The coordinator drops replies whose sequence number does not match the
    op in flight, so a restarted shard's predecessor can never satisfy a
    barrier with stale data.

    Replies travel over a per-worker pipe, NOT a queue shared across
    workers: a shared queue serializes writers through one cross-process
    lock, and a worker killed inside that critical section (crash, SIGKILL,
    fault-injection `terminate()`) would leave the lock held forever,
    wedging every *other* shard's replies.  With one pipe per worker a
    kill at any instant can only corrupt that worker's own channel, which
    ``restart_shard`` replaces wholesale.  Sends happen from this (main)
    thread — no feeder thread, so there is no window where a reply has
    been delivered but a lock is still held.
    """
    slabs: dict[str, object] = {}
    index = spec.shard_index
    try:
        shard = spec.build()
    except BaseException:
        result_conn.send(("error", index, -1, traceback.format_exc()))
        return
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "stop":
                return
            seq = -1 if kind == "insert" else message[1]
            try:
                if kind == "insert":
                    _, name, offset_rows, nrows, dimension, dtype_name = message
                    slab = slabs.get(name)
                    if slab is None:
                        slab = _attach_shared_memory(name)
                        slabs[name] = slab
                    dtype = np.dtype(dtype_name)
                    view = np.ndarray(
                        (nrows, dimension),
                        dtype=dtype,
                        buffer=slab.buf,  # type: ignore[attr-defined]
                        offset=offset_rows * dimension * dtype.itemsize,
                    )
                    # One copy out of the ring, then the slot is reusable; the
                    # shard may alias `block` in its buckets indefinitely.
                    block = np.array(view, dtype=dtype, copy=True)
                    free_slots.release()
                    shard.insert_batch(block)
                elif kind == "collect":
                    result_conn.send(
                        ("snapshot", index, seq, shard.snapshot(message[2]))
                    )
                elif kind == "state_dump":
                    result_conn.send(("state", index, seq, shard.state_dict()))
                elif kind == "state_load":
                    shard.load_state(message[2])
                    result_conn.send(("state_loaded", index, seq, None))
                elif kind == "adopt":
                    _apply_adopt(shard, message[2])
                    result_conn.send(("adopted", index, seq, None))
                elif kind == "stats":
                    # Accounting only: must not touch the shard's coresets or
                    # sampling streams (keeps backends bit-equivalent).
                    result_conn.send(("stats", index, seq, shard.stored_points()))
                elif kind == "sync":
                    result_conn.send(("synced", index, seq, None))
            except BaseException:
                result_conn.send(("error", index, seq, traceback.format_exc()))
                return
    finally:
        result_conn.close()
        for slab in slabs.values():
            slab.close()  # type: ignore[attr-defined]


class _SlabRing:
    """Coordinator-side shared-memory ring of fixed-size insert slots.

    The slab stores rows in the stream's storage dtype: float32 streams halve
    the segment footprint and the per-batch copy bandwidth.
    """

    def __init__(
        self,
        context,
        shard_index: int,
        slot_rows: int,
        depth: int,
        dimension: int,
        dtype: np.dtype = np.dtype(np.float64),
    ) -> None:
        from multiprocessing import shared_memory

        self.slot_rows = slot_rows
        self.depth = depth
        self.dimension = dimension
        self.dtype = np.dtype(dtype)
        self._shm = shared_memory.SharedMemory(
            create=True, size=depth * slot_rows * dimension * self.dtype.itemsize
        )
        self.name = self._shm.name
        self._view = np.ndarray(
            (depth * slot_rows, dimension), dtype=self.dtype, buffer=self._shm.buf
        )
        self._next_slot = 0

    def write(self, chunk: np.ndarray) -> int:
        """Copy ``chunk`` into the next slot; returns the slot's row offset."""
        slot = self._next_slot
        self._next_slot = (slot + 1) % self.depth
        offset = slot * self.slot_rows
        self._view[offset : offset + chunk.shape[0]] = chunk
        return offset

    def destroy(self) -> None:
        """Release and unlink the segment (creator side)."""
        self._view = None  # drop the exported buffer before closing
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double close
            pass


class ProcessBackend:
    """One worker process per shard with shared-memory ndarray handoff."""

    name = "process"

    def __init__(
        self,
        specs: Sequence[_ShardSpec],
        queue_depth: int = 8,
        slot_rows: int | None = None,
        start_method: str | None = None,
    ) -> None:
        import multiprocessing as mp

        if start_method is None:
            # fork is dramatically cheaper and keeps test-local shard
            # factories picklable-by-inheritance; fall back where absent.
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        context = mp.get_context(start_method)
        self._context = context
        try:
            # Start the parent's resource tracker BEFORE forking workers so
            # every worker inherits it.  Otherwise each worker's slab attach
            # spawns a private tracker that reports the (parent-owned,
            # correctly unlinked) segment as leaked when the worker exits.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker API is semi-private
            pass
        self._queue_depth = queue_depth
        self._slot_rows = slot_rows
        self._specs = list(specs)
        self._tasks = []
        self._semaphores = []
        self._processes = []
        # One reply pipe per worker (parent keeps the read end).  A queue
        # shared across workers funnels every reply through one
        # cross-process write lock, so a worker killed mid-send poisons
        # the lock and stalls all OTHER shards' barriers; a per-worker
        # pipe confines kill-at-any-instant damage to the dead worker's
        # own channel, which restart_shard discards.
        self._result_conns: list = []
        self._rings: list[_SlabRing | None] = [None] * len(self._specs)
        self._errors: dict[int, str] = {}
        self._op_seq = 0
        self._closed = False
        for spec in self._specs:
            tasks, free_slots, conn, process = self._start_worker(spec)
            self._tasks.append(tasks)
            self._semaphores.append(free_slots)
            self._result_conns.append(conn)
            self._processes.append(process)

    def _start_worker(self, spec: _ShardSpec):
        tasks = self._context.Queue()
        free_slots = self._context.Semaphore(self._queue_depth)
        recv_conn, send_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_process_worker,
            args=(spec, tasks, send_conn, free_slots),
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the write end so a dead worker reads
        # as EOF instead of a silent hang.
        send_conn.close()
        return tasks, free_slots, recv_conn, process

    def _next_seq(self) -> int:
        self._op_seq += 1
        return self._op_seq

    @property
    def shards(self) -> list[StreamShard]:
        """Process workers own their shards; there is nothing to expose here."""
        raise RuntimeError(
            "shards live inside worker processes under backend='process'; "
            "use collect()/snapshots instead"
        )

    # -- error plumbing ------------------------------------------------------

    def _note(self, message) -> None:
        if message[0] == "error":
            self._errors[message[1]] = message[3]

    def _drain_errors(self) -> None:
        for index, conn in enumerate(self._result_conns):
            while conn is not None and conn.poll(0):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Worker died; whatever it sent before dying has been
                    # received above.  Retire the conn so an EOF-ready pipe
                    # cannot spin poll().
                    conn.close()
                    self._result_conns[index] = None
                    break
                self._note(message)

    def _raise_if_failed(self) -> None:
        self._drain_errors()
        if self._errors:
            index = min(self._errors)
            raise ShardWorkerError(index, self._errors[index])

    # -- the backend contract ------------------------------------------------

    def submit(self, shard_index: int, block: np.ndarray) -> None:
        """Copy ``block`` into the shard's slab ring and announce the slots.

        Blocks longer than one slot are split into slot-sized chunks; the
        shard applies them in order, which yields the exact same shard state
        (batch ingestion is split-invariant).  Acquiring a free slot is what
        bounds the queue: the coordinator blocks here when the shard is
        ``queue_depth`` slots behind.
        """
        self._raise_if_failed()
        dimension = block.shape[1]
        ring = self._rings[shard_index]
        if ring is None:
            slot_rows = self._slot_rows or max(1024, min(block.shape[0], 65536))
            ring = _SlabRing(
                self._context,
                shard_index,
                slot_rows,
                self._queue_depth,
                dimension,
                dtype=block.dtype,
            )
            self._rings[shard_index] = ring
        if ring.dimension != dimension:
            raise ValueError(
                f"points dimension is {dimension}, expected {ring.dimension}"
            )
        if ring.dtype != block.dtype:
            raise ValueError(
                f"points dtype is {block.dtype}, expected {ring.dtype}"
            )
        for start in range(0, block.shape[0], ring.slot_rows):
            chunk = block[start : start + ring.slot_rows]
            self._acquire_slot(shard_index)
            offset_rows = ring.write(chunk)
            self._tasks[shard_index].put(
                ("insert", ring.name, offset_rows, chunk.shape[0], dimension, ring.dtype.name)
            )

    def _acquire_slot(self, shard_index: int) -> None:
        deadline = time.monotonic() + _STALL_TIMEOUT
        while not self._semaphores[shard_index].acquire(timeout=0.05):
            self._raise_if_failed()
            if not self._processes[shard_index].is_alive():
                raise ShardWorkerError(
                    shard_index, self._errors.get(shard_index, "worker process died")
                )
            if time.monotonic() > deadline:
                raise RuntimeError(f"shard {shard_index} slab ring stalled")

    def _await_replies(
        self, wanted: str, seq: int, indices: Sequence[int] | None = None
    ) -> dict[int, object]:
        targets = (
            [spec.shard_index for spec in self._specs]
            if indices is None
            else list(indices)
        )
        replies: dict[int, object] = {}
        deadline = time.monotonic() + _STALL_TIMEOUT
        while len(replies) < len(targets):
            missing = [index for index in targets if index not in replies]
            live = {
                index: conn
                for index, conn in enumerate(self._result_conns)
                if conn is not None
            }
            ready = connection.wait(list(live.values()), timeout=0.1) if live else []
            if not ready:
                self._raise_if_failed()
                for index in missing:
                    if not self._processes[index].is_alive():
                        raise ShardWorkerError(
                            index, self._errors.get(index, "worker process died")
                        )
                if time.monotonic() > deadline:
                    raise RuntimeError(f"shards {missing} barrier stalled")
                continue
            for conn in ready:
                index = next(i for i, c in live.items() if c is conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Dead worker (possibly killed mid-send, leaving a torn
                    # message in its own pipe — never anyone else's).  The
                    # liveness check above surfaces it as ShardWorkerError.
                    conn.close()
                    self._result_conns[index] = None
                    continue
                self._note(message)
                if message[0] == "error":
                    raise ShardWorkerError(message[1], message[3])
                # Replies from a superseded op (or a pre-restart worker
                # incarnation) carry an older seq and are discarded here.
                if message[0] == wanted and message[2] == seq and message[1] in missing:
                    replies[message[1]] = message[3]
        return replies

    def sync(self) -> None:
        """Barrier: every announced insert slot has been consumed and applied."""
        self._raise_if_failed()
        seq = self._next_seq()
        for tasks in self._tasks:
            tasks.put(("sync", seq))
        self._await_replies("synced", seq)

    def collect(self, dimension: int) -> list[ShardSnapshot]:
        """Gather one coreset snapshot per shard (computed in parallel)."""
        self._raise_if_failed()
        seq = self._next_seq()
        for tasks in self._tasks:
            tasks.put(("collect", seq, dimension))
        replies = self._await_replies("snapshot", seq)
        return [replies[spec.shard_index] for spec in self._specs]  # type: ignore[misc]

    def dump_states(self) -> list[dict]:
        """Checkpoint: fetch every worker's shard state tree (pickled once)."""
        self._raise_if_failed()
        seq = self._next_seq()
        for tasks in self._tasks:
            tasks.put(("state_dump", seq))
        replies = self._await_replies("state", seq)
        return [replies[spec.shard_index] for spec in self._specs]  # type: ignore[misc]

    def load_states(self, states: list[dict]) -> None:
        """Restore: ship one state tree into each worker process."""
        _require_state_count(len(states), len(self._specs))
        self._raise_if_failed()
        seq = self._next_seq()
        for tasks, state in zip(self._tasks, states):
            tasks.put(("state_load", seq, state))
        self._await_replies("state_loaded", seq)

    def dump_state(self, shard_index: int) -> dict:
        """Checkpoint one worker's shard state tree (single-shard barrier)."""
        self._raise_if_failed()
        seq = self._next_seq()
        self._tasks[shard_index].put(("state_dump", seq))
        return self._await_replies("state", seq, indices=(shard_index,))[shard_index]  # type: ignore[return-value]

    def load_state(self, shard_index: int, state: dict) -> None:
        """Restore one worker's shard from its state tree."""
        self._raise_if_failed()
        seq = self._next_seq()
        self._tasks[shard_index].put(("state_load", seq, state))
        self._await_replies("state_loaded", seq, indices=(shard_index,))

    def adopt(self, shard_index: int, payload: dict) -> None:
        """Hand one worker an inherited coreset piece (reshard/migration)."""
        self._raise_if_failed()
        seq = self._next_seq()
        self._tasks[shard_index].put(("adopt", seq, payload))
        self._await_replies("adopted", seq, indices=(shard_index,))

    def restart_shard(self, shard_index: int) -> None:
        """Replace one dead/failed worker process with a fresh incarnation.

        The old process is terminated, its slab ring destroyed (undelivered
        slots die with the worker — the engine's recovery journal replays
        them), pending result messages are drained, and the shard's recorded
        error is cleared.  The fresh worker starts from the original spec;
        the caller restores state and replays the lost tail.
        """
        process = self._processes[shard_index]
        if process.is_alive():
            process.terminate()
        process.join(timeout=10.0)
        self._drain_errors()
        self._errors.pop(shard_index, None)
        ring = self._rings[shard_index]
        if ring is not None:
            ring.destroy()
            self._rings[shard_index] = None
        old_tasks = self._tasks[shard_index]
        old_conn = self._result_conns[shard_index]
        tasks, free_slots, conn, fresh = self._start_worker(self._specs[shard_index])
        self._tasks[shard_index] = tasks
        self._semaphores[shard_index] = free_slots
        self._result_conns[shard_index] = conn
        self._processes[shard_index] = fresh
        old_tasks.close()
        old_tasks.cancel_join_thread()
        if old_conn is not None:
            old_conn.close()

    def stored_points(self) -> int:
        """Total weighted points held across the worker processes."""
        self._raise_if_failed()
        seq = self._next_seq()
        for tasks in self._tasks:
            tasks.put(("stats", seq))
        replies = self._await_replies("stats", seq)
        return sum(int(value) for value in replies.values())

    def close(self) -> None:
        """Stop workers, join them, and unlink every shared-memory slab.

        Idempotent, and guaranteed to leave no live worker processes: a
        worker that does not exit within the stall timeout is terminated.
        """
        if self._closed:
            return
        self._closed = True
        for process, tasks in zip(self._processes, self._tasks):
            if process.is_alive():
                try:
                    tasks.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover - closed queue
                    pass
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
        for ring in self._rings:
            if ring is not None:
                ring.destroy()
        self._rings = [None] * len(self._specs)
        for tasks in self._tasks:
            tasks.close()
            tasks.cancel_join_thread()
        for conn in self._result_conns:
            if conn is not None:
                conn.close()


def make_backend(
    name: str,
    specs: Sequence[_ShardSpec],
    queue_depth: int = 8,
    slot_rows: int | None = None,
    start_method: str | None = None,
):
    """Instantiate an executor backend by name (see :data:`BACKENDS`)."""
    if name == "serial":
        return SerialBackend(specs, queue_depth=queue_depth)
    if name == "thread":
        return ThreadBackend(specs, queue_depth=queue_depth)
    if name == "process":
        return ProcessBackend(
            specs,
            queue_depth=queue_depth,
            slot_rows=slot_rows,
            start_method=start_method,
        )
    raise ValueError(f"unknown backend {name!r}; available: {BACKENDS}")
