"""Routing policies and per-shard seed derivation for sharded ingestion.

Routing decides which shard consumes each stream point.  All three policies
are coordinator-side and fully vectorized, so a batch is partitioned into
per-shard blocks with zero per-point Python work:

* ``round_robin`` — load balancing; shard ``s`` receives the strided slice
  ``arr[offset_s :: num_shards]`` of every batch (original order preserved);
* ``hash`` — deterministic partitioning by point *content* via
  :func:`stable_row_hash`, so the assignment is reproducible across runs and
  processes and invariant to how the stream is split into batches;
* ``random`` — seeded random assignment with one vectorized draw per batch.

Shard-local randomness is derived through :func:`spawn_shard_seeds`, which
uses :class:`numpy.random.SeedSequence` spawn keys: shard ``i`` gets the same
independent stream no matter how many shards exist, and seeds can never
collide across shards or with nearby coordinator seeds (the historical
``seed + shard_index`` scheme made coordinator ``seed=0`` shard 1 share its
stream with coordinator ``seed=1`` shard 0).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

__all__ = [
    "RoutingPolicy",
    "ROUTING_POLICIES",
    "stable_row_hash",
    "spawn_shard_seeds",
    "Router",
    "RoundRobinRouter",
    "HashRouter",
    "RandomRouter",
    "make_router",
]

RoutingPolicy = Literal["round_robin", "hash", "random"]

ROUTING_POLICIES: tuple[str, ...] = ("round_robin", "hash", "random")

# Offset applied to the coordinator seed for the random-routing generator so
# routing draws never reuse the shards' sampling streams (pre-dates the
# SeedSequence scheme; kept so random routing decisions stay reproducible
# against the simulation-era DistributedCoordinator).
_ROUTE_SEED_OFFSET = 10_007

# Virtual buckets per shard for hash routing.  The identity-mod default table
# makes `table[h % (n*slots)] == h % n`, so the slot count is invisible until
# a migration moves buckets; 16 gives migrations ~6% granularity per slot.
_VIRTUAL_SLOTS_PER_SHARD = 16

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def stable_row_hash(points: np.ndarray) -> np.ndarray:
    """Process-stable 64-bit content hash of each row, fully vectorized.

    Each float64 entry is viewed as its raw 64 bits, passed through the
    splitmix64 finalizer, and folded across columns FNV-style.  Unlike
    ``hash(row.tobytes())`` (the original implementation), the result does
    not depend on ``PYTHONHASHSEED`` — identical rows hash identically in
    every process and on every run — and the only Python-level loop is one
    iteration per *column*.
    """
    arr = np.ascontiguousarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"points must be 1-D or 2-D, got shape {arr.shape}")
    bits = arr.view(np.uint64)
    h = np.full(bits.shape[0], _FNV_OFFSET, dtype=np.uint64)
    for column in range(bits.shape[1]):
        x = bits[:, column].copy()
        x ^= x >> np.uint64(30)
        x *= _MIX_1
        x ^= x >> np.uint64(27)
        x *= _MIX_2
        x ^= x >> np.uint64(31)
        h ^= x
        h *= _FNV_PRIME
    return h


def spawn_shard_seeds(seed: int | None, num_shards: int) -> list[int | None]:
    """Derive one independent sampling seed per shard from the coordinator seed.

    Uses ``SeedSequence`` spawn keys, so shard ``i``'s seed depends only on
    ``(seed, i)`` — not on the total shard count — making per-shard results
    reproducible when the cluster is resized, and collision-free across both
    shards and neighbouring coordinator seeds.  ``None`` propagates (each
    shard draws fresh OS entropy).
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if seed is None:
        return [None] * num_shards
    children = np.random.SeedSequence(entropy=int(seed)).spawn(num_shards)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


class Router:
    """Base class: assigns stream points to ``num_shards`` shards.

    Routers are coordinator-side objects; they may carry state (the
    round-robin cursor, the random generator) and are therefore not shared
    between engines.
    """

    policy: str

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards

    def route_point(self, row: np.ndarray) -> int:
        """Shard index for a single point (consumes the same state as batches)."""
        raise NotImplementedError

    def split_batch(self, arr: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Partition a batch into ``(shard_index, block)`` pieces.

        Blocks preserve the arrival order of each shard's points and are
        views into ``arr`` whenever the policy allows (round-robin strides,
        boolean masks copy).  Only non-empty blocks are returned.
        """
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Checkpoint state of the router (empty for stateless policies)."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore router state from :meth:`state_dict` output."""

    def reassign(self, source: int, dest: int, fraction: float) -> int:
        """Shift a fraction of ``source``'s future routing share to ``dest``.

        Returns how many internal assignment slots moved.  The default is 0:
        round-robin and random routing balance load by construction, so a
        migration needs no routing change — only content-hash routing, whose
        assignment is pinned to point values, overrides this.
        """
        return 0

    def _blocks_from_assignments(
        self, arr: np.ndarray, assignments: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        blocks: list[tuple[int, np.ndarray]] = []
        for shard_index in range(self.num_shards):
            block = arr[assignments == shard_index]
            if block.shape[0]:
                blocks.append((shard_index, block))
        return blocks


class RoundRobinRouter(Router):
    """Cycle through the shards; batches become zero-copy strided slices."""

    policy = "round_robin"

    def __init__(self, num_shards: int) -> None:
        super().__init__(num_shards)
        self._next = 0

    def route_point(self, row: np.ndarray) -> int:
        """Next shard in the cycle (advances the shared cursor)."""
        index = self._next
        self._next = (self._next + 1) % self.num_shards
        return index

    def split_batch(self, arr: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Strided zero-copy slices: shard ``s`` gets ``arr[offset_s::num]``."""
        n = arr.shape[0]
        blocks: list[tuple[int, np.ndarray]] = []
        for shard_index in range(self.num_shards):
            offset = (shard_index - self._next) % self.num_shards
            block = arr[offset :: self.num_shards]
            if block.shape[0]:
                blocks.append((shard_index, block))
        self._next = (self._next + n) % self.num_shards
        return blocks

    def state_dict(self) -> dict:
        """Checkpoint state: the cycle cursor."""
        return {"next": self._next}

    def load_state(self, state: dict) -> None:
        """Restore the cycle cursor."""
        self._next = int(state["next"]) % self.num_shards


class HashRouter(Router):
    """Content-hash partitioning via :func:`stable_row_hash` and virtual buckets.

    The hash picks one of ``num_shards * _VIRTUAL_SLOTS_PER_SHARD`` virtual
    buckets; an assignment table maps virtual buckets to shards.  The default
    table is the identity-mod layout, under which ``table[h % (n*s)]`` equals
    the historical ``h % n`` — so a fresh router reproduces the pre-elastic
    assignment bit-for-bit, routing stays invariant to batch boundaries, and
    only :meth:`reassign` (shard migration) ever bends the map.
    """

    policy = "hash"

    def __init__(self, num_shards: int) -> None:
        super().__init__(num_shards)
        self._table = (
            np.arange(num_shards * _VIRTUAL_SLOTS_PER_SHARD, dtype=np.intp)
            % num_shards
        )

    def route_point(self, row: np.ndarray) -> int:
        """Shard keyed by the point's content hash through the bucket table."""
        bucket = int(stable_row_hash(row)[0] % np.uint64(self._table.shape[0]))
        return int(self._table[bucket])

    def split_batch(self, arr: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """One vectorized hash pass, then a boolean-mask block per shard."""
        buckets = (
            stable_row_hash(arr) % np.uint64(self._table.shape[0])
        ).astype(np.intp)
        return self._blocks_from_assignments(arr, self._table[buckets])

    def reassign(self, source: int, dest: int, fraction: float) -> int:
        """Move ``fraction`` of ``source``'s virtual buckets to ``dest``."""
        owned = np.flatnonzero(self._table == source)
        moved = min(int(np.ceil(owned.shape[0] * fraction)), owned.shape[0])
        if moved <= 0:
            return 0
        self._table[owned[:moved]] = dest
        return moved

    def state_dict(self) -> dict:
        """Checkpoint state: the virtual-bucket assignment table."""
        return {"table": self._table.tolist()}

    def load_state(self, state: dict) -> None:
        """Restore the table (pre-elastic checkpoints keep the identity map)."""
        table = state.get("table")
        if table is not None:
            self._table = np.asarray(table, dtype=np.intp)


class RandomRouter(Router):
    """Seeded random assignment; one vectorized draw per batch."""

    policy = "random"

    def __init__(self, num_shards: int, seed: int | None = None) -> None:
        super().__init__(num_shards)
        self._rng = np.random.default_rng(
            None if seed is None else seed + _ROUTE_SEED_OFFSET
        )

    def route_point(self, row: np.ndarray) -> int:
        """One seeded draw (consumes the same stream as batch draws)."""
        return int(self._rng.integers(0, self.num_shards))

    def split_batch(self, arr: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """One vectorized draw assigns the whole batch."""
        assignments = self._rng.integers(0, self.num_shards, size=arr.shape[0])
        return self._blocks_from_assignments(arr, assignments)

    def state_dict(self) -> dict:
        """Checkpoint state: the routing generator's position."""
        return {"rng": self._rng.bit_generator.state}

    def load_state(self, state: dict) -> None:
        """Restore the routing generator's position."""
        from ..checkpoint.state import rng_from_state

        self._rng = rng_from_state(state["rng"])


def make_router(policy: str, num_shards: int, seed: int | None = None) -> Router:
    """Instantiate the router for ``policy`` (see :data:`ROUTING_POLICIES`)."""
    if policy == "round_robin":
        return RoundRobinRouter(num_shards)
    if policy == "hash":
        return HashRouter(num_shards)
    if policy == "random":
        return RandomRouter(num_shards, seed=seed)
    raise ValueError(
        f"unknown routing policy {policy!r}; available: {ROUTING_POLICIES}"
    )
