"""The multi-core sharded ingestion engine.

:class:`ShardedEngine` is the coordinator of the parallel answer to the
paper's "clustering on distributed and parallel streams" open question.  Its
dataflow::

                      router (round_robin | hash | random)
    insert_batch ──►  split into per-shard blocks (vectorized, zero copy)
                      │
                      ▼
    bounded per-shard work queues ──► shard workers (serial | thread | process)
                      each: BucketBuffer → CT/CC/RCC structure
                      │
    query ──────────► collect one coreset per shard (Observation 1)
                      │
                      ▼
    union of shard coresets ──► QueryEngine (warm-start Lloyd / cold k-means++)

Updates are coordination-free (each shard summarises only its own slice) and
queries are cheap because each shard serves its *cached* coreset — exactly
the decomposition that makes the union-of-coresets merge sound.  The engine
speaks the standard :class:`~repro.core.base.StreamingClusterer` contract,
including batched multi-k queries and per-query serving stats, so the
harness, CLI, and benchmarks drive it like any single-structure clusterer.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Callable, Sequence

import numpy as np

from ..core.base import (
    QueryResult,
    StreamingClusterer,
    StreamingConfig,
    coerce_batch,
    require_dimension,
    streaming_config_from_dict,
    streaming_config_to_dict,
)
from ..core.cache import CacheStats
from ..core.serving_mixin import CoresetServingMixin
from ..coreset.bucket import WeightedPointSet
from ..queries.serving import QueryStats
from .backends import BACKENDS, ShardWorkerError, _ShardSpec, make_backend
from .elastic import (
    MigrationReport,
    RebalancePolicy,
    RecoveryEvent,
    ReshardReport,
    apportion_points,
)
from .routing import ROUTING_POLICIES, make_router, spawn_shard_seeds
from .shard import SHARD_STRUCTURES, ShardSnapshot, StreamShard, make_shard

__all__ = ["ShardedEngine"]


class ShardedEngine(CoresetServingMixin, StreamingClusterer):
    """Parallel sharded ingestion with merged coreset queries.

    Parameters
    ----------
    config:
        Shared streaming configuration applied to every shard.  ``config.seed``
        also seeds the query-time randomness and (via
        :func:`~repro.parallel.routing.spawn_shard_seeds`) each shard's
        independent sampling stream.
    num_shards:
        Number of shard workers.
    routing:
        How points are assigned to shards: ``"round_robin"`` (default),
        ``"hash"`` (content-stable), or ``"random"``.
    backend:
        Executor backend: ``"serial"`` (inline, deterministic), ``"thread"``
        (one worker thread per shard), or ``"process"`` (one worker process
        per shard with shared-memory batch handoff).
    structure:
        Clustering structure each shard runs: ``"ct"``, ``"cc"`` (default),
        or ``"rcc"``.
    nesting_depth:
        RCC nesting depth for ``structure="rcc"`` shards (ignored otherwise).
    queue_depth:
        Bound of each shard's work queue (blocks the coordinator when a
        shard falls this many submissions behind).
    slot_rows:
        Rows per shared-memory slot for the process backend (default: twice
        the bucket size, at least 1024).  Ignored by other backends.
    start_method:
        Multiprocessing start method for the process backend (default:
        ``"fork"`` where available, else ``"spawn"``).
    shard_factory:
        Test hook: replaces :func:`~repro.parallel.shard.make_shard` to build
        custom shard objects (must be picklable for spawn-based workers).
    rebalance:
        Optional :class:`~repro.parallel.elastic.RebalancePolicy`.  When set,
        the engine watches per-shard routed points since the last rebalance
        and migrates a slice of the hottest shard's coreset to the coldest
        shard (at a quiesce point) whenever the policy triggers.
    auto_recover:
        Opt-in crash recovery.  The engine keeps a per-shard recovery point
        (the shard's checkpoint sub-snapshot) plus a journal of the blocks
        submitted since, and on a :class:`~repro.parallel.backends.
        ShardWorkerError` restarts the failed worker, restores the recovery
        point, and replays the journal tail instead of surfacing the error.
        The serial backend runs shards inline and is not covered (a failure
        there is a plain exception in the caller, not a lost worker).
    recovery_interval:
        Points routed to a shard between recovery-point refreshes (each
        refresh is a single-shard state dump; the journal tail is truncated).
    max_restarts:
        Per-shard restart budget; a shard that keeps failing past it (e.g. a
        deterministic bug replayed from the journal) surfaces its
        ``ShardWorkerError`` as before.
    """

    checkpoint_name = "sharded"

    def __init__(
        self,
        config: StreamingConfig,
        num_shards: int = 4,
        routing: str = "round_robin",
        backend: str = "serial",
        structure: str = "cc",
        nesting_depth: int = 3,
        queue_depth: int = 8,
        slot_rows: int | None = None,
        start_method: str | None = None,
        shard_factory=None,
        rebalance: RebalancePolicy | None = None,
        auto_recover: bool = False,
        recovery_interval: int = 4096,
        max_restarts: int = 2,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {routing!r}; available: {ROUTING_POLICIES}"
            )
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; available: {BACKENDS}")
        if structure not in SHARD_STRUCTURES:
            raise ValueError(
                f"unknown shard structure {structure!r}; "
                f"available: {tuple(SHARD_STRUCTURES)}"
            )
        if recovery_interval <= 0:
            raise ValueError("recovery_interval must be positive")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self.config = config
        self.routing = routing
        self.backend_name = backend
        self.structure_name = structure
        self._nesting_depth = nesting_depth
        self._queue_depth = queue_depth
        self._start_method = start_method
        self._shard_factory = (
            shard_factory if shard_factory is not None else make_shard
        )
        self._router = make_router(routing, num_shards, seed=config.seed)
        specs = self._build_specs(num_shards)
        if slot_rows is None:
            slot_rows = max(1024, 2 * config.bucket_size)
        self._slot_rows = slot_rows
        self._backend = make_backend(
            backend,
            specs,
            queue_depth=queue_depth,
            slot_rows=slot_rows,
            start_method=start_method,
        )
        # Safety net for engines dropped without close(): tears the workers
        # (and any shared-memory slabs) down when the engine is collected.
        # Referencing only the backend keeps the engine itself collectable.
        self._finalizer = weakref.finalize(self, self._backend.close)
        self._num_shards = num_shards
        self._loads = [0] * num_shards
        self._points_seen = 0
        self._dimension: int | None = None
        self._closed = False
        self._rng = np.random.default_rng(config.seed)
        self._engine = config.make_query_engine()
        self._last_query_stats: QueryStats | None = None
        self._last_snapshots: list[ShardSnapshot] | None = None
        # Elasticity: one re-entrant lock serializes ingest/queries against
        # reshard/migration/recovery, so a serving plane (or any concurrent
        # caller) always observes the engine either fully before or fully
        # after an elastic operation.
        self._elastic_lock = threading.RLock()
        self._rebalance = rebalance
        self._window_loads = [0] * num_shards
        self._reshard_history: list[ReshardReport] = []
        self._migration_history: list[MigrationReport] = []
        self._recovery_events: list[RecoveryEvent] = []
        self._restarts = [0] * num_shards
        self._auto_recover = bool(auto_recover)
        self._recovery_interval = int(recovery_interval)
        self._max_restarts = int(max_restarts)
        self._journal: list[list[np.ndarray]] | None = None
        self._journal_points: list[int] = []
        self._shard_states: list[dict] = []
        if self._auto_recover:
            self._init_recovery_points()

    def _build_specs(self, num_shards: int) -> list[_ShardSpec]:
        seeds = spawn_shard_seeds(self.config.seed, num_shards)
        return [
            _ShardSpec(
                config=self.config,
                shard_index=index,
                seed=seeds[index],
                structure=self.structure_name,
                nesting_depth=self._nesting_depth,
                factory=self._shard_factory,
            )
            for index in range(num_shards)
        ]

    def _init_recovery_points(self) -> None:
        self._journal = [[] for _ in range(self._num_shards)]
        self._journal_points = [0] * self._num_shards
        self._shard_states = self._backend.dump_states()

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the backend workers (idempotent; serial is a no-op)."""
        if self._closed:
            return
        self._closed = True
        # Runs backend.close() exactly once and disarms the GC safety net.
        self._finalizer()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedEngine is closed")

    # -- introspection -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shard workers."""
        return self._num_shards

    @property
    def points_seen(self) -> int:
        """Total number of points routed across all shards."""
        return self._points_seen

    @property
    def dimension(self) -> int | None:
        """Dimensionality of the stream (None until the first point arrives)."""
        return self._dimension

    @property
    def shards(self) -> list[StreamShard]:
        """In-process shard objects (serial/thread only; process raises)."""
        return self._backend.shards

    def shard_loads(self) -> list[int]:
        """Points routed to each shard (for load-balance inspection)."""
        return list(self._loads)

    def flush(self) -> None:
        """Barrier: block until every queued insert has been applied."""
        with self._elastic_lock:
            self._require_open()
            self._with_recovery(self._backend.sync)

    def last_snapshots(self) -> list[ShardSnapshot] | None:
        """Per-shard snapshots gathered by the most recent query (None before one)."""
        return self._last_snapshots

    def cache_stats(self) -> CacheStats | None:
        """Coreset-cache counters aggregated across shards (from the last query).

        ``None`` for cache-less shard structures (CT) and before the first
        query, mirroring :meth:`~repro.core.base.ClusteringStructure.cache_stats`.
        """
        if self.structure_name == "ct" or self._last_snapshots is None:
            return None
        total = CacheStats()
        for snapshot in self._last_snapshots:
            total = total.merged_with(
                CacheStats(
                    hits=snapshot.cache_hits,
                    misses=snapshot.cache_misses,
                    entries=snapshot.cache_entries,
                )
            )
        return total

    # -- ingestion -----------------------------------------------------------

    def insert(self, point: np.ndarray) -> None:
        """Route one point to its shard (same router state as batches).

        The row is copied before submission, so the caller may freely reuse
        its buffer — matching every other ``insert()`` in the package even
        when the backend applies the row asynchronously.
        """
        with self._elastic_lock:
            self._require_open()
            row = np.array(point, dtype=self.config.np_dtype, copy=True).reshape(-1)
            self._dimension = require_dimension(
                self._dimension, row.shape[0], what="point"
            )
            shard_index = self._router.route_point(row)
            self._submit_block(shard_index, row.reshape(1, -1))
            self._loads[shard_index] += 1
            self._window_loads[shard_index] += 1
            self._points_seen += 1

    def insert_batch(self, points: np.ndarray) -> None:
        """Partition a batch across the shards and enqueue the blocks.

        Routing is fully vectorized for every policy (round-robin strided
        slices, stable content hash, one random draw per batch).  With the
        thread backend, blocks are handed over by reference — the caller
        must not mutate the array afterwards (the same aliasing contract as
        :meth:`~repro.core.driver.StreamClusterDriver.insert_batch`).
        """
        with self._elastic_lock:
            self._require_open()
            arr = coerce_batch(points, dtype=self.config.np_dtype)
            n = arr.shape[0]
            if n == 0:
                return
            self._dimension = require_dimension(self._dimension, arr.shape[1])
            for shard_index, block in self._router.split_batch(arr):
                self._submit_block(shard_index, block)
                self._loads[shard_index] += block.shape[0]
                self._window_loads[shard_index] += block.shape[0]
            self._points_seen += n
            if self._rebalance is not None:
                self._maybe_rebalance()

    # -- elasticity: crash recovery -------------------------------------------

    def _submit_block(self, shard_index: int, block: np.ndarray) -> None:
        """Submit one routed block, journaling it after the submit succeeds.

        Journal-after-success makes replay exactly-once: a block whose submit
        failed is not yet journaled, so recovery replays only the previously
        accepted tail and the failed block is then retried on the fresh
        worker by :meth:`_with_recovery`.
        """
        self._with_recovery(lambda: self._backend.submit(shard_index, block))
        if self._journal is None:
            return
        self._journal[shard_index].append(block)
        self._journal_points[shard_index] += block.shape[0]
        if self._journal_points[shard_index] >= self._recovery_interval:
            self._refresh_recovery_point(shard_index)

    def _refresh_recovery_point(self, shard_index: int) -> None:
        """Advance one shard's recovery point and truncate its journal tail."""
        state = self._with_recovery(lambda: self._backend.dump_state(shard_index))
        self._shard_states[shard_index] = state
        self._journal[shard_index].clear()
        self._journal_points[shard_index] = 0

    def _with_recovery(self, op: Callable):
        """Run one backend op, transparently recovering failed workers.

        Each :class:`ShardWorkerError` triggers at most ``max_restarts``
        recoveries per shard; a shard that fails deterministically (the
        replayed journal re-triggers the fault) exhausts its budget and the
        error surfaces exactly as it did before auto-recovery existed.
        """
        while True:
            try:
                return op()
            except ShardWorkerError as exc:
                self._recover_from(exc)

    def _recover_from(self, exc: ShardWorkerError) -> None:
        """Restart the failed worker from its recovery point, or re-raise."""
        index = exc.shard_index
        if (
            self._journal is None
            or self.backend_name == "serial"
            or not hasattr(self._backend, "restart_shard")
            or not 0 <= index < self._num_shards
            or self._restarts[index] >= self._max_restarts
        ):
            raise exc
        self._restarts[index] += 1
        self._backend.restart_shard(index)
        self._backend.load_state(index, self._shard_states[index])
        blocks = list(self._journal[index])
        for block in blocks:
            self._backend.submit(index, block)
        self._recovery_events.append(
            RecoveryEvent(
                shard_index=index,
                restarts=self._restarts[index],
                replayed_blocks=len(blocks),
                replayed_points=int(sum(block.shape[0] for block in blocks)),
            )
        )

    @property
    def recovery_events(self) -> list[RecoveryEvent]:
        """Automatic worker recoveries performed so far (oldest first)."""
        return list(self._recovery_events)

    # -- elasticity: live resharding ------------------------------------------

    def reshard(self, new_num_shards: int) -> ReshardReport:
        """Live-reshard N→M shards at a quiesce point, losslessly.

        Quiesces via the ``sync`` barrier, collects every shard's local
        coreset (structure coreset ∪ partial-bucket tail — nothing in flight
        is lost), unions them (Observation 1), tears the old backend down,
        and deals the union back out to ``new_num_shards`` fresh shards as
        inherited mass, splitting round-robin so every piece carries a
        cross-section of the stream.  The router is rebuilt for the new
        count (``spawn_shard_seeds`` is shard-count-stable, so shard ``i``'s
        sampling stream is the same one it would have had in a fresh
        M-shard engine) and ``points_seen`` is re-apportioned exactly across
        the new shards in proportion to inherited coreset weight.
        """
        with self._elastic_lock:
            self._require_open()
            if new_num_shards <= 0:
                raise ValueError("new_num_shards must be positive")
            start = time.perf_counter()
            old_num_shards = self._num_shards
            self._with_recovery(self._backend.sync)
            dimension = self._dimension if self._dimension is not None else 1
            snapshots = self._with_recovery(
                lambda: self._backend.collect(dimension)
            )
            union = WeightedPointSet.union_all(
                [s.coreset for s in snapshots if s.points.shape[0]],
                dimension=dimension,
            )
            self._finalizer.detach()
            self._backend.close()
            self._backend = make_backend(
                self.backend_name,
                self._build_specs(new_num_shards),
                queue_depth=self._queue_depth,
                slot_rows=self._slot_rows,
                start_method=self._start_method,
            )
            self._finalizer = weakref.finalize(self, self._backend.close)
            self._router = make_router(
                self.routing, new_num_shards, seed=self.config.seed
            )
            self._num_shards = new_num_shards
            pieces = [
                WeightedPointSet(
                    points=union.points[index::new_num_shards],
                    weights=union.weights[index::new_num_shards],
                )
                for index in range(new_num_shards)
            ]
            counts = apportion_points(
                [piece.total_weight for piece in pieces], self._points_seen
            )
            for index, (piece, represented) in enumerate(zip(pieces, counts)):
                if piece.size == 0 and represented == 0:
                    continue
                self._backend.adopt(
                    index,
                    {
                        "points": piece.points,
                        "weights": piece.weights,
                        "represented": represented,
                        "reset": False,
                    },
                )
            self._loads = list(counts)
            self._window_loads = [0] * new_num_shards
            self._restarts = [0] * new_num_shards
            self._last_snapshots = None
            if self._auto_recover:
                self._init_recovery_points()
            report = ReshardReport(
                old_num_shards=old_num_shards,
                new_num_shards=new_num_shards,
                coreset_points=union.size,
                points_represented=self._points_seen,
                pause_seconds=time.perf_counter() - start,
            )
            self._reshard_history.append(report)
            return report

    @property
    def reshard_history(self) -> list[ReshardReport]:
        """Reports of every :meth:`reshard` performed (oldest first)."""
        return list(self._reshard_history)

    # -- elasticity: load-driven migration ------------------------------------

    def migrate(
        self, source: int, dest: int, fraction: float = 0.5
    ) -> MigrationReport:
        """Move a slice of ``source``'s coreset mass to ``dest`` at a quiesce.

        The slice is an evenly strided ``fraction`` of the source shard's
        local coreset (so it carries a cross-section, not a time-prefix).
        The source is reset and re-adopts its kept slice; the destination
        adopts the moved slice on top of its own state; ``points_seen``
        moves between the two ledgers proportionally to coreset weight, so
        totals are preserved exactly.  Hash routing also reassigns virtual
        buckets so *future* points follow the moved mass.
        """
        with self._elastic_lock:
            self._require_open()
            if not 0 <= source < self._num_shards:
                raise ValueError(f"source shard {source} out of range")
            if not 0 <= dest < self._num_shards:
                raise ValueError(f"dest shard {dest} out of range")
            if source == dest:
                raise ValueError("source and dest must differ")
            if not 0.0 < fraction <= 1.0:
                raise ValueError(f"fraction must be in (0, 1], got {fraction}")
            start = time.perf_counter()
            self._with_recovery(self._backend.sync)
            dimension = self._dimension if self._dimension is not None else 1
            snapshots = self._with_recovery(
                lambda: self._backend.collect(dimension)
            )
            coreset = snapshots[source].coreset
            move = np.zeros(coreset.size, dtype=bool)
            target = int(round(coreset.size * fraction))
            if target > 0 and coreset.size > 0:
                move[
                    np.unique(
                        np.linspace(0, coreset.size - 1, target)
                        .round()
                        .astype(np.intp)
                    )
                ] = True
            moved_weight = float(np.sum(coreset.weights[move]))
            kept_weight = float(np.sum(coreset.weights[~move]))
            source_points = snapshots[source].points_seen
            moved_represented, kept_represented = apportion_points(
                [moved_weight, kept_weight], source_points
            )
            self._backend.adopt(
                source,
                {
                    "points": coreset.points[~move],
                    "weights": coreset.weights[~move],
                    "represented": kept_represented,
                    "reset": True,
                },
            )
            self._backend.adopt(
                dest,
                {
                    "points": coreset.points[move],
                    "weights": coreset.weights[move],
                    "represented": moved_represented,
                    "reset": False,
                },
            )
            slots = self._router.reassign(source, dest, fraction)
            self._loads[source] -= moved_represented
            self._loads[dest] += moved_represented
            self._window_loads = [0] * self._num_shards
            self._last_snapshots = None
            if self._journal is not None:
                for index in (source, dest):
                    self._refresh_recovery_point(index)
            report = MigrationReport(
                source=source,
                dest=dest,
                moved_coreset_points=int(np.count_nonzero(move)),
                moved_points_represented=moved_represented,
                router_slots_moved=slots,
                pause_seconds=time.perf_counter() - start,
            )
            self._migration_history.append(report)
            return report

    def _maybe_rebalance(self) -> None:
        decision = self._rebalance.decide(self._window_loads)
        if decision is None:
            return
        source, dest = decision
        self.migrate(source, dest, fraction=self._rebalance.fraction)

    @property
    def migration_history(self) -> list[MigrationReport]:
        """Reports of every migration performed (oldest first)."""
        return list(self._migration_history)

    # -- queries (through the shared serving pipeline) ------------------------

    def query(self) -> QueryResult:
        """Merge every shard's coreset and extract ``k`` centers globally."""
        with self._elastic_lock:
            self._require_open()
            return self._serve_query(self.config.k)

    def query_multi_k(self, ks: Sequence[int]) -> dict[int, QueryResult]:
        """Answer a batched k-sweep from ONE cross-shard coreset collection."""
        with self._elastic_lock:
            self._require_open()
            return self._serve_multi_k(ks)

    def _coreset_pieces(self) -> WeightedPointSet:
        """Collect one coreset per shard and union them (Observation 1)."""
        with self._elastic_lock:
            dimension = self._dimension or 1
            snapshots = self._with_recovery(
                lambda: self._backend.collect(dimension)
            )
            self._last_snapshots = snapshots
            pieces = [
                snapshot.coreset for snapshot in snapshots if snapshot.points.shape[0]
            ]
            return WeightedPointSet.union_all(pieces, dimension=dimension)

    def collect_serving_snapshot(self) -> tuple[WeightedPointSet, CacheStats | None]:
        """Writer-plane snapshot assembly (union of per-shard coresets).

        ``collect`` is a worker barrier on the thread/process backends, so
        the published snapshot reflects every insert submitted before the
        publish — the serving plane's ingest lock keeps this writer-only.
        The elastic lock additionally serializes it against a concurrent
        :meth:`reshard`/:meth:`migrate`, so a mid-reshard engine is never
        observed half-built.
        """
        with self._elastic_lock:
            self._require_open()
            return super().collect_serving_snapshot()

    def _structure_cache_stats(self) -> CacheStats | None:
        return self.cache_stats()

    def _answered_from_cache(self) -> bool:
        # CC/RCC shards serve their cached coresets — the merge never
        # re-walks the full trees.  CT shards have no cache and re-merge.
        return self.structure_name != "ct"

    # -- accounting ----------------------------------------------------------

    def stored_points(self) -> int:
        """Total weighted points held across all shards."""
        with self._elastic_lock:
            self._require_open()
            return self._with_recovery(self._backend.stored_points)

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        # The executor backend is deliberately NOT part of the fingerprinted
        # config: a snapshot taken on one backend restores onto any other.
        return {
            "streaming": streaming_config_to_dict(self.config),
            "num_shards": self._num_shards,
            "routing": self.routing,
            "structure": self.structure_name,
            "nesting_depth": self._nesting_depth,
        }

    def _runtime_tree(self) -> dict:
        return {
            "backend": self.backend_name,
            "queue_depth": self._queue_depth,
            "slot_rows": self._slot_rows,
            "start_method": self._start_method,
        }

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        with self._elastic_lock:
            self._require_open()
            # Quiesce: apply every queued insert before cutting the snapshot,
            # so coordinator counters and shard states describe the same
            # stream position.  (_shard_trees below captures the workers.)
            self._with_recovery(self._backend.sync)
            return {
                "points_seen": self._points_seen,
                "dimension": self._dimension,
                "loads": list(self._loads),
                "rng": rng_state(self._rng),
                "engine": self._engine.state_dict(),
                "router": self._router.state_dict(),
            }

    def _shard_trees(self) -> list[dict]:
        with self._elastic_lock:
            self._require_open()
            return self._with_recovery(self._backend.dump_states)

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        from ..checkpoint import CheckpointError
        from ..checkpoint.state import rng_from_state

        unknown = set(overrides) - {"backend"}
        if unknown:
            raise CheckpointError(
                f"{cls.__name__} only supports the 'backend' restore override, "
                f"got {sorted(unknown)}"
            )
        config_tree = manifest["config"]
        runtime = manifest.get("runtime", {})
        num_shards = int(config_tree["num_shards"])
        if shards is None or len(shards) != num_shards:
            raise CheckpointError(
                f"checkpoint holds {0 if shards is None else len(shards)} shard "
                f"sub-snapshots but the manifest declares {num_shards} shards"
            )
        backend = overrides.get("backend") or runtime.get("backend", "serial")
        engine = cls(
            streaming_config_from_dict(config_tree["streaming"]),
            num_shards=num_shards,
            routing=config_tree["routing"],
            backend=backend,
            structure=config_tree["structure"],
            nesting_depth=int(config_tree["nesting_depth"]),
            queue_depth=int(runtime.get("queue_depth", 8)),
            slot_rows=runtime.get("slot_rows"),
            start_method=runtime.get("start_method") if backend == "process" else None,
        )
        try:
            engine._points_seen = int(state["points_seen"])
            engine._dimension = (
                None if state["dimension"] is None else int(state["dimension"])
            )
            engine._loads = [int(load) for load in state["loads"]]
            engine._rng = rng_from_state(state["rng"])
            engine._engine.load_state(state["engine"])
            engine._router.load_state(state["router"])
            engine._backend.load_states(shards)
        except BaseException:
            engine.close()
            raise
        return engine

    # -- compatibility -------------------------------------------------------

    def _route(self, point: np.ndarray) -> int:
        """Shard index for one point (kept for the simulation-era API).

        The row is coerced to the configured storage dtype BEFORE routing —
        the same coercion :meth:`insert` applies — so under
        ``dtype="float32"`` with hash routing this names the shard the point
        actually lands on (hashing the raw float64 row could disagree with
        the quantized row's hash).
        """
        row = np.asarray(point, dtype=self.config.np_dtype).reshape(-1)
        return self._router.route_point(row)
