"""The multi-core sharded ingestion engine.

:class:`ShardedEngine` is the coordinator of the parallel answer to the
paper's "clustering on distributed and parallel streams" open question.  Its
dataflow::

                      router (round_robin | hash | random)
    insert_batch ──►  split into per-shard blocks (vectorized, zero copy)
                      │
                      ▼
    bounded per-shard work queues ──► shard workers (serial | thread | process)
                      each: BucketBuffer → CT/CC/RCC structure
                      │
    query ──────────► collect one coreset per shard (Observation 1)
                      │
                      ▼
    union of shard coresets ──► QueryEngine (warm-start Lloyd / cold k-means++)

Updates are coordination-free (each shard summarises only its own slice) and
queries are cheap because each shard serves its *cached* coreset — exactly
the decomposition that makes the union-of-coresets merge sound.  The engine
speaks the standard :class:`~repro.core.base.StreamingClusterer` contract,
including batched multi-k queries and per-query serving stats, so the
harness, CLI, and benchmarks drive it like any single-structure clusterer.
"""

from __future__ import annotations

import weakref
from typing import Sequence

import numpy as np

from ..core.base import (
    QueryResult,
    StreamingClusterer,
    StreamingConfig,
    coerce_batch,
    require_dimension,
    streaming_config_from_dict,
    streaming_config_to_dict,
)
from ..core.cache import CacheStats
from ..core.serving_mixin import CoresetServingMixin
from ..coreset.bucket import WeightedPointSet
from ..queries.serving import QueryStats
from .backends import BACKENDS, _ShardSpec, make_backend
from .routing import ROUTING_POLICIES, make_router, spawn_shard_seeds
from .shard import SHARD_STRUCTURES, ShardSnapshot, StreamShard, make_shard

__all__ = ["ShardedEngine"]


class ShardedEngine(CoresetServingMixin, StreamingClusterer):
    """Parallel sharded ingestion with merged coreset queries.

    Parameters
    ----------
    config:
        Shared streaming configuration applied to every shard.  ``config.seed``
        also seeds the query-time randomness and (via
        :func:`~repro.parallel.routing.spawn_shard_seeds`) each shard's
        independent sampling stream.
    num_shards:
        Number of shard workers.
    routing:
        How points are assigned to shards: ``"round_robin"`` (default),
        ``"hash"`` (content-stable), or ``"random"``.
    backend:
        Executor backend: ``"serial"`` (inline, deterministic), ``"thread"``
        (one worker thread per shard), or ``"process"`` (one worker process
        per shard with shared-memory batch handoff).
    structure:
        Clustering structure each shard runs: ``"ct"``, ``"cc"`` (default),
        or ``"rcc"``.
    nesting_depth:
        RCC nesting depth for ``structure="rcc"`` shards (ignored otherwise).
    queue_depth:
        Bound of each shard's work queue (blocks the coordinator when a
        shard falls this many submissions behind).
    slot_rows:
        Rows per shared-memory slot for the process backend (default: twice
        the bucket size, at least 1024).  Ignored by other backends.
    start_method:
        Multiprocessing start method for the process backend (default:
        ``"fork"`` where available, else ``"spawn"``).
    shard_factory:
        Test hook: replaces :func:`~repro.parallel.shard.make_shard` to build
        custom shard objects (must be picklable for spawn-based workers).
    """

    checkpoint_name = "sharded"

    def __init__(
        self,
        config: StreamingConfig,
        num_shards: int = 4,
        routing: str = "round_robin",
        backend: str = "serial",
        structure: str = "cc",
        nesting_depth: int = 3,
        queue_depth: int = 8,
        slot_rows: int | None = None,
        start_method: str | None = None,
        shard_factory=None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {routing!r}; available: {ROUTING_POLICIES}"
            )
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; available: {BACKENDS}")
        if structure not in SHARD_STRUCTURES:
            raise ValueError(
                f"unknown shard structure {structure!r}; "
                f"available: {tuple(SHARD_STRUCTURES)}"
            )
        self.config = config
        self.routing = routing
        self.backend_name = backend
        self.structure_name = structure
        self._nesting_depth = nesting_depth
        self._queue_depth = queue_depth
        self._start_method = start_method
        self._router = make_router(routing, num_shards, seed=config.seed)
        seeds = spawn_shard_seeds(config.seed, num_shards)
        factory = shard_factory if shard_factory is not None else make_shard
        specs = [
            _ShardSpec(
                config=config,
                shard_index=index,
                seed=seeds[index],
                structure=structure,
                nesting_depth=nesting_depth,
                factory=factory,
            )
            for index in range(num_shards)
        ]
        if slot_rows is None:
            slot_rows = max(1024, 2 * config.bucket_size)
        self._slot_rows = slot_rows
        self._backend = make_backend(
            backend,
            specs,
            queue_depth=queue_depth,
            slot_rows=slot_rows,
            start_method=start_method,
        )
        # Safety net for engines dropped without close(): tears the workers
        # (and any shared-memory slabs) down when the engine is collected.
        # Referencing only the backend keeps the engine itself collectable.
        self._finalizer = weakref.finalize(self, self._backend.close)
        self._num_shards = num_shards
        self._loads = [0] * num_shards
        self._points_seen = 0
        self._dimension: int | None = None
        self._closed = False
        self._rng = np.random.default_rng(config.seed)
        self._engine = config.make_query_engine()
        self._last_query_stats: QueryStats | None = None
        self._last_snapshots: list[ShardSnapshot] | None = None

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the backend workers (idempotent; serial is a no-op)."""
        if self._closed:
            return
        self._closed = True
        # Runs backend.close() exactly once and disarms the GC safety net.
        self._finalizer()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedEngine is closed")

    # -- introspection -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shard workers."""
        return self._num_shards

    @property
    def points_seen(self) -> int:
        """Total number of points routed across all shards."""
        return self._points_seen

    @property
    def dimension(self) -> int | None:
        """Dimensionality of the stream (None until the first point arrives)."""
        return self._dimension

    @property
    def shards(self) -> list[StreamShard]:
        """In-process shard objects (serial/thread only; process raises)."""
        return self._backend.shards

    def shard_loads(self) -> list[int]:
        """Points routed to each shard (for load-balance inspection)."""
        return list(self._loads)

    def flush(self) -> None:
        """Barrier: block until every queued insert has been applied."""
        self._require_open()
        self._backend.sync()

    def last_snapshots(self) -> list[ShardSnapshot] | None:
        """Per-shard snapshots gathered by the most recent query (None before one)."""
        return self._last_snapshots

    def cache_stats(self) -> CacheStats | None:
        """Coreset-cache counters aggregated across shards (from the last query).

        ``None`` for cache-less shard structures (CT) and before the first
        query, mirroring :meth:`~repro.core.base.ClusteringStructure.cache_stats`.
        """
        if self.structure_name == "ct" or self._last_snapshots is None:
            return None
        total = CacheStats()
        for snapshot in self._last_snapshots:
            total = total.merged_with(
                CacheStats(
                    hits=snapshot.cache_hits,
                    misses=snapshot.cache_misses,
                    entries=snapshot.cache_entries,
                )
            )
        return total

    # -- ingestion -----------------------------------------------------------

    def insert(self, point: np.ndarray) -> None:
        """Route one point to its shard (same router state as batches).

        The row is copied before submission, so the caller may freely reuse
        its buffer — matching every other ``insert()`` in the package even
        when the backend applies the row asynchronously.
        """
        self._require_open()
        row = np.array(point, dtype=self.config.np_dtype, copy=True).reshape(-1)
        self._dimension = require_dimension(self._dimension, row.shape[0], what="point")
        shard_index = self._router.route_point(row)
        self._backend.submit(shard_index, row.reshape(1, -1))
        self._loads[shard_index] += 1
        self._points_seen += 1

    def insert_batch(self, points: np.ndarray) -> None:
        """Partition a batch across the shards and enqueue the blocks.

        Routing is fully vectorized for every policy (round-robin strided
        slices, stable content hash, one random draw per batch).  With the
        thread backend, blocks are handed over by reference — the caller
        must not mutate the array afterwards (the same aliasing contract as
        :meth:`~repro.core.driver.StreamClusterDriver.insert_batch`).
        """
        self._require_open()
        arr = coerce_batch(points, dtype=self.config.np_dtype)
        n = arr.shape[0]
        if n == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        for shard_index, block in self._router.split_batch(arr):
            self._backend.submit(shard_index, block)
            self._loads[shard_index] += block.shape[0]
        self._points_seen += n

    # -- queries (through the shared serving pipeline) ------------------------

    def query(self) -> QueryResult:
        """Merge every shard's coreset and extract ``k`` centers globally."""
        self._require_open()
        return self._serve_query(self.config.k)

    def query_multi_k(self, ks: Sequence[int]) -> dict[int, QueryResult]:
        """Answer a batched k-sweep from ONE cross-shard coreset collection."""
        self._require_open()
        return self._serve_multi_k(ks)

    def _coreset_pieces(self) -> WeightedPointSet:
        """Collect one coreset per shard and union them (Observation 1)."""
        dimension = self._dimension or 1
        snapshots = self._backend.collect(dimension)
        self._last_snapshots = snapshots
        pieces = [
            snapshot.coreset for snapshot in snapshots if snapshot.points.shape[0]
        ]
        return WeightedPointSet.union_all(pieces, dimension=dimension)

    def collect_serving_snapshot(self) -> tuple[WeightedPointSet, CacheStats | None]:
        """Writer-plane snapshot assembly (union of per-shard coresets).

        ``collect`` is a worker barrier on the thread/process backends, so
        the published snapshot reflects every insert submitted before the
        publish — the serving plane's ingest lock keeps this writer-only.
        """
        self._require_open()
        return super().collect_serving_snapshot()

    def _structure_cache_stats(self) -> CacheStats | None:
        return self.cache_stats()

    def _answered_from_cache(self) -> bool:
        # CC/RCC shards serve their cached coresets — the merge never
        # re-walks the full trees.  CT shards have no cache and re-merge.
        return self.structure_name != "ct"

    # -- accounting ----------------------------------------------------------

    def stored_points(self) -> int:
        """Total weighted points held across all shards."""
        self._require_open()
        return self._backend.stored_points()

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        # The executor backend is deliberately NOT part of the fingerprinted
        # config: a snapshot taken on one backend restores onto any other.
        return {
            "streaming": streaming_config_to_dict(self.config),
            "num_shards": self._num_shards,
            "routing": self.routing,
            "structure": self.structure_name,
            "nesting_depth": self._nesting_depth,
        }

    def _runtime_tree(self) -> dict:
        return {
            "backend": self.backend_name,
            "queue_depth": self._queue_depth,
            "slot_rows": self._slot_rows,
            "start_method": self._start_method,
        }

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        self._require_open()
        # Quiesce: apply every queued insert before cutting the snapshot, so
        # coordinator counters and shard states describe the same stream
        # position.  (_shard_trees below captures the workers afterwards.)
        self._backend.sync()
        return {
            "points_seen": self._points_seen,
            "dimension": self._dimension,
            "loads": list(self._loads),
            "rng": rng_state(self._rng),
            "engine": self._engine.state_dict(),
            "router": self._router.state_dict(),
        }

    def _shard_trees(self) -> list[dict]:
        self._require_open()
        return self._backend.dump_states()

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        from ..checkpoint import CheckpointError
        from ..checkpoint.state import rng_from_state

        unknown = set(overrides) - {"backend"}
        if unknown:
            raise CheckpointError(
                f"{cls.__name__} only supports the 'backend' restore override, "
                f"got {sorted(unknown)}"
            )
        config_tree = manifest["config"]
        runtime = manifest.get("runtime", {})
        num_shards = int(config_tree["num_shards"])
        if shards is None or len(shards) != num_shards:
            raise CheckpointError(
                f"checkpoint holds {0 if shards is None else len(shards)} shard "
                f"sub-snapshots but the manifest declares {num_shards} shards"
            )
        backend = overrides.get("backend") or runtime.get("backend", "serial")
        engine = cls(
            streaming_config_from_dict(config_tree["streaming"]),
            num_shards=num_shards,
            routing=config_tree["routing"],
            backend=backend,
            structure=config_tree["structure"],
            nesting_depth=int(config_tree["nesting_depth"]),
            queue_depth=int(runtime.get("queue_depth", 8)),
            slot_rows=runtime.get("slot_rows"),
            start_method=runtime.get("start_method") if backend == "process" else None,
        )
        try:
            engine._points_seen = int(state["points_seen"])
            engine._dimension = (
                None if state["dimension"] is None else int(state["dimension"])
            )
            engine._loads = [int(load) for load in state["loads"]]
            engine._rng = rng_from_state(state["rng"])
            engine._engine.load_state(state["engine"])
            engine._router.load_state(state["router"])
            engine._backend.load_states(shards)
        except BaseException:
            engine.close()
            raise
        return engine

    # -- compatibility -------------------------------------------------------

    def _route(self, point: np.ndarray) -> int:
        """Shard index for one point (kept for the simulation-era API)."""
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        return self._router.route_point(row)
