"""Multi-core sharded ingestion engine for parallel streams.

Observation 1 of the paper (a union of coresets is a coreset of the union)
makes shard-local updates embarrassingly parallel with a cheap merge at query
time.  This package turns the single-threaded simulation of
:mod:`repro.extensions.distributed` into a real parallel engine:

* :mod:`repro.parallel.routing` — the routing policies (round-robin, stable
  content hash, seeded random) that partition a stream across shards, plus
  the per-shard seed derivation;
* :mod:`repro.parallel.shard` — the shard worker state (one clustering
  structure plus its partial base bucket) and the snapshot it ships back to
  the coordinator;
* :mod:`repro.parallel.backends` — the three executor backends: ``serial``
  (inline, deterministic debugging), ``thread`` (one worker thread per shard;
  the vectorized hot loops release the GIL inside numpy), and ``process``
  (one worker process per shard with shared-memory ndarray handoff, so point
  batches are never pickled);
* :mod:`repro.parallel.engine` — :class:`~repro.parallel.engine.ShardedEngine`,
  the user-facing coordinator that routes batches, keeps the bounded work
  queues fed, and answers queries by merging one coreset per shard through
  the warm-startable :class:`~repro.queries.serving.QueryEngine`;
* :mod:`repro.parallel.elastic` — elasticity primitives: the
  :class:`~repro.parallel.elastic.RebalancePolicy` behind load-driven shard
  migration, the reports returned by live resharding
  (:meth:`~repro.parallel.engine.ShardedEngine.reshard`), migration, and
  automatic crash recovery, and the exact apportionment that keeps
  ``points_seen`` accounting lossless through N→M reshard chains.
"""

from .backends import ShardWorkerError
from .elastic import (
    MigrationReport,
    RebalancePolicy,
    RecoveryEvent,
    ReshardReport,
    apportion_points,
)
from .engine import ShardedEngine
from .routing import (
    RoutingPolicy,
    make_router,
    spawn_shard_seeds,
    stable_row_hash,
)
from .shard import ShardSnapshot, StreamShard

__all__ = [
    "MigrationReport",
    "RebalancePolicy",
    "RecoveryEvent",
    "ReshardReport",
    "RoutingPolicy",
    "ShardSnapshot",
    "ShardWorkerError",
    "ShardedEngine",
    "StreamShard",
    "apportion_points",
    "make_router",
    "spawn_shard_seeds",
    "stable_row_hash",
]
