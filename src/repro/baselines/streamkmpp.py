"""streamkm++ baseline (Ackermann et al., JEA 2012).

The paper treats streamkm++ as the current state of the art and notes that it
is exactly the CT algorithm with merge degree ``r = 2`` and a bucket size of
``20 * k``.  This module provides that configuration as a named class so the
benchmarks can refer to "StreamKM++" directly.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.base import StreamingConfig
from ..core.driver import CoresetTreeClusterer

__all__ = ["StreamKMpp", "streamkmpp_config"]


def streamkmpp_config(config: StreamingConfig) -> StreamingConfig:
    """Return ``config`` pinned to streamkm++'s choices (``r = 2``)."""
    return replace(config, merge_degree=2)


class StreamKMpp(CoresetTreeClusterer):
    """The streamkm++ algorithm: a binary-merging coreset tree.

    Any ``merge_degree`` present in the supplied configuration is overridden
    to 2, because that is what defines streamkm++.
    """

    checkpoint_name = "streamkm++"

    def __init__(self, config: StreamingConfig) -> None:
        super().__init__(streamkmpp_config(config))
