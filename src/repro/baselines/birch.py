"""BIRCH-style streaming clustering (Zhang, Ramakrishnan & Livny, SIGMOD 1996).

The paper discusses BIRCH as related work: a CF-tree summarises the stream
into clustering features and a global clustering step runs over the leaf
entries.  This implementation keeps a flat set of clustering features (the
leaf layer of a CF tree) with a distance threshold and a capacity bound; a
final weighted k-means extracts the requested ``k`` centers at query time.
The simplification (no internal tree nodes) preserves the algorithm's
behaviour for clustering-quality comparisons while keeping the code compact —
lookup of the nearest CF is vectorised over all leaf entries.
"""

from __future__ import annotations

import numpy as np

from ..core.base import QueryResult, StreamingClusterer, coerce_batch, require_dimension
from ..kmeans.batch import weighted_kmeans

__all__ = ["ClusteringFeature", "BirchClusterer"]


class ClusteringFeature:
    """A clustering feature (CF): count, linear sum, and squared sum.

    Supports O(1) insertion and exact centroid / radius queries, the core
    trick that lets BIRCH summarise arbitrarily many points in bounded space.
    """

    __slots__ = ("count", "linear_sum", "square_sum")

    def __init__(self, point: np.ndarray) -> None:
        p = np.asarray(point, dtype=np.float64)
        self.count = 1.0
        self.linear_sum = p.copy()
        self.square_sum = float(np.dot(p, p))

    @property
    def centroid(self) -> np.ndarray:
        """Mean of all absorbed points."""
        return self.linear_sum / self.count

    @property
    def radius(self) -> float:
        """Root-mean-square distance of absorbed points from the centroid."""
        centroid = self.centroid
        variance = self.square_sum / self.count - float(np.dot(centroid, centroid))
        return float(np.sqrt(max(variance, 0.0)))

    def absorb(self, point: np.ndarray) -> None:
        """Add one point to this clustering feature."""
        p = np.asarray(point, dtype=np.float64)
        self.count += 1.0
        self.linear_sum += p
        self.square_sum += float(np.dot(p, p))

    def merge(self, other: "ClusteringFeature") -> None:
        """Merge another clustering feature into this one."""
        self.count += other.count
        self.linear_sum += other.linear_sum
        self.square_sum += other.square_sum


class BirchClusterer(StreamingClusterer):
    """Flat CF-layer BIRCH clusterer.

    Parameters
    ----------
    k:
        Number of centers returned by queries.
    threshold:
        A new point is absorbed by its nearest CF if the distance to that
        CF's centroid is below this threshold; otherwise a new CF is created.
    max_features:
        Capacity bound on the number of CFs.  When exceeded, the threshold is
        doubled and the two closest CFs are merged until the bound holds —
        the standard BIRCH rebuild-on-overflow behaviour, simplified.
    seed:
        Seed for the query-time k-means.
    """

    checkpoint_name = "birch"

    def __init__(
        self,
        k: int,
        threshold: float = 0.5,
        max_features: int = 200,
        seed: int | None = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if max_features < k:
            raise ValueError("max_features must be at least k")
        self.k = k
        self.threshold = threshold
        self.max_features = max_features
        self._features: list[ClusteringFeature] = []
        self._points_seen = 0
        self._dimension: int | None = None
        self._rng = np.random.default_rng(seed)

    @property
    def points_seen(self) -> int:
        """Total number of stream points observed so far."""
        return self._points_seen

    @property
    def num_features(self) -> int:
        """Number of clustering features currently maintained."""
        return len(self._features)

    def insert(self, point: np.ndarray) -> None:
        """Absorb a point into its nearest CF or open a new CF."""
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        self._dimension = require_dimension(self._dimension, row.shape[0], what="point")
        self._insert_row(row)

    def insert_batch(self, points: np.ndarray) -> None:
        """Absorb a batch of points (validation paid once per batch).

        CF absorption is order-dependent (each point may open or grow the CF
        later points are matched against), so the routing loop remains.
        """
        arr = coerce_batch(points)
        if arr.shape[0] == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        for row in arr:
            self._insert_row(row)

    def _insert_row(self, row: np.ndarray) -> None:
        self._points_seen += 1
        if not self._features:
            self._features.append(ClusteringFeature(row))
            return

        centroids = np.vstack([cf.centroid for cf in self._features])
        diffs = centroids - row[None, :]
        distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        nearest = int(np.argmin(distances))
        if distances[nearest] <= self.threshold:
            self._features[nearest].absorb(row)
        else:
            self._features.append(ClusteringFeature(row))
            if len(self._features) > self.max_features:
                self._compact()

    def query(self) -> QueryResult:
        """Weighted k-means over CF centroids."""
        if not self._features:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        centroids = np.vstack([cf.centroid for cf in self._features])
        weights = np.array([cf.count for cf in self._features], dtype=np.float64)
        result = weighted_kmeans(
            centroids, self.k, weights=weights, n_init=3, rng=self._rng
        )
        return QueryResult(
            centers=result.centers,
            coreset_points=centroids.shape[0],
            from_cache=False,
        )

    def stored_points(self) -> int:
        """Each CF stores the equivalent of one weighted point."""
        return len(self._features)

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        # The distance threshold is *state*, not config: _compact doubles it
        # as the stream grows, so it must not perturb the fingerprint.
        return {"k": self.k, "max_features": self.max_features}

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        features = None
        if self._features:
            features = {
                "counts": np.array([cf.count for cf in self._features]),
                "linear_sums": np.vstack([cf.linear_sum for cf in self._features]),
                "square_sums": np.array([cf.square_sum for cf in self._features]),
            }
        return {
            "points_seen": self._points_seen,
            "dimension": self._dimension,
            "threshold": self.threshold,
            "rng": rng_state(self._rng),
            "features": features,
        }

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        from ..checkpoint.state import rng_from_state

        cls._reject_overrides(overrides)
        config = manifest["config"]
        clusterer = cls(
            int(config["k"]),
            threshold=float(state["threshold"]),
            max_features=int(config["max_features"]),
        )
        clusterer._points_seen = int(state["points_seen"])
        clusterer._dimension = (
            None if state["dimension"] is None else int(state["dimension"])
        )
        clusterer._rng = rng_from_state(state["rng"])
        features = state["features"]
        if features is not None:
            for count, linear_sum, square_sum in zip(
                features["counts"], features["linear_sums"], features["square_sums"]
            ):
                cf = ClusteringFeature(linear_sum)  # placeholder stats, overwritten
                cf.count = float(count)
                cf.linear_sum = np.asarray(linear_sum, dtype=np.float64).copy()
                cf.square_sum = float(square_sum)
                clusterer._features.append(cf)
        return clusterer

    def _compact(self) -> None:
        """Double the threshold and merge closest CF pairs until within capacity."""
        self.threshold *= 2.0
        while len(self._features) > self.max_features:
            centroids = np.vstack([cf.centroid for cf in self._features])
            # Find the closest pair (O(f^2), acceptable for bounded f).
            diffs = centroids[:, None, :] - centroids[None, :, :]
            sq = np.einsum("ijk,ijk->ij", diffs, diffs)
            np.fill_diagonal(sq, np.inf)
            i, j = np.unravel_index(int(np.argmin(sq)), sq.shape)
            keep, drop = (i, j) if i < j else (j, i)
            self._features[keep].merge(self._features[drop])
            del self._features[drop]
