"""Sequential k-means streaming baseline (MacQueen, via Spark MLlib's scheme).

This is the paper's first baseline (Section 5.2): the Spark MLlib streaming
k-means implementation, modified to run sequentially, with the initial centers
set to the first ``k`` points of the stream (rather than random Gaussians) so
that no cluster starts empty.  Updates cost O(kd) per point and queries cost
O(1), but there is no approximation guarantee — Figure 4 shows its cost can be
orders of magnitude above the coreset-based algorithms.
"""

from __future__ import annotations

import numpy as np

from ..core.base import QueryResult, StreamingClusterer, coerce_batch, require_dimension
from ..kmeans.sequential import SequentialKMeansState

__all__ = ["SequentialKMeans"]


class SequentialKMeans(StreamingClusterer):
    """Streaming clusterer applying one MacQueen update per arriving point.

    Parameters
    ----------
    k:
        Number of cluster centers to maintain.
    """

    checkpoint_name = "sequential"

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._state: SequentialKMeansState | None = None
        self._points_seen = 0

    @property
    def points_seen(self) -> int:
        """Total number of stream points observed so far."""
        return self._points_seen

    @property
    def centers(self) -> np.ndarray | None:
        """The currently maintained centers (None before the first point)."""
        if self._state is None:
            return None
        return self._state.centers

    def insert(self, point: np.ndarray) -> None:
        """Apply one sequential k-means update."""
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        if self._state is None:
            self._state = SequentialKMeansState(self.k, row.shape[0])
        self._state.update(row)
        self._points_seen += 1

    def insert_batch(self, points: np.ndarray) -> None:
        """Apply MacQueen updates to a batch (validation paid once per batch).

        The update rule itself is order-dependent and stays sequential; this
        override only removes the per-point coercion overhead.
        """
        arr = coerce_batch(points)
        if arr.shape[0] == 0:
            return
        require_dimension(
            self._state.dimension if self._state is not None else None, arr.shape[1]
        )
        if self._state is None:
            self._state = SequentialKMeansState(self.k, arr.shape[1])
        self._state.update_many(arr)
        self._points_seen += arr.shape[0]

    def query(self) -> QueryResult:
        """Return the maintained centers (O(1))."""
        if self._state is None:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        return QueryResult(
            centers=self._state.centers.copy(),
            coreset_points=0,
            from_cache=True,
        )

    def stored_points(self) -> int:
        """Only the ``k`` centers are stored."""
        return self.k if self._state is not None else 0

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        return {"k": self.k}

    def _state_tree(self) -> dict:
        return {
            "points_seen": self._points_seen,
            "online": None if self._state is None else self._state.state_dict(),
        }

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        cls._reject_overrides(overrides)
        clusterer = cls(int(manifest["config"]["k"]))
        clusterer._points_seen = int(state["points_seen"])
        online = state["online"]
        clusterer._state = (
            None if online is None else SequentialKMeansState.from_state(online)
        )
        return clusterer
