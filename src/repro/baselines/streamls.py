"""STREAMLS-style divide-and-conquer streaming clustering (Guha et al., TKDE 2003).

Related-work substrate: the stream is consumed in chunks; each chunk is
clustered into ``k`` weighted representatives (we use k-means++ + Lloyd in
place of the original local-search bicriteria routine, as the later
divide-and-conquer variant of Ailon et al. does).  The weighted
representatives of many chunks are themselves re-clustered when their number
exceeds a chunk's worth, giving a hierarchy of at most logarithmic depth.  A
query clusters the union of all retained representatives.
"""

from __future__ import annotations

import numpy as np

from ..core.base import QueryResult, StreamingClusterer, coerce_batch, require_dimension
from ..core.buffer import BucketBuffer
from ..kernels.scatter import weighted_bincount
from ..kmeans.batch import weighted_kmeans
from ..kmeans.cost import assign_points

__all__ = ["StreamLSClusterer"]


class _WeightedLevel:
    """Weighted representatives accumulated at one level of the hierarchy."""

    def __init__(self, dimension: int) -> None:
        self.points: list[np.ndarray] = []
        self.weights: list[float] = []
        self.dimension = dimension

    @property
    def size(self) -> int:
        return len(self.points)

    def extend(self, points: np.ndarray, weights: np.ndarray) -> None:
        for row, weight in zip(points, weights):
            self.points.append(np.asarray(row, dtype=np.float64))
            self.weights.append(float(weight))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.vstack(self.points),
            np.asarray(self.weights, dtype=np.float64),
        )

    def clear(self) -> None:
        self.points = []
        self.weights = []


class StreamLSClusterer(StreamingClusterer):
    """Divide-and-conquer streaming clusterer.

    Parameters
    ----------
    k:
        Number of centers returned by queries.
    chunk_size:
        Number of raw points per chunk (defaults to ``40 * k``).
    fanout:
        How many sets of ``k`` representatives accumulate at a level before
        they are re-clustered into the next level.
    seed:
        Seed for all internal k-means++ runs.
    """

    checkpoint_name = "streamls"

    def __init__(
        self,
        k: int,
        chunk_size: int | None = None,
        fanout: int = 10,
        seed: int | None = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.k = k
        self.chunk_size = chunk_size if chunk_size is not None else 40 * k
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.fanout = fanout
        self._buffer = BucketBuffer(self.chunk_size)
        self._levels: list[_WeightedLevel] = []
        self._points_seen = 0
        self._dimension: int | None = None
        self._rng = np.random.default_rng(seed)

    @property
    def points_seen(self) -> int:
        """Total number of stream points observed so far."""
        return self._points_seen

    def insert(self, point: np.ndarray) -> None:
        """Buffer one point; cluster the chunk when the buffer fills."""
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        self._dimension = require_dimension(self._dimension, row.shape[0], what="point")
        self._buffer.append(row)
        self._points_seen += 1
        if self._buffer.is_full:
            self._flush_chunk()

    def insert_batch(self, points: np.ndarray) -> None:
        """Insert a batch: full chunks are zero-copy slices of the input."""
        arr = coerce_batch(points)
        if arr.shape[0] == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        self._points_seen += arr.shape[0]
        for block in self._buffer.take_full_blocks(arr):
            self._cluster_chunk(block)

    def query(self) -> QueryResult:
        """Cluster the union of buffered points and retained representatives."""
        points, weights = self._collect_all()
        if points.shape[0] == 0:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        result = weighted_kmeans(
            points, self.k, weights=weights, n_init=3, rng=self._rng
        )
        return QueryResult(
            centers=result.centers,
            coreset_points=points.shape[0],
            from_cache=False,
        )

    def stored_points(self) -> int:
        """Buffered raw points plus all retained weighted representatives."""
        return self._buffer.size + sum(level.size for level in self._levels)

    def _flush_chunk(self) -> None:
        self._cluster_chunk(self._buffer.drain())

    def _cluster_chunk(self, points: np.ndarray) -> None:
        weights = np.ones(points.shape[0], dtype=np.float64)
        self._promote(0, points, weights)

    def _promote(self, level_index: int, points: np.ndarray, weights: np.ndarray) -> None:
        representatives, rep_weights = self._summarise(points, weights)
        while len(self._levels) <= level_index:
            self._levels.append(_WeightedLevel(self._dimension or points.shape[1]))
        level = self._levels[level_index]
        level.extend(representatives, rep_weights)
        if level.size >= self.fanout * self.k:
            merged_points, merged_weights = level.as_arrays()
            level.clear()
            self._promote(level_index + 1, merged_points, merged_weights)

    def _summarise(
        self, points: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cluster a weighted set into ``k`` representatives carrying its weight."""
        result = weighted_kmeans(
            points, self.k, weights=weights, n_init=2, rng=self._rng
        )
        labels, _ = assign_points(points, result.centers)
        rep_weights = weighted_bincount(labels, weights, result.centers.shape[0])
        occupied = rep_weights > 0
        return result.centers[occupied], rep_weights[occupied]

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        return {"k": self.k, "chunk_size": self.chunk_size, "fanout": self.fanout}

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        levels = []
        for level in self._levels:
            points, weights = (None, None) if level.size == 0 else level.as_arrays()
            levels.append(
                {"dimension": level.dimension, "points": points, "weights": weights}
            )
        return {
            "points_seen": self._points_seen,
            "dimension": self._dimension,
            "buffer": self._buffer.state_dict(),
            "rng": rng_state(self._rng),
            "levels": levels,
        }

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        from ..checkpoint.state import rng_from_state

        cls._reject_overrides(overrides)
        config = manifest["config"]
        clusterer = cls(
            int(config["k"]),
            chunk_size=int(config["chunk_size"]),
            fanout=int(config["fanout"]),
        )
        clusterer._points_seen = int(state["points_seen"])
        clusterer._dimension = (
            None if state["dimension"] is None else int(state["dimension"])
        )
        clusterer._buffer.load_state(state["buffer"])
        clusterer._rng = rng_from_state(state["rng"])
        for entry in state["levels"]:
            level = _WeightedLevel(int(entry["dimension"]))
            if entry["points"] is not None:
                level.extend(entry["points"], entry["weights"])
            clusterer._levels.append(level)
        return clusterer

    def _collect_all(self) -> tuple[np.ndarray, np.ndarray]:
        pieces: list[np.ndarray] = []
        weight_pieces: list[np.ndarray] = []
        if not self._buffer.is_empty:
            buffered = self._buffer.snapshot()
            pieces.append(buffered)
            weight_pieces.append(np.ones(buffered.shape[0], dtype=np.float64))
        for level in self._levels:
            if level.size:
                pts, wts = level.as_arrays()
                pieces.append(pts)
                weight_pieces.append(wts)
        if not pieces:
            dim = self._dimension or 1
            return np.empty((0, dim)), np.empty(0)
        return np.vstack(pieces), np.concatenate(weight_pieces)
