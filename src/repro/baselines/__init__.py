"""Baseline streaming clustering algorithms the paper compares against."""

from .birch import BirchClusterer, ClusteringFeature
from .clustream import CluStreamClusterer, MicroCluster
from .sequential import SequentialKMeans
from .streamkmpp import StreamKMpp, streamkmpp_config
from .streamls import StreamLSClusterer

__all__ = [
    "BirchClusterer",
    "ClusteringFeature",
    "CluStreamClusterer",
    "MicroCluster",
    "SequentialKMeans",
    "StreamKMpp",
    "streamkmpp_config",
    "StreamLSClusterer",
]
