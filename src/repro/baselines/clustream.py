"""CluStream-style microcluster clustering (Aggarwal et al., VLDB 2003).

Related-work substrate: the online phase maintains a fixed budget of
*microclusters* (clustering features extended with timestamps).  An arriving
point joins its nearest microcluster when it falls within that microcluster's
maximum boundary (a multiple of its RMS radius); otherwise a new microcluster
is created and room is made by either deleting the stalest microcluster or
merging the two closest ones.  The offline phase answers queries by running a
weighted k-means over the microcluster centroids.
"""

from __future__ import annotations

import numpy as np

from ..core.base import QueryResult, StreamingClusterer, coerce_batch, require_dimension
from ..kmeans.batch import weighted_kmeans

__all__ = ["MicroCluster", "CluStreamClusterer"]


class MicroCluster:
    """A CluStream microcluster: CF statistics plus time statistics."""

    __slots__ = ("count", "linear_sum", "square_sum", "time_sum", "last_update")

    def __init__(self, point: np.ndarray, timestamp: int) -> None:
        p = np.asarray(point, dtype=np.float64)
        self.count = 1.0
        self.linear_sum = p.copy()
        self.square_sum = float(np.dot(p, p))
        self.time_sum = float(timestamp)
        self.last_update = timestamp

    @property
    def centroid(self) -> np.ndarray:
        """Mean of absorbed points."""
        return self.linear_sum / self.count

    @property
    def rms_radius(self) -> float:
        """Root-mean-square deviation of absorbed points from the centroid."""
        centroid = self.centroid
        variance = self.square_sum / self.count - float(np.dot(centroid, centroid))
        return float(np.sqrt(max(variance, 0.0)))

    @property
    def mean_timestamp(self) -> float:
        """Average arrival time of absorbed points (recency measure)."""
        return self.time_sum / self.count

    def absorb(self, point: np.ndarray, timestamp: int) -> None:
        """Add one point observed at ``timestamp``."""
        p = np.asarray(point, dtype=np.float64)
        self.count += 1.0
        self.linear_sum += p
        self.square_sum += float(np.dot(p, p))
        self.time_sum += float(timestamp)
        self.last_update = timestamp

    def merge(self, other: "MicroCluster") -> None:
        """Merge another microcluster into this one."""
        self.count += other.count
        self.linear_sum += other.linear_sum
        self.square_sum += other.square_sum
        self.time_sum += other.time_sum
        self.last_update = max(self.last_update, other.last_update)


class CluStreamClusterer(StreamingClusterer):
    """Streaming clusterer with a bounded set of microclusters.

    Parameters
    ----------
    k:
        Number of centers returned by queries.
    num_microclusters:
        Budget of microclusters (the paper's ``q``, typically 10x–100x ``k``).
    boundary_factor:
        A point joins its nearest microcluster if its distance to the
        centroid is at most ``boundary_factor * rms_radius`` (singleton
        microclusters use the distance to the closest other centroid).
    recency_horizon:
        A microcluster whose mean timestamp is more than this many points old
        is considered stale and may be deleted to make room.
    seed:
        Seed for the query-time k-means.
    """

    checkpoint_name = "clustream"

    def __init__(
        self,
        k: int,
        num_microclusters: int | None = None,
        boundary_factor: float = 2.0,
        recency_horizon: int = 5000,
        seed: int | None = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.num_microclusters = num_microclusters if num_microclusters is not None else 10 * k
        if self.num_microclusters < k:
            raise ValueError("num_microclusters must be at least k")
        self.boundary_factor = boundary_factor
        self.recency_horizon = recency_horizon
        self._clusters: list[MicroCluster] = []
        self._points_seen = 0
        self._dimension: int | None = None
        self._rng = np.random.default_rng(seed)

    @property
    def points_seen(self) -> int:
        """Total number of stream points observed so far."""
        return self._points_seen

    @property
    def num_active_microclusters(self) -> int:
        """Number of microclusters currently maintained."""
        return len(self._clusters)

    def insert(self, point: np.ndarray) -> None:
        """Route one point to a microcluster (absorb, or create + make room)."""
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        self._dimension = require_dimension(self._dimension, row.shape[0], what="point")
        self._insert_row(row)

    def insert_batch(self, points: np.ndarray) -> None:
        """Route a batch of points (validation paid once per batch).

        Microcluster maintenance is order-dependent (absorption changes the
        centroid and radius later points are tested against), so routing
        stays a loop over pre-coerced rows.
        """
        arr = coerce_batch(points)
        if arr.shape[0] == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        for row in arr:
            self._insert_row(row)

    def _insert_row(self, row: np.ndarray) -> None:
        self._points_seen += 1
        timestamp = self._points_seen

        if not self._clusters:
            self._clusters.append(MicroCluster(row, timestamp))
            return

        centroids = np.vstack([mc.centroid for mc in self._clusters])
        diffs = centroids - row[None, :]
        distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        nearest = int(np.argmin(distances))
        boundary = self._boundary(nearest, distances)

        if distances[nearest] <= boundary:
            self._clusters[nearest].absorb(row, timestamp)
            return

        self._clusters.append(MicroCluster(row, timestamp))
        if len(self._clusters) > self.num_microclusters:
            self._make_room(timestamp)

    def query(self) -> QueryResult:
        """Offline phase: weighted k-means over microcluster centroids."""
        if not self._clusters:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        centroids = np.vstack([mc.centroid for mc in self._clusters])
        weights = np.array([mc.count for mc in self._clusters], dtype=np.float64)
        result = weighted_kmeans(
            centroids, self.k, weights=weights, n_init=3, rng=self._rng
        )
        return QueryResult(
            centers=result.centers,
            coreset_points=centroids.shape[0],
            from_cache=False,
        )

    def stored_points(self) -> int:
        """Each microcluster stores the equivalent of one weighted point."""
        return len(self._clusters)

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        return {
            "k": self.k,
            "num_microclusters": self.num_microclusters,
            "boundary_factor": self.boundary_factor,
            "recency_horizon": self.recency_horizon,
        }

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        clusters = None
        if self._clusters:
            clusters = {
                "counts": np.array([mc.count for mc in self._clusters]),
                "linear_sums": np.vstack([mc.linear_sum for mc in self._clusters]),
                "square_sums": np.array([mc.square_sum for mc in self._clusters]),
                "time_sums": np.array([mc.time_sum for mc in self._clusters]),
                "last_updates": np.array(
                    [mc.last_update for mc in self._clusters], dtype=np.int64
                ),
            }
        return {
            "points_seen": self._points_seen,
            "dimension": self._dimension,
            "rng": rng_state(self._rng),
            "clusters": clusters,
        }

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        from ..checkpoint.state import rng_from_state

        cls._reject_overrides(overrides)
        config = manifest["config"]
        clusterer = cls(
            int(config["k"]),
            num_microclusters=int(config["num_microclusters"]),
            boundary_factor=float(config["boundary_factor"]),
            recency_horizon=int(config["recency_horizon"]),
        )
        clusterer._points_seen = int(state["points_seen"])
        clusterer._dimension = (
            None if state["dimension"] is None else int(state["dimension"])
        )
        clusterer._rng = rng_from_state(state["rng"])
        clusters = state["clusters"]
        if clusters is not None:
            for count, linear_sum, square_sum, time_sum, last_update in zip(
                clusters["counts"],
                clusters["linear_sums"],
                clusters["square_sums"],
                clusters["time_sums"],
                clusters["last_updates"],
            ):
                mc = MicroCluster(linear_sum, 0)  # placeholder stats, overwritten
                mc.count = float(count)
                mc.linear_sum = np.asarray(linear_sum, dtype=np.float64).copy()
                mc.square_sum = float(square_sum)
                mc.time_sum = float(time_sum)
                mc.last_update = int(last_update)
                clusterer._clusters.append(mc)
        return clusterer

    def _boundary(self, index: int, distances: np.ndarray) -> float:
        cluster = self._clusters[index]
        if cluster.count > 1:
            return self.boundary_factor * max(cluster.rms_radius, 1e-12)
        # Singleton: use half the distance to the closest *other* centroid
        # (the usual CluStream proxy for an unknown radius; the half keeps a
        # lone microcluster from annexing a neighbouring cluster outright).
        # With no other microcluster yet, force a new one to be created.
        if distances.shape[0] == 1:
            return 0.0
        others = np.delete(distances, index)
        return 0.5 * float(np.min(others))

    def _make_room(self, timestamp: int) -> None:
        """Delete the stalest microcluster, or merge the two closest ones."""
        stalest = min(range(len(self._clusters)), key=lambda i: self._clusters[i].mean_timestamp)
        if timestamp - self._clusters[stalest].mean_timestamp > self.recency_horizon:
            del self._clusters[stalest]
            return
        centroids = np.vstack([mc.centroid for mc in self._clusters])
        diffs = centroids[:, None, :] - centroids[None, :, :]
        sq = np.einsum("ijk,ijk->ij", diffs, diffs)
        np.fill_diagonal(sq, np.inf)
        i, j = np.unravel_index(int(np.argmin(sq)), sq.shape)
        keep, drop = (i, j) if i < j else (j, i)
        self._clusters[keep].merge(self._clusters[drop])
        del self._clusters[drop]
