"""Deterministic fault injection: one seeded schedule, many failure modes.

Every robustness test in ``tests/resilience/`` speaks this small DSL
instead of hand-rolling monkeypatches.  A :class:`ChaosSchedule` is a list
of :class:`Fault` records — *kill the process worker at batch 7, tear the
WAL record at batch 12 after 9 bytes, fail the batch-20 snapshot with
ENOSPC* — generated either explicitly or by :meth:`ChaosSchedule.storm`
from a seed (the CI matrix varies ``REPRO_CHAOS_SEED``).  A
:class:`ChaosController` then drives a supervised ingest run, arming each
fault through the seams the production code already exposes:

========================  ====================================================
fault kind                injection seam
========================  ====================================================
``crash_before_insert``   :class:`WriteAheadLog` ``write_hook`` (full record
                          durable, then :class:`SimulatedCrash`)
``torn_wal``              ``write_hook`` truncating the record mid-byte, then
                          :class:`SimulatedCrash`
``kill_worker``           caller-provided callback (e.g. terminate a process
                          backend shard)
``disk_full``             :class:`~repro.checkpoint.store.Filesystem` shim
                          raising ``ENOSPC`` during the snapshot
``corrupt_checkpoint``    flips bytes in the newest snapshot's payload after
                          the step (recovery must fall back past it)
========================  ====================================================

Client-connection faults (drop / delay) are injected at the socket layer by
:class:`FlakyProxy`, a tiny TCP proxy the serving tests put between client
and server.

Everything is deterministic given the schedule: same seed → same faults at
the same batches → bit-identical recovery, which is what the equivalence
properties assert.
"""

from __future__ import annotations

import contextlib
import errno
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..checkpoint.store import (
    STATE_NAME,
    Filesystem,
    list_checkpoints,
    use_filesystem,
)

__all__ = [
    "SimulatedCrash",
    "Fault",
    "ChaosSchedule",
    "ChaosController",
    "FlakyProxy",
    "corrupt_file",
    "chaos_seed_from_env",
]

#: The fault kinds :class:`ChaosController` understands.
FAULT_KINDS = (
    "crash_before_insert",
    "torn_wal",
    "kill_worker",
    "disk_full",
    "corrupt_checkpoint",
)


class SimulatedCrash(RuntimeError):
    """The injected stand-in for a whole-process death at a chosen instant."""


@dataclass(frozen=True)
class Fault:
    """One scheduled failure.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at_batch:
        0-based index of the ingest batch the fault fires on.
    detail:
        Kind-specific parameter: bytes of the record to keep for
        ``torn_wal`` (-1 = all but the last byte), the shard index for
        ``kill_worker``, the payload byte to flip for ``corrupt_checkpoint``.
    """

    kind: str
    at_batch: int
    detail: int = -1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_batch < 0:
            raise ValueError(f"at_batch must be >= 0, got {self.at_batch}")


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered, immutable set of faults for one run."""

    faults: tuple[Fault, ...]

    @classmethod
    def of(cls, *faults: Fault) -> "ChaosSchedule":
        """Build a schedule from explicit faults."""
        return cls(faults=tuple(faults))

    @classmethod
    def storm(
        cls,
        seed: int,
        num_batches: int,
        *,
        faults_per_kind: int = 2,
        kinds: tuple[str, ...] = FAULT_KINDS,
        num_shards: int = 2,
    ) -> "ChaosSchedule":
        """A randomized-but-deterministic fault storm.

        Draws ``faults_per_kind`` faults of each requested kind at distinct
        batches of ``[1, num_batches)`` (batch 0 is spared so every run has
        at least one clean publication to degrade onto).  The same
        ``seed`` always yields the same storm — the CI matrix's
        ``REPRO_CHAOS_SEED`` is fed straight in here.
        """
        rng = np.random.default_rng(seed)
        batches = list(range(1, max(num_batches, 2)))
        faults: list[Fault] = []
        for kind in kinds:
            for _ in range(faults_per_kind):
                if not batches:
                    break
                at = int(batches.pop(int(rng.integers(len(batches)))))
                if kind == "torn_wal":
                    detail = int(rng.integers(1, 64))
                elif kind == "kill_worker":
                    detail = int(rng.integers(num_shards))
                elif kind == "corrupt_checkpoint":
                    detail = int(rng.integers(64, 512))
                else:
                    detail = -1
                faults.append(Fault(kind=kind, at_batch=at, detail=detail))
        return cls(faults=tuple(sorted(faults, key=lambda f: f.at_batch)))

    def at(self, batch: int) -> list[Fault]:
        """Faults scheduled for ``batch``."""
        return [fault for fault in self.faults if fault.at_batch == batch]


class _DiskFullFilesystem(Filesystem):
    """Checkpoint filesystem that has run out of space."""

    def savez(self, path: Path, arrays: dict) -> None:
        """Refuse every payload write with ENOSPC."""
        raise OSError(errno.ENOSPC, "no space left on device (injected)", str(path))


def corrupt_file(path: str | Path, offset: int = 128) -> None:
    """Flip one byte of ``path`` in place (checkpoint-corruption primitive)."""
    target = Path(path)
    data = bytearray(target.read_bytes())
    if not data:
        return
    index = min(max(offset, 0), len(data) - 1)
    data[index] ^= 0xFF
    target.write_bytes(bytes(data))


@dataclass
class ChaosController:
    """Arms a :class:`ChaosSchedule` against one supervised ingest run.

    Use :meth:`wal_write_hook` as the supervisor's ``wal_write_hook`` and
    drive batches through :meth:`step`; the controller fires each batch's
    faults exactly once and records what it did in :attr:`fired`.

    Attributes
    ----------
    schedule:
        The faults to inject.
    kill_worker:
        Callback for ``kill_worker`` faults (receives the shard index);
        ``None`` skips those faults (recorded as skipped).
    """

    schedule: ChaosSchedule
    kill_worker: object = None
    fired: list[str] = field(default_factory=list)
    _current_batch: int = field(default=-1, repr=False)
    _armed_wal: Fault | None = field(default=None, repr=False)

    def wal_write_hook(
        self, seq: int, record_bytes: bytes
    ) -> tuple[bytes, BaseException | None]:
        """The :class:`WriteAheadLog` seam: tear or crash the armed append."""
        fault = self._armed_wal
        if fault is None:
            return record_bytes, None
        self._armed_wal = None
        if fault.kind == "torn_wal":
            keep = fault.detail if fault.detail >= 0 else len(record_bytes) - 1
            keep = min(max(keep, 0), len(record_bytes) - 1)
            self.fired.append(f"torn_wal@{fault.at_batch}:{keep}B")
            return record_bytes[:keep], SimulatedCrash(
                f"torn WAL write at batch {fault.at_batch} ({keep} bytes kept)"
            )
        self.fired.append(f"crash_before_insert@{fault.at_batch}")
        return record_bytes, SimulatedCrash(
            f"crash after durable append at batch {fault.at_batch}"
        )

    def step(self, supervisor, batch_index: int, batch: np.ndarray) -> None:
        """Ingest one batch with this batch's faults armed.

        ``crash_before_insert`` and ``torn_wal`` crash the writer *inside*
        the supervisor, which recovers in place — so a completed
        :meth:`step` always means the batch is durably applied (the
        zero-lost-batches assertion of the soak gate).
        """
        faults = self.schedule.at(batch_index)
        self._current_batch = batch_index
        self._armed_wal = next(
            (f for f in faults if f.kind in ("crash_before_insert", "torn_wal")),
            None,
        )
        for fault in faults:
            if fault.kind == "kill_worker":
                if self.kill_worker is None:
                    self.fired.append(f"kill_worker@{fault.at_batch}:skipped")
                else:
                    self.kill_worker(fault.detail)
                    self.fired.append(f"kill_worker@{fault.at_batch}:{fault.detail}")
        disk_full = any(f.kind == "disk_full" for f in faults)
        context = (
            use_filesystem(_DiskFullFilesystem())
            if disk_full
            else contextlib.nullcontext()
        )
        if disk_full:
            self.fired.append(f"disk_full@{batch_index}")
        with context:
            supervisor.ingest(batch)
        self._armed_wal = None
        for fault in faults:
            if fault.kind == "corrupt_checkpoint":
                snapshots = list_checkpoints(supervisor.store.root)
                if snapshots:
                    corrupt_file(snapshots[-1] / STATE_NAME, offset=fault.detail)
                    self.fired.append(
                        f"corrupt_checkpoint@{batch_index}:{snapshots[-1].name}"
                    )
                else:
                    self.fired.append(f"corrupt_checkpoint@{batch_index}:skipped")

    def drive(self, supervisor, batches) -> int:
        """Run a whole batch sequence through :meth:`step`; returns batch count."""
        count = 0
        for index, batch in enumerate(batches):
            self.step(supervisor, index, batch)
            count += 1
        return count


class FlakyProxy:
    """A deterministic TCP chokepoint between a client and the server.

    Accepts connections on its own port and forwards byte streams to the
    upstream server, injecting per-connection faults from a seeded RNG:
    with probability ``drop_rate`` a connection is accepted then severed
    mid-flight (after ``drop_after_bytes`` of response), and each forwarded
    chunk is delayed by ``delay_s``.  This exercises the client's
    timeout-then-reconnect-and-retry path without ever touching server
    internals.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        seed: int = 0,
        drop_rate: float = 0.0,
        drop_after_bytes: int = 0,
        delay_s: float = 0.0,
    ) -> None:
        self._upstream = (upstream_host, upstream_port)
        self._rng = np.random.default_rng(seed)
        self._drop_rate = drop_rate
        self._drop_after_bytes = drop_after_bytes
        self._delay_s = delay_s
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._halt = threading.Event()
        self.connections = 0
        self.dropped = 0
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-flaky-proxy", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._halt.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            doomed = bool(self._rng.random() < self._drop_rate)
            worker = threading.Thread(
                target=self._serve, args=(client, doomed), daemon=True
            )
            worker.start()
            self._threads.append(worker)

    def _serve(self, client: socket.socket, doomed: bool) -> None:
        try:
            upstream = socket.create_connection(self._upstream, timeout=5.0)
        except OSError:
            client.close()
            return
        if doomed:
            self.dropped += 1
        halt = threading.Event()

        def pump(src: socket.socket, dst: socket.socket, meter: bool) -> None:
            moved = 0
            try:
                while not halt.is_set():
                    src.settimeout(0.2)
                    try:
                        chunk = src.recv(4096)
                    except socket.timeout:
                        continue
                    except OSError:
                        break
                    if not chunk:
                        break
                    if self._delay_s:
                        time.sleep(self._delay_s)
                    if meter and doomed and moved + len(chunk) > self._drop_after_bytes:
                        break  # sever mid-response
                    dst.sendall(chunk)
                    moved += len(chunk)
            finally:
                halt.set()
                for sock in (src, dst):
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    sock.close()

        up = threading.Thread(target=pump, args=(client, upstream, False), daemon=True)
        down = threading.Thread(target=pump, args=(upstream, client, True), daemon=True)
        up.start()
        down.start()

    def close(self) -> None:
        """Stop accepting and tear down the proxy."""
        self._halt.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "FlakyProxy":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def chaos_seed_from_env(default: int = 0) -> int:
    """The CI matrix's ``REPRO_CHAOS_SEED`` (or ``default``)."""
    return int(os.environ.get("REPRO_CHAOS_SEED", default))
