"""Supervised durable ingest: journal, checkpoint, recover, keep serving.

:class:`IngestSupervisor` is the control loop that turns the pieces —
:class:`~repro.resilience.wal.WriteAheadLog`,
:class:`~repro.checkpoint.store.CheckpointStore`,
:class:`~repro.serving.plane.ServingPlane` — into one crash-tolerant
pipeline (structurally after elspeth's orchestrator/executors split: the
supervisor owns lifecycle and policy, the plane/clusterer own the work):

* every accepted batch is journaled **write-ahead** (append, then insert),
  so the set {checkpoint, WAL} always covers every acknowledged point;
* checkpoints are written through a rotating retention store
  (``keep_last``) and each success truncates the journal's covered prefix;
* when the writer dies (a crashed worker backend, a poisoned batch, a
  simulated whole-process crash from the chaos harness), recovery restores
  the newest *good* snapshot — automatically falling back past a corrupt
  one — replays the journal on top, and :meth:`~ServingPlane.adopt`\\ s the
  rebuilt clusterer into the live plane, bit-identical to a run that never
  crashed.  Readers keep answering from the last published snapshot the
  whole time;
* restarts are budgeted: seeded-jitter exponential backoff between
  attempts, a bounded number of restarts per rolling window, and an
  explicit :class:`HealthState` (``LIVE / DEGRADED / RECOVERING / DOWN``)
  that the serving server exposes through its ``health`` op.

See ``docs/operations.md`` ("Durable ingest") for the runbook.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Callable

import numpy as np

from ..checkpoint import CheckpointError, load_checkpoint
from ..checkpoint.store import (
    CheckpointStore,
    checkpoint_position,
    prune_checkpoints,
    validate_checkpoint,
)
from ..serving.plane import ServingPlane
from .wal import WriteAheadLog, replay_wal

__all__ = [
    "HealthState",
    "RestartPolicy",
    "RecoveryEvent",
    "SupervisorError",
    "IngestSupervisor",
    "DurableIngestLoop",
]


class HealthState(str, Enum):
    """Health of the supervised ingest pipeline.

    ``LIVE``
        Ingesting and publishing normally.
    ``RECOVERING``
        A writer failure was detected; restore + replay is in progress.
    ``DEGRADED``
        Ingest is halted (restart budget exhausted, or the feeding loop
        died) but queries are still answerable from the last published
        snapshot — the degraded-serving mode.
    ``DOWN``
        Nothing to serve: ingest is halted *and* no snapshot was ever
        published.
    """

    LIVE = "live"
    RECOVERING = "recovering"
    DEGRADED = "degraded"
    DOWN = "down"


class SupervisorError(RuntimeError):
    """Recovery failed permanently (restart budget exhausted or bad state)."""


@dataclass(frozen=True)
class RestartPolicy:
    """Budgeted, jittered restart behaviour for the supervisor.

    Attributes
    ----------
    max_restarts:
        Restarts allowed inside any rolling ``window_s`` before the
        supervisor gives up and degrades (0 disables recovery entirely).
    window_s:
        The rolling window the budget applies to.
    backoff_base_s / backoff_cap_s:
        Attempt ``n`` sleeps a uniform draw from
        ``[0, min(cap, base * 2**n)]`` — full jitter, so a fleet of
        supervisors restarting after one shared incident decorrelates.
    seed:
        Seeds the jitter RNG (deterministic chaos runs); ``None`` draws
        from the system RNG.
    """

    max_restarts: int = 5
    window_s: float = 60.0
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 1.0
    seed: int | None = None

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered backoff before restart ``attempt`` (0-based)."""
        ceiling = min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** attempt))
        return rng.uniform(0.0, ceiling)


@dataclass
class RecoveryEvent:
    """One completed recovery, for observability and the chaos assertions."""

    cause: str
    restored_from: str | None
    replayed_records: int
    replayed_points: int
    reapplied_inflight: bool
    attempts: int
    duration_s: float


@dataclass
class SupervisorStats:
    """Monotonic counters for the supervised pipeline."""

    batches_ingested: int = 0
    points_ingested: int = 0
    checkpoints_written: int = 0
    checkpoint_failures: int = 0
    recoveries: int = 0
    events: list[RecoveryEvent] = field(default_factory=list)


class IngestSupervisor:
    """Durable, self-healing writer for a :class:`ServingPlane`.

    Parameters
    ----------
    plane:
        The serving plane whose clusterer this supervisor feeds.  The plane
        object stays stable across recoveries (readers and servers keep
        their reference); only the wrapped clusterer is swapped via
        :meth:`ServingPlane.adopt`.
    store:
        Rotating checkpoint store (retention included).
    wal_dir:
        Journal directory for the write-ahead log.
    clusterer_factory:
        Builds a fresh, empty clusterer for cold recovery — a crash before
        the first checkpoint replays the whole journal onto this.
    checkpoint_every_batches:
        Write a retained checkpoint (and truncate the journal) every N
        accepted batches; ``None`` checkpoints only on :meth:`checkpoint` /
        :meth:`close` calls.
    fsync_every:
        Journal durability knob (see :class:`WriteAheadLog`).
    policy:
        Restart budget and backoff.
    annotations:
        Stream-identity annotations stamped into every checkpoint.
    restore_overrides:
        Forwarded to ``load_checkpoint`` during recovery (e.g.
        ``backend="thread"``).
    wal_write_hook:
        Chaos seam forwarded to every :class:`WriteAheadLog` incarnation.
    """

    def __init__(
        self,
        plane: ServingPlane,
        store: CheckpointStore,
        wal_dir: str | Path,
        *,
        clusterer_factory: Callable[[], object] | None = None,
        checkpoint_every_batches: int | None = None,
        fsync_every: int = 8,
        policy: RestartPolicy | None = None,
        annotations: dict | None = None,
        restore_overrides: dict | None = None,
        wal_write_hook: Callable | None = None,
    ) -> None:
        if checkpoint_every_batches is not None and checkpoint_every_batches < 1:
            raise ValueError("checkpoint_every_batches must be >= 1 (or None)")
        self._plane = plane
        self._store = store
        self._wal_dir = Path(wal_dir)
        self._factory = clusterer_factory
        self._checkpoint_every = checkpoint_every_batches
        self._fsync_every = fsync_every
        self._policy = policy or RestartPolicy()
        self._annotations = dict(annotations) if annotations else None
        self._restore_overrides = dict(restore_overrides) if restore_overrides else {}
        self._wal_write_hook = wal_write_hook
        self._wal = self._open_wal()
        self._restart_times: deque[float] = deque()
        self._jitter = random.Random(self._policy.seed)
        self._batches_since_checkpoint = 0
        self._lock = threading.Lock()
        self._state = HealthState.LIVE
        self.stats = SupervisorStats()
        self.last_error: str | None = None

    # -- introspection -------------------------------------------------------

    @property
    def plane(self) -> ServingPlane:
        """The supervised serving plane."""
        return self._plane

    @property
    def wal(self) -> WriteAheadLog:
        """The current journal incarnation (replaced on recovery)."""
        return self._wal

    @property
    def store(self) -> CheckpointStore:
        """The rotating checkpoint store."""
        return self._store

    def health(self) -> HealthState:
        """Current pipeline health (what the server's ``health`` op reports)."""
        state = self._state
        if state is HealthState.DEGRADED and self._plane.publisher.latest is None:
            return HealthState.DOWN
        return state

    # -- durability plumbing -------------------------------------------------

    def _open_wal(self) -> WriteAheadLog:
        return WriteAheadLog(
            self._wal_dir,
            fsync_every=self._fsync_every,
            write_hook=self._wal_write_hook,
        )

    def _reopen_wal(self) -> None:
        # Mimic a process restart: never touch the crashed incarnation's
        # tail; a fresh WriteAheadLog always appends into a new segment.
        try:
            self._wal.close()
        except Exception:  # noqa: BLE001 - the old handle may be poisoned
            pass
        self._wal = self._open_wal()

    # -- ingest path ---------------------------------------------------------

    def ingest(self, batch: np.ndarray) -> None:
        """Journal then apply one batch, recovering the writer on failure.

        Write-ahead ordering: the journal append happens first, so once
        this method returns the batch survives any crash; if the append
        itself is torn by a crash, the batch was never applied either and
        the journal tail is discarded on replay — state and journal agree
        at every byte.
        """
        data = np.asarray(batch)
        with self._lock:
            position = self._plane.points_ingested
            try:
                self._wal.append(data, position)
                self._plane.ingest(data)
            except Exception as exc:  # noqa: BLE001 - any writer death routes here
                self._recover_locked(data, position, exc)
            self._state = HealthState.LIVE
            self.stats.batches_ingested += 1
            self.stats.points_ingested += int(data.shape[0])
            self._batches_since_checkpoint += 1
            if (
                self._checkpoint_every is not None
                and self._batches_since_checkpoint >= self._checkpoint_every
            ):
                self._checkpoint_locked()

    def checkpoint(self) -> Path | None:
        """Write a retained snapshot now and truncate the journal behind it."""
        with self._lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> Path | None:
        position = self._plane.points_ingested
        if position == 0:
            return None
        try:
            path = self._plane.snapshot(
                self._store.path_for(position), annotations=self._annotations
            )
            prune_checkpoints(self._store.root, self._store.keep_last)
        except CheckpointError as exc:
            # A failed snapshot (disk-full, for one) is NOT fatal: the
            # journal still covers everything since the last good one, so
            # ingest and serving continue — just with a longer replay.
            self.stats.checkpoint_failures += 1
            self.last_error = f"checkpoint failed: {exc}"
            self._batches_since_checkpoint = 0
            return None
        # Truncate only through the newest *validated-good* snapshot that is
        # not the newest one: if the journal stopped exactly at the newest
        # snapshot, that snapshot would be a single point of failure —
        # corrupt it and the points since the previous one are
        # unrecoverable.  Keeping one checkpoint interval of journal costs
        # little and makes "fall back past a corrupt newest snapshot"
        # always replayable.
        retained = self._store.list()
        for fallback in reversed(retained[:-1]):
            try:
                validate_checkpoint(fallback)
            except CheckpointError:
                continue
            self._wal.truncate_through(checkpoint_position(fallback))
            break
        self.stats.checkpoints_written += 1
        self._batches_since_checkpoint = 0
        return path

    # -- recovery ------------------------------------------------------------

    def _budget_exhausted(self, now: float) -> bool:
        while self._restart_times and now - self._restart_times[0] > self._policy.window_s:
            self._restart_times.popleft()
        return len(self._restart_times) >= self._policy.max_restarts

    def _recover_locked(
        self, batch: np.ndarray, position: int, cause: BaseException
    ) -> None:
        self._state = HealthState.RECOVERING
        started = time.monotonic()
        attempt = 0
        while True:
            now = time.monotonic()
            if self._budget_exhausted(now):
                self._state = HealthState.DEGRADED
                self.last_error = (
                    f"restart budget exhausted ({self._policy.max_restarts} in "
                    f"{self._policy.window_s:.0f}s) after {type(cause).__name__}: {cause}"
                )
                raise SupervisorError(self.last_error) from cause
            self._restart_times.append(now)
            delay = self._policy.delay(attempt, self._jitter)
            if delay > 0:
                time.sleep(delay)
            try:
                restored_from, replayed_records, replayed_points = self._rebuild()
                break
            except Exception as exc:  # noqa: BLE001 - retry within budget
                self.last_error = f"recovery attempt failed: {exc}"
                attempt += 1

        # Exactly-once for the in-flight batch: replay either already
        # applied it (its journal record survived the crash) or stopped at
        # the pre-batch position (the record was torn / the crash hit
        # before the append) — re-journal and re-apply only in that case.
        recovered = self._plane.points_ingested
        reapplied = False
        self._reopen_wal()
        if recovered == position:
            self._wal.append(batch, position)
            self._plane.ingest(batch)
            reapplied = True
        elif recovered != position + int(batch.shape[0]):
            self._state = HealthState.DEGRADED
            raise SupervisorError(
                f"recovery produced stream position {recovered}, expected "
                f"{position} or {position + int(batch.shape[0])}: the journal "
                "and checkpoint store disagree"
            ) from cause
        self.stats.recoveries += 1
        self.stats.events.append(
            RecoveryEvent(
                cause=f"{type(cause).__name__}: {cause}",
                restored_from=restored_from,
                replayed_records=replayed_records,
                replayed_points=replayed_points,
                reapplied_inflight=reapplied,
                attempts=attempt + 1,
                duration_s=time.monotonic() - started,
            )
        )
        self._state = HealthState.LIVE

    def _rebuild(self) -> tuple[str | None, int, int]:
        """Restore the newest good snapshot, adopt it, replay the journal.

        Replay runs *through the plane* — insert **and** coreset assembly
        per batch — because assembly mutates caches and RNG streams, so the
        recovered clusterer must repeat the exact insert/assemble history
        of the uninterrupted run to come out bit-identical.  Publication
        stays monotonic (see :meth:`ServingPlane.adopt`), so readers never
        observe the replay.
        """
        snapshot = self._store.latest_good()
        if snapshot is not None:
            clusterer = load_checkpoint(snapshot, **self._restore_overrides)
            restored_from = str(snapshot)
        elif self._factory is not None:
            clusterer = self._factory()
            restored_from = None
        else:
            raise SupervisorError(
                "no good checkpoint exists and no clusterer_factory was "
                "provided for cold recovery"
            )
        self._plane.adopt(clusterer)
        replayed_records = 0
        replayed_points = 0
        for record in replay_wal(self._wal_dir, start_points=int(clusterer.points_seen)):
            self._plane.ingest(record.batch)
            replayed_records += 1
            replayed_points += record.batch.shape[0]
        return restored_from, replayed_records, replayed_points

    # -- lifecycle -----------------------------------------------------------

    def resume(self) -> RecoveryEvent | None:
        """Cold-boot recovery: restore the newest good snapshot + replay.

        Call once at startup when the store or journal may hold state from a
        previous incarnation (``repro serve --checkpoint-to`` does).  A
        blank store and journal is a no-op returning ``None``.
        """
        from .wal import wal_segments

        with self._lock:
            if self._store.latest_good() is None and not wal_segments(self._wal_dir):
                return None
            started = time.monotonic()
            restored_from, replayed_records, replayed_points = self._rebuild()
            self._reopen_wal()
            self._state = HealthState.LIVE
            event = RecoveryEvent(
                cause="startup resume",
                restored_from=restored_from,
                replayed_records=replayed_records,
                replayed_points=replayed_points,
                reapplied_inflight=False,
                attempts=1,
                duration_s=time.monotonic() - started,
            )
            self.stats.events.append(event)
            return event

    def close(self, final_checkpoint: bool = True) -> Path | None:
        """Seal the pipeline: optional final checkpoint + truncate, close WAL."""
        path = None
        with self._lock:
            if final_checkpoint:
                path = self._checkpoint_locked()
            self._wal.close()
        return path

    def __enter__(self) -> "IngestSupervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(final_checkpoint=exc_type is None)


class DurableIngestLoop(threading.Thread):
    """Drop-in for :class:`~repro.serving.loadgen.IngestLoop`, supervised.

    Feeds a (wrapping) point stream through an :class:`IngestSupervisor`
    instead of straight into the plane, so every served batch is journaled
    and the writer self-heals.  If recovery fails permanently the loop
    parks instead of dying silently — the supervisor is already DEGRADED
    and the server keeps answering from the last snapshot.
    """

    def __init__(
        self,
        supervisor: IngestSupervisor,
        points: np.ndarray,
        batch_size: int = 500,
    ) -> None:
        super().__init__(name="repro-durable-ingest", daemon=True)
        self._supervisor = supervisor
        self._points = points
        self._batch_size = batch_size
        self._halt = threading.Event()
        self._go = threading.Event()
        self._go.set()
        self.batches_ingested = 0
        self.failure: str | None = None

    def run(self) -> None:
        """Feed batches while running; park permanently on SupervisorError."""
        cursor = 0
        n = self._points.shape[0]
        while not self._halt.is_set():
            if not self._go.wait(timeout=0.05):
                continue
            end = min(cursor + self._batch_size, n)
            try:
                self._supervisor.ingest(self._points[cursor:end].copy())
            except SupervisorError as exc:
                self.failure = str(exc)
                self._halt.wait()
                return
            self.batches_ingested += 1
            cursor = end % n

    def pause(self) -> None:
        """Stop feeding (the thread stays alive)."""
        self._go.clear()

    def resume(self) -> None:
        """Resume feeding."""
        self._go.set()

    def stop(self) -> None:
        """Terminate the loop and join the thread."""
        self._halt.set()
        self._go.set()
        self.join(timeout=10.0)
