"""The write-ahead ingest journal: length-prefixed, CRC-checked segment files.

The coreset structures make durability cheap: the state worth persisting is
a few megabytes of merge-and-reduce summary (checkpoints, PR 4), so the only
thing a whole-process crash can lose is the *batches accepted since the last
checkpoint*.  This module journals exactly those.  The contract is the one
the checkpoint layer already proved, extended to crash-at-any-byte:

> **checkpoint + WAL replay ≡ uninterrupted run.**  Batch ingestion is
> split-invariant and bit-identical to per-point ingestion, so replaying the
> journaled batches (in order, from the checkpoint's stream position)
> reconstructs the clusterer *bit for bit* — coresets, RNG streams,
> warm-start state — no matter where in a record the crash landed.

On-disk layout: a directory of segment files ``wal-<index>.log``, each

.. code-block:: text

    8-byte segment header:  b"RWAL" + <u16 version> + <u16 reserved>
    record:                 <u32 payload length> <u32 CRC32(payload)> <payload>
    record: ...

and each payload is one batch::

    <u64 sequence> <u64 points_before> <u32 rows> <u32 cols> <8s dtype> <raw C-order bytes>

Records never straddle segments.  Appends go to the newest segment only;
reopening a directory after a crash always starts a *fresh* segment (the old
tail is never patched), which is what makes torn-tail detection sound: a
truncated or CRC-invalid *final* record of a segment is a torn write and is
discarded on replay, while a bad record *followed by more bytes in the same
segment* can only be real corruption and raises :class:`WalCorruption`.

Durability knob: ``fsync_every`` batches appends between ``fsync`` calls
(the classic durability/throughput trade — see ``docs/operations.md``).
Every append is flushed to the OS regardless; ``fsync_every=1`` makes each
batch power-loss durable, ``fsync_every=0`` leaves syncing to the OS.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

__all__ = [
    "WalError",
    "WalCorruption",
    "WalRecord",
    "WriteAheadLog",
    "replay_wal",
    "wal_segments",
]

#: Segment header: magic + format version (u16) + reserved (u16).
_SEGMENT_MAGIC = b"RWAL"
_SEGMENT_VERSION = 1
_SEGMENT_HEADER = _SEGMENT_MAGIC + struct.pack("<HH", _SEGMENT_VERSION, 0)
#: Per-record frame: payload length + CRC32 of the payload.
_FRAME = struct.Struct("<II")
#: Payload header: sequence, points_before, rows, cols, dtype (8-byte ascii).
_PAYLOAD = struct.Struct("<QQII8s")
#: Hard cap on a single record payload (a routed batch is far smaller).
_MAX_PAYLOAD = 1 << 31


class WalError(RuntimeError):
    """A journal could not be written, rotated, truncated, or replayed."""


class WalCorruption(WalError):
    """A journal record failed its CRC *before* the tail — real corruption.

    A bad final record is a torn write (tolerated, discarded); a bad record
    with valid bytes after it in the same segment cannot be explained by a
    crash mid-append and is refused so a silently damaged journal is never
    replayed into a serving clusterer.
    """


@dataclass(frozen=True)
class WalRecord:
    """One journaled batch, as appended and as recovered.

    Attributes
    ----------
    seq:
        Monotonic append sequence (informational; survives for debugging).
    points_before:
        The writer's stream position when the batch was accepted — replay
        uses it to skip records a checkpoint already covers and to verify
        the journal is gap-free.
    batch:
        The journaled points, bit-identical to what was accepted
        (shape ``(rows, cols)``, original dtype).
    """

    seq: int
    points_before: int
    batch: np.ndarray

    @property
    def points_after(self) -> int:
        """Stream position after this batch is applied."""
        return self.points_before + self.batch.shape[0]


def _segment_name(index: int) -> str:
    """File name of segment ``index``."""
    return f"wal-{index:08d}.log"


def wal_segments(directory: str | Path) -> list[Path]:
    """Existing segment files under ``directory``, in append order."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(root.glob("wal-*.log"))


def _encode_header(seq: int, points_before: int, batch: np.ndarray) -> bytes:
    """Serialise one batch's record metadata into the payload header."""
    dtype_tag = batch.dtype.str.encode("ascii")
    if len(dtype_tag) > 8:
        raise WalError(f"cannot journal dtype {batch.dtype} (tag longer than 8 bytes)")
    return _PAYLOAD.pack(
        seq,
        points_before,
        batch.shape[0],
        batch.shape[1],
        dtype_tag.ljust(8, b"\x00"),
    )


def _decode_payload(payload: bytes) -> WalRecord:
    """Rebuild a :class:`WalRecord` from a CRC-verified payload."""
    if len(payload) < _PAYLOAD.size:
        raise WalCorruption("journal record payload is shorter than its header")
    seq, points_before, rows, cols, dtype_tag = _PAYLOAD.unpack_from(payload)
    try:
        dtype = np.dtype(dtype_tag.rstrip(b"\x00").decode("ascii"))
    except (TypeError, UnicodeDecodeError) as exc:
        raise WalCorruption(f"journal record carries an invalid dtype tag: {exc}") from exc
    expected = _PAYLOAD.size + rows * cols * dtype.itemsize
    if len(payload) != expected:
        raise WalCorruption(
            f"journal record payload is {len(payload)} bytes, expected {expected}"
        )
    batch = np.frombuffer(payload, dtype=dtype, offset=_PAYLOAD.size)
    return WalRecord(
        seq=seq,
        points_before=points_before,
        batch=batch.reshape(rows, cols).copy(),
    )


class WriteAheadLog:
    """Appender for the ingest journal (one writer; readers use :func:`replay_wal`).

    Parameters
    ----------
    directory:
        Journal directory (created if missing).  Existing segments are left
        untouched — appends always open a fresh segment, so a torn tail from
        a previous incarnation stays where replay knows to expect it.
    fsync_every:
        ``fsync`` after every N appends (and at rotation/close).  1 makes
        every batch power-loss durable; 0 never calls fsync (flush-only).
    segment_max_bytes:
        Rotate to a new segment once the current one exceeds this size.
    write_hook:
        Fault-injection seam (chaos harness): called with the encoded record
        bytes before they are written and may return a *truncated* prefix to
        write instead, plus an exception to raise after writing — a
        deterministic torn write.  ``None`` in production.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync_every: int = 8,
        segment_max_bytes: int = 32 << 20,
        write_hook: Callable[[int, bytes], tuple[bytes, BaseException | None]] | None = None,
    ) -> None:
        if fsync_every < 0:
            raise ValueError(f"fsync_every must be >= 0, got {fsync_every}")
        if segment_max_bytes <= len(_SEGMENT_HEADER):
            raise ValueError("segment_max_bytes is too small for the segment header")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._fsync_every = fsync_every
        self._segment_max_bytes = segment_max_bytes
        self._write_hook = write_hook
        existing = wal_segments(self._directory)
        self._next_index = (
            int(existing[-1].stem.split("-")[1]) + 1 if existing else 0
        )
        self._file: io.BufferedWriter | None = None
        self._segment_bytes = 0
        self._appends_since_sync = 0
        self.next_seq = 0
        self.appended_records = 0
        self.appended_bytes = 0
        self.syncs = 0

    # -- introspection -------------------------------------------------------

    @property
    def directory(self) -> Path:
        """The journal directory."""
        return self._directory

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (or before the first append)."""
        return self._file is None

    def segments(self) -> list[Path]:
        """Current segment files, oldest first."""
        return wal_segments(self._directory)

    # -- append path ---------------------------------------------------------

    def _open_segment(self) -> None:
        path = self._directory / _segment_name(self._next_index)
        self._next_index += 1
        try:
            self._file = open(path, "xb")
            self._file.write(_SEGMENT_HEADER)
            self._file.flush()
        except OSError as exc:
            raise WalError(f"cannot open journal segment {path}: {exc}") from exc
        self._segment_bytes = len(_SEGMENT_HEADER)
        self._appends_since_sync = 0

    def append(self, batch: np.ndarray, points_before: int) -> WalRecord:
        """Journal one accepted batch; returns the durable record's metadata.

        Called *before* the batch is applied to the clusterer (write-ahead):
        a crash at any later instant replays the batch; a crash mid-append
        leaves a torn tail that replay discards — in which case the batch
        was never applied either, so the journal and the state agree.
        """
        data = np.ascontiguousarray(batch)
        if data.ndim != 2 or data.shape[0] == 0:
            raise WalError("journal batches must be non-empty 2-D arrays")
        if points_before < 0:
            raise WalError(f"points_before must be >= 0, got {points_before}")
        header = _encode_header(self.next_seq, points_before, data)
        body = memoryview(data).cast("B")
        payload_len = len(header) + len(body)
        if payload_len > _MAX_PAYLOAD:
            raise WalError(f"journal batch of {payload_len} bytes exceeds the record cap")
        # CRC and write the frame/header/body as separate buffers: the batch
        # is the overwhelming share of the record, and never copying it is
        # what keeps the append cost a single-digit share of ingest.
        crc = zlib.crc32(body, zlib.crc32(header))
        frame = _FRAME.pack(payload_len, crc)
        record_len = len(frame) + payload_len
        if self._file is None or self._segment_bytes + record_len > self._segment_max_bytes:
            self.rotate()
        fault: BaseException | None = None
        if self._write_hook is not None:
            record_bytes, fault = self._write_hook(
                self.next_seq, frame + header + bytes(body)
            )
            chunks: tuple[bytes | memoryview, ...] = (record_bytes,)
            record_len = len(record_bytes)
        else:
            chunks = (frame, header, body)
        assert self._file is not None
        try:
            for chunk in chunks:
                self._file.write(chunk)
            self._file.flush()
        except OSError as exc:
            raise WalError(f"cannot append to journal segment: {exc}") from exc
        self._segment_bytes += record_len
        if fault is not None:
            # Torn write: the truncated bytes are on disk, the caller's
            # simulated crash propagates before the record is accounted.
            raise fault
        record = WalRecord(
            seq=self.next_seq, points_before=points_before, batch=data
        )
        self.next_seq += 1
        self.appended_records += 1
        self.appended_bytes += record_len
        self._appends_since_sync += 1
        if self._fsync_every and self._appends_since_sync >= self._fsync_every:
            self.sync()
        return record

    def sync(self) -> None:
        """Force the current segment to stable storage (fsync)."""
        if self._file is None:
            return
        try:
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError as exc:
            raise WalError(f"cannot fsync journal segment: {exc}") from exc
        self._appends_since_sync = 0
        self.syncs += 1

    def rotate(self) -> None:
        """Seal the current segment (fsync) and start a fresh one."""
        if self._file is not None:
            self.sync()
            self._file.close()
        self._open_segment()

    def truncate_through(self, points_seen: int) -> int:
        """Drop every segment fully covered by a checkpoint at ``points_seen``.

        Called after a successful checkpoint: any segment whose records all
        end at or before the checkpointed stream position is redundant (the
        snapshot already contains those batches) and is deleted.  The active
        segment is sealed first, so the common case — checkpoint at the
        current position — empties the journal entirely and appends continue
        in a fresh segment.  Returns the number of segments deleted.
        """
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None
        dropped = 0
        for segment in wal_segments(self._directory):
            last_end = _segment_last_end(segment)
            if last_end is None or last_end <= points_seen:
                try:
                    segment.unlink()
                except OSError as exc:
                    raise WalError(f"cannot drop journal segment {segment}: {exc}") from exc
                dropped += 1
            else:
                break
        return dropped

    def close(self) -> None:
        """Seal and close the active segment (idempotent)."""
        if self._file is not None:
            try:
                self.sync()
            finally:
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _segment_last_end(segment: Path) -> int | None:
    """Stream position after the last intact record, ``None`` if none exist.

    A ``None`` segment (empty, or nothing but a torn tail) contributes no
    records to replay, so truncation may always drop it.
    """
    last: WalRecord | None = None
    for record in _iter_segment(segment):
        last = record
    return last.points_after if last is not None else None


def _iter_segment(segment: Path) -> Iterator[WalRecord]:
    """Yield the intact records of one segment, discarding a torn tail.

    Raises :class:`WalCorruption` only for damage that a crash mid-append
    cannot explain: a bad record *followed by more bytes*, or a mangled
    segment header.
    """
    try:
        data = segment.read_bytes()
    except OSError as exc:
        raise WalError(f"cannot read journal segment {segment}: {exc}") from exc
    if len(data) < len(_SEGMENT_HEADER) or data[:4] != _SEGMENT_MAGIC:
        if len(data) == 0:
            return  # crash between open and header write: an empty tail
        raise WalCorruption(f"journal segment {segment} has a mangled header")
    version = struct.unpack_from("<H", data, 4)[0]
    if version != _SEGMENT_VERSION:
        raise WalError(
            f"journal segment {segment} has version {version}, "
            f"this build reads version {_SEGMENT_VERSION}"
        )
    offset = len(_SEGMENT_HEADER)
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return  # torn frame header at the tail
        length, crc = _FRAME.unpack_from(data, offset)
        if length > _MAX_PAYLOAD:
            raise WalCorruption(
                f"journal segment {segment} declares an impossible record length {length}"
            )
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            return  # torn payload at the tail
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            if end == len(data):
                return  # CRC-invalid final record: a torn (partial) write
            raise WalCorruption(
                f"journal segment {segment} has a corrupt record at byte {offset}"
            )
        yield _decode_payload(payload)
        offset = end


def replay_wal(
    directory: str | Path, *, start_points: int = 0
) -> Iterator[WalRecord]:
    """Replay the journal in order, from stream position ``start_points``.

    Records a checkpoint already covers (``points_after <= start_points``)
    are skipped; the remainder must form a gap-free chain from
    ``start_points`` — a record that *straddles* the checkpoint position or
    leaves a hole means the journal and the checkpoint disagree and raises
    :class:`WalError` rather than replaying an inconsistent stream.
    """
    position = start_points
    for segment in wal_segments(directory):
        for record in _iter_segment(segment):
            if record.points_after <= position:
                continue  # already inside the checkpoint
            if record.points_before != position:
                raise WalError(
                    f"journal is not contiguous: expected a record at stream "
                    f"position {position}, found one at {record.points_before} "
                    f"(segment {segment.name})"
                )
            yield record
            position = record.points_after
