"""Durability and degraded operation: WAL, supervised recovery, chaos.

The layer that keeps the serving system answering *through* failures, not
just between them:

* :mod:`repro.resilience.wal` — the write-ahead ingest journal.  Checkpoint
  + journal replay reconstructs the clusterer bit-identically to an
  uninterrupted run, with crash-at-any-byte torn-tail detection.
* :mod:`repro.resilience.supervisor` — :class:`IngestSupervisor` wires the
  journal, the rotating checkpoint store, and the serving plane into a
  self-healing writer with budgeted jittered restarts and
  ``LIVE / DEGRADED / RECOVERING / DOWN`` health states.
* :mod:`repro.resilience.chaos` — the deterministic seeded fault-schedule
  DSL (torn writes, worker kills, disk-full snapshots, corrupted
  checkpoints, flaky connections) behind ``tests/resilience/``.

See ``docs/operations.md`` ("Durable ingest") for formats and runbooks.
"""

from .chaos import (
    ChaosController,
    ChaosSchedule,
    Fault,
    FlakyProxy,
    SimulatedCrash,
    chaos_seed_from_env,
    corrupt_file,
)
from .supervisor import (
    DurableIngestLoop,
    HealthState,
    IngestSupervisor,
    RecoveryEvent,
    RestartPolicy,
    SupervisorError,
)
from .wal import WalCorruption, WalError, WalRecord, WriteAheadLog, replay_wal, wal_segments

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "WalError",
    "WalCorruption",
    "replay_wal",
    "wal_segments",
    "IngestSupervisor",
    "DurableIngestLoop",
    "HealthState",
    "RestartPolicy",
    "RecoveryEvent",
    "SupervisorError",
    "ChaosSchedule",
    "ChaosController",
    "Fault",
    "FlakyProxy",
    "SimulatedCrash",
    "corrupt_file",
    "chaos_seed_from_env",
]
